"""Bench: regenerate Table 6 (ProjecToR-style scheduling comparison)."""

from repro.experiments import table6_projector


def test_table6_projector(benchmark, record_result):
    result = benchmark.pedantic(table6_projector.run, rounds=1, iterations=1)
    record_result(result)

    # Shape: ProjecToR's per-port delay-priority scheduler loses to
    # NegotiaToR Matching in FCT at every load, increasingly so at heavy
    # loads, and in goodput at the heaviest load.
    for row in result.rows:
        _load, base_fct, base_g, proj_fct, proj_g, *_ = row
        assert proj_fct > base_fct
    top = result.rows[-1]
    assert top[3] > 2 * top[1]  # FCT gap widens at full load
    assert top[4] < top[2]  # goodput loss at full load
