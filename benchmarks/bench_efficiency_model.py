"""Bench: validate the section 3.2.2 matching-efficiency model."""

import pytest

from repro.experiments import efficiency_model


def test_efficiency_model(benchmark, record_result):
    result = benchmark.pedantic(efficiency_model.run, rounds=1, iterations=1)
    record_result(result)

    for row in result.rows:
        n, closed, binomial, monte_carlo = row
        assert closed == pytest.approx(binomial, abs=1e-9)
        assert monte_carlo == pytest.approx(closed, abs=0.03)
    by_n = {row[0]: row[1] for row in result.rows}
    # The paper's quoted values.
    assert by_n[128] == pytest.approx(0.634, abs=5e-4)
    assert by_n[16] == pytest.approx(0.644, abs=5e-4)
