"""Bench: regenerate Fig 13 (incast mix, websearch, Google workloads)."""

from repro.experiments import fig13_workloads


def test_fig13_workloads(benchmark, record_result):
    result = benchmark.pedantic(fig13_workloads.run, rounds=1, iterations=1)
    record_result(result)

    def rows(panel, system):
        return [
            row for row in result.rows
            if row[0].startswith(panel) and row[1] == system
        ]

    # Shape: on every panel, at the heaviest load NegotiaToR beats the
    # oblivious baseline in mice FCT and goodput.
    for panel in ("a", "b", "c"):
        nt = rows(panel, "NT parallel")[-1]
        ob = rows(panel, "oblivious")[-1]
        assert ob[3] > nt[3]  # FCT
        assert nt[5] >= ob[5] - 0.02  # goodput

    # Shape (panel a): incasts finish promptly under NegotiaToR thanks to
    # the piggyback path (well under a ms even at full load).
    for row in rows("a", "NT parallel"):
        assert row[4] < 1.0
