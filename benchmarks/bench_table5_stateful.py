"""Bench: regenerate Table 5 (stateful vs stateless scheduling)."""

from repro.experiments import table5_stateful


def test_table5_stateful(benchmark, record_result):
    result = benchmark.pedantic(table5_stateful.run, rounds=1, iterations=1)
    record_result(result)

    for row in result.rows:
        _load, base_fct, base_g, stateful_fct, stateful_g, *_ = row
        # Shape: the paper's null result — stateful scheduling changes
        # neither goodput nor FCT meaningfully at any load.
        assert abs(stateful_g - base_g) < 0.05
        assert stateful_fct < base_fct * 1.6
        assert stateful_fct > base_fct * 0.5
