"""Bench: regenerate Fig 14 (match ratio vs the analytic model)."""

from repro.experiments import fig14_match_ratio


def test_fig14_match_ratio(benchmark, record_result):
    result = benchmark.pedantic(fig14_match_ratio.run, rounds=1, iterations=1)
    record_result(result)

    rows = {row[0]: row for row in result.rows}
    for kind in ("parallel", "thinclos"):
        _, n, measured, theory, p10, p90 = rows[kind]
        # Shape: the simulated ratio is consistent with 1-(1-1/n)^n.
        assert abs(measured - theory) < 0.08
        assert p10 <= measured <= p90
    # Shape: fewer competitors per port -> higher efficiency.
    assert rows["thinclos"][3] > rows["parallel"][3]
