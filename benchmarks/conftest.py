"""Benchmark harness glue.

Each benchmark regenerates one table/figure of the paper via
:mod:`repro.experiments` and registers the rendered result.  Rendered tables
are written to ``benchmarks/results/`` and echoed into the terminal summary,
so ``pytest benchmarks/ --benchmark-only`` leaves both a timing report and
the reproduced tables.

Scale is controlled by ``REPRO_SCALE`` (tiny / small / paper); the default
``small`` keeps the full suite in the minutes range.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
_RESULTS: list = []


@pytest.fixture
def record_result():
    """Register an ExperimentResult for file output and terminal echo."""

    def _record(result):
        _RESULTS.append(result)
        RESULTS_DIR.mkdir(exist_ok=True)
        stem = (
            result.experiment.lower()
            .replace(" ", "")
            .replace("/", "_")
            .replace(".", "_")
        )
        (RESULTS_DIR / f"{stem}.txt").write_text(result.render() + "\n")

    return _record


def pytest_terminal_summary(terminalreporter):
    if not _RESULTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("reproduced tables and figures")
    terminalreporter.write_line("=" * 72)
    for result in _RESULTS:
        terminalreporter.write_line("")
        for line in result.render().splitlines():
            terminalreporter.write_line(line)
