"""Bench: regenerate Fig 10 (bandwidth through failure and recovery)."""

from repro.experiments import fig10_fault_tolerance


def test_fig10_fault_tolerance(benchmark, record_result):
    result = benchmark.pedantic(
        fig10_fault_tolerance.run, rounds=1, iterations=1
    )
    record_result(result)

    drops = [row[1] for row in result.rows]
    recoveries = [row[2] for row in result.rows]

    # Shape: more failures cost more bandwidth (paper: 10% of links -> 75.3%
    # of bandwidth), and the loss is disproportionate but bounded.
    assert drops[-1] < drops[0] + 0.02
    assert 0.5 < drops[-1] < 1.0
    # Shape: repair restores the pre-failure level, so the during/post ratio
    # tracks the during/pre ratio.
    for drop, recovery in zip(drops, recoveries):
        assert abs(drop - recovery) < 0.25
