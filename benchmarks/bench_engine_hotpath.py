"""Bench: the engine hot-path scenarios behind BENCH_engine.json.

Two modes, selected by ``BENCH_HOTPATH_SCALE``:

* ``smoke`` (default) — tiny epoch budgets on the 16-ToR fabric, just
  enough to prove the scenarios build and run.  This is what CI executes.
* ``full`` — the frozen scenario x fabric matrix of :mod:`repro.perf`,
  compared against the baseline recorded in ``BENCH_engine.json``.  The
  acceptance floors (>= 2x on the sparse trace, >= 1.3x on dense
  all-to-all at 64 ToRs) are asserted here.

Run with ``PYTHONPATH=src python -m pytest benchmarks/bench_engine_hotpath.py -q``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import perf

SCALE = os.environ.get("BENCH_HOTPATH_SCALE", "smoke")
BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

SMOKE_EPOCHS = {"alltoall": 40, "incast": 200, "sparse": 4000}


@pytest.mark.parametrize("scenario", sorted(perf.SCENARIOS))
def test_smoke(benchmark, scenario):
    """Each scenario runs, simulates the requested epochs, and moves bytes."""
    if SCALE != "smoke":
        pytest.skip("full mode runs test_full_matrix instead")
    result = benchmark.pedantic(
        perf.run_scenario,
        args=(scenario, 16, 4),
        kwargs={"epochs": SMOKE_EPOCHS[scenario]},
        rounds=1,
        iterations=1,
    )
    assert result.epochs == SMOKE_EPOCHS[scenario]
    assert result.delivered_bytes > 0
    assert result.stepped_epochs + result.fast_forwarded_epochs == result.epochs


def test_fast_forward_skips_idle_epochs(benchmark):
    """The sparse trace is mostly idle; fast-forward must skip the tails."""
    if SCALE != "smoke":
        pytest.skip("full mode runs test_full_matrix instead")
    result = benchmark.pedantic(
        perf.run_scenario,
        args=("sparse", 16, 4),
        kwargs={"epochs": 4000},
        rounds=1,
        iterations=1,
    )
    assert result.fast_forwarded_epochs > result.stepped_epochs


@pytest.mark.parametrize("scenario,num_tors,ports", [
    (name, tors, ports)
    for name in sorted(perf.SCENARIOS)
    for tors, ports in perf.FABRICS
])
def test_full_matrix(benchmark, scenario, num_tors, ports):
    """Full-budget runs compared against the recorded baseline."""
    if SCALE != "full":
        pytest.skip("set BENCH_HOTPATH_SCALE=full for the baseline comparison")
    bench = perf.BenchFile.load(str(BENCH_FILE))
    result = benchmark.pedantic(
        perf.run_scenario, args=(scenario, num_tors, ports), rounds=1, iterations=1
    )
    baseline = bench.baseline_eps(result.key)
    assert baseline, f"no baseline recorded for {result.key}"
    speedup = result.epochs_per_sec / baseline
    # Acceptance floors of the hot-path overhaul; other cells must at least
    # not regress below the pre-overhaul engine.
    if scenario == "sparse":
        assert speedup >= 2.0, f"{result.key}: {speedup:.2f}x < 2x"
    elif scenario == "alltoall" and num_tors == 64:
        assert speedup >= 1.3, f"{result.key}: {speedup:.2f}x < 1.3x"
    else:
        assert speedup >= 1.0, f"{result.key}: {speedup:.2f}x regressed"
