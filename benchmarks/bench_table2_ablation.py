"""Bench: regenerate Table 2 (PB/PQ ablation of mice FCT at 100% load)."""

from repro.experiments import table2_ablation


def test_table2_ablation(benchmark, record_result):
    result = benchmark.pedantic(table2_ablation.run, rounds=1, iterations=1)
    record_result(result)

    by_config = {row[0]: row for row in result.rows}
    full = by_config["PB and PQ"]
    bare = by_config["-"]
    # Shape: both mechanisms together beat no optimization by a wide margin
    # on both topologies (99p columns), and the combined average sits near
    # the ~2-epoch scheduling delay.
    assert full[1] < bare[1]
    assert full[3] < bare[3]
    assert full[2] < 3.5  # parallel average (paper: 1.6 epochs)
    assert full[4] < 3.5  # thin-clos average (paper: 1.6 epochs)
    # PQ alone already dominates no-optimization (head-of-line blocking).
    assert by_config["PQ"][1] < bare[1]
