"""Bench: regenerate Fig 15 (iterative matching vs the 2x speedup)."""

from repro.experiments import fig15_iterative
from repro.experiments.common import current_scale


def test_fig15_iterative(benchmark, record_result):
    result = benchmark.pedantic(fig15_iterative.run, rounds=1, iterations=1)
    record_result(result)

    scale = current_scale()
    num_loads = len(scale.loads)
    rows = {row[0]: row for row in result.rows}

    def fcts(label):
        return rows[label][1 : 1 + num_loads]

    def gputs(label):
        return rows[label][1 + num_loads :]

    # Shape: every extra iteration worsens FCT at every load.
    for i in range(num_loads):
        assert fcts("Speedup 2x")[i] < fcts("ITER_I")[i]
        assert fcts("ITER_I")[i] < fcts("ITER_III")[i]
        assert fcts("ITER_III")[i] <= fcts("ITER_V")[i] * 1.1
    # Shape: iteration never buys goodput over the 2x speedup.
    for i in range(num_loads):
        best_iter = max(
            gputs("ITER_I")[i], gputs("ITER_III")[i], gputs("ITER_V")[i]
        )
        assert gputs("Speedup 2x")[i] >= best_iter - 0.02
