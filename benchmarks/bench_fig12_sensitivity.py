"""Bench: regenerate Fig 12 (epoch parameter sensitivity)."""

from repro.experiments import fig12_sensitivity


def test_fig12_sensitivity(benchmark, record_result):
    result = benchmark.pedantic(fig12_sensitivity.run, rounds=1, iterations=1)
    record_result(result)

    panel_a = [row for row in result.rows if row[0].startswith("a")]
    panel_b = [row for row in result.rows if row[0].startswith("b")]
    assert len(panel_a) == 5 and len(panel_b) == 5

    # Shape (panel b): stretching the scheduled phase raises FCT
    # monotonically across the decade sweep and erodes goodput at 500 slots
    # (outdated matchings + long scheduling delay).
    b_fct = [row[2] for row in panel_b]
    b_gput = [row[3] for row in panel_b]
    assert b_fct[-1] > 3 * b_fct[1]
    assert b_gput[-1] < b_gput[1]

    # Shape (panel a): the default 60 ns slot is near the sweep's optimum —
    # no setting beats it by a large factor (the paper's robustness claim).
    a_fct = [row[2] for row in panel_a]
    default_fct = a_fct[2]
    assert min(a_fct) > 0.5 * default_fct
