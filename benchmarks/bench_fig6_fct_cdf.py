"""Bench: regenerate Fig 6 (mice FCT CDF at 100% load)."""

import numpy as np

from repro.experiments import fig6_fct_cdf


def test_fig6_fct_cdf(benchmark, record_result):
    result = benchmark.pedantic(fig6_fct_cdf.run, rounds=1, iterations=1)
    record_result(result)

    rows = {row[0]: row for row in result.rows}
    for kind in ("parallel", "thinclos"):
        _, p50, p80, p99, within1, within2 = rows[kind]
        assert p50 <= p80 <= p99
        # Shape: a large share of mice flows bypass the scheduling delay
        # (paper: >80% within two epochs; the scaled trace has slightly
        # less sub-1KB mass, so we check a solid majority).
        assert within2 > 0.5
        assert within1 < within2

    # The predefined phases are identical, so the two CDFs nearly overlap
    # in the bypass region.
    par_values, par_fracs = result.series["parallel"]
    thin_values, thin_fracs = result.series["thinclos"]
    par_p50 = float(np.interp(0.5, par_fracs, par_values))
    thin_p50 = float(np.interp(0.5, thin_fracs, thin_values))
    assert abs(par_p50 - thin_p50) / par_p50 < 0.25
