"""Bench: regenerate Fig 11 (the Fig 9 comparison without speedup)."""

from repro.experiments import fig11_no_speedup
from repro.experiments.common import current_scale


def test_fig11_no_speedup(benchmark, record_result):
    result = benchmark.pedantic(fig11_no_speedup.run, rounds=1, iterations=1)
    record_result(result)

    scale = current_scale()
    data = result.series
    top_load = max(scale.loads)

    nt = data["NT parallel"]
    oblivious = data["oblivious"]
    # Shape: same ordering as Fig 9 under constrained bandwidth — the
    # baseline saturates even earlier because relaying doubles its volume
    # against a 1x fabric.
    assert nt[top_load][1] > oblivious[top_load][1]
    assert oblivious[top_load][0] > 2 * nt[top_load][0]
    # Sanity: with 1x uplinks nobody exceeds ~1.0 normalized goodput.
    for system_data in data.values():
        for _load, (_fct, goodput) in system_data.items():
            assert goodput <= 1.0
