"""Bench: regenerate Fig 7a (incast finish time vs degree)."""

from repro.experiments import fig7_incast


def test_fig7_incast(benchmark, record_result):
    result = benchmark.pedantic(fig7_incast.run, rounds=1, iterations=1)
    record_result(result)

    degrees = [row[0] for row in result.rows]
    nt_parallel = [row[1] for row in result.rows]
    nt_thinclos = [row[2] for row in result.rows]
    oblivious = [row[3] for row in result.rows]

    # Shape: NegotiaToR is flat in the degree (piggyback slots exist for
    # every pair every epoch) and identical across topologies.
    assert max(nt_parallel) <= min(nt_parallel) * 1.5
    for par, thin in zip(nt_parallel, nt_thinclos):
        assert abs(par - thin) <= 0.2 * par
    # Shape: the oblivious scheme grows with the degree (random-intermediate
    # collisions cost extra rotor cycles).
    assert oblivious[-1] >= oblivious[0]
    assert degrees == sorted(degrees)
