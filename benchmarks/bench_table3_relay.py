"""Bench: regenerate Table 3 (traffic-aware selective relay on thin-clos)."""

from repro.experiments import table3_relay


def test_table3_selective_relay(benchmark, record_result):
    result = benchmark.pedantic(table3_relay.run, rounds=1, iterations=1)
    record_result(result)

    for row in result.rows:
        _load, base_fct, base_gput, relay_fct, relay_gput, *_ = row
        # Shape: the paper's null result — relay moves goodput and FCT only
        # marginally at every load (it never relays mice, and the links it
        # could fill are either unneeded or already busy).
        assert abs(relay_gput - base_gput) < 0.06
        assert relay_fct < base_fct * 1.5
