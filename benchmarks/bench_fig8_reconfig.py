"""Bench: regenerate Fig 8 (performance vs reconfiguration delay)."""

from repro.experiments import fig8_reconfig_delay


def test_fig8_reconfiguration_delay(benchmark, record_result):
    result = benchmark.pedantic(fig8_reconfig_delay.run, rounds=1, iterations=1)
    record_result(result)

    guards = [row[0] for row in result.rows]
    par_fct = [row[1] for row in result.rows]
    par_gput = [row[2] for row in result.rows]
    thin_gput = [row[4] for row in result.rows]

    assert guards == sorted(guards)
    # Shape: FCT grows with the stretched epoch...
    assert par_fct[-1] > par_fct[0]
    # ...while goodput stays workable across the sweep (the scheduled phase
    # is resized to hold the guardband share constant).
    assert min(par_gput) > 0.55
    assert min(thin_gput) > 0.55
