"""Bench: regenerate Table 4 (informative requests)."""

from repro.experiments import table4_informative


def test_table4_informative_requests(benchmark, record_result):
    result = benchmark.pedantic(table4_informative.run, rounds=1, iterations=1)
    record_result(result)

    top = result.rows[-1]  # heaviest load
    _load, base_fct, size_fct, hol_fct, base_g, size_g, hol_g, _paper = top
    # Shape at full load: data-size priority *hurts* tail FCT (mice pairs
    # lose grants to big backlogs) without a meaningful goodput win...
    assert size_fct > base_fct
    assert size_g < base_g + 0.05
    # ...while HoL-delay priority trims tail FCT modestly.
    assert hol_fct <= base_fct * 1.05
    # Shape: goodput is essentially unchanged across variants at all loads.
    for row in result.rows:
        assert abs(row[5] - row[4]) < 0.05
        assert abs(row[6] - row[4]) < 0.05
