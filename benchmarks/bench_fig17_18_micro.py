"""Bench: regenerate Figs 17/18 (receiver-bandwidth micro-observations)."""

from repro.experiments import fig17_18_micro


def test_fig17_18_micro_observations(benchmark, record_result):
    result = benchmark.pedantic(fig17_18_micro.run, rounds=1, iterations=1)
    record_result(result)

    incast = {row[1]: row for row in result.rows if row[0].startswith("17")}
    alltoall = {row[1]: row for row in result.rows if row[0].startswith("18")}

    # Fig 17 shape: NegotiaToR's destination hears the incast within roughly
    # one epoch on both topologies, and identically so.
    assert abs(incast["parallel"][2] - incast["thinclos"][2]) < 1.0
    assert incast["parallel"][2] < 10.0

    # Fig 18 shape: NegotiaToR receivers get only wanted bytes; the
    # oblivious receiver also spends bandwidth on relayed traffic.
    assert alltoall["parallel"][4] == 0
    assert alltoall["thinclos"][4] == 0
    assert alltoall["oblivious"][4] > 0
