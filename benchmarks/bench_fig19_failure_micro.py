"""Bench: regenerate Fig 19 (pair bandwidth under egress failures)."""

from repro.experiments import fig19_failure_micro


def test_fig19_failure_micro(benchmark, record_result):
    result = benchmark.pedantic(fig19_failure_micro.run, rounds=1, iterations=1)
    record_result(result)

    by_failed = {row[0]: row for row in result.rows}
    healthy = by_failed[0]
    one_down = by_failed[1]
    # Shape: healthy runs never show a zero-bandwidth epoch; failures
    # introduce intermittent zeros (message loss on the dead fiber) but the
    # rotation keeps the pair transmitting in most epochs.
    assert healthy[2] == "0%"
    assert one_down[2] != "0%"
    assert one_down[3] > 0  # still active in most epochs
    # Shape: mean occupation drops with failed links.
    assert one_down[1] < healthy[1]
