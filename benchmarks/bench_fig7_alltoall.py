"""Bench: regenerate Fig 7b (all-to-all goodput vs flow size)."""

from repro.experiments import fig7_alltoall


def test_fig7_alltoall(benchmark, record_result):
    result = benchmark.pedantic(fig7_alltoall.run, rounds=1, iterations=1)
    record_result(result)

    nt_parallel = [row[1] for row in result.rows]
    nt_thinclos = [row[2] for row in result.rows]
    oblivious = [row[3] for row in result.rows]

    # Shape: goodput grows with flow size for every system.
    assert nt_parallel[-1] > nt_parallel[0]
    assert nt_thinclos[-1] > nt_thinclos[0]
    # Shape at the heaviest size: parallel wins (full connectivity keeps
    # links busy as flows finish); the oblivious relay cannot beat it.
    assert nt_parallel[-1] > nt_thinclos[-1]
    assert nt_parallel[-1] > oblivious[-1]
