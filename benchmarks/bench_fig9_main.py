"""Bench: regenerate Fig 9 (the paper's headline FCT/goodput comparison)."""

from repro.experiments import fig9_main_results
from repro.experiments.common import current_scale


def test_fig9_main_results(benchmark, record_result):
    result = benchmark.pedantic(fig9_main_results.run, rounds=1, iterations=1)
    record_result(result)

    scale = current_scale()
    data = result.series
    top_load = max(scale.loads)

    nt = data["NT parallel"]
    nt_thin = data["NT thin-clos"]
    oblivious = data["oblivious"]

    for load in scale.loads:
        # Shape: NegotiaToR's 99p mice FCT is far below the baseline (paper:
        # 1-2 orders of magnitude).  The gap scales with the fabric — the
        # rotor cycle and the per-intermediate elephant slices shrink with
        # N — so at reduced scale we require a >2x margin from 50% load up
        # and "no worse than the baseline" at lighter loads.
        if load >= 0.5:
            assert oblivious[load][0] > 2 * nt[load][0]
        else:
            assert oblivious[load][0] > 0.7 * nt[load][0]
    # Shape: at heavy load the baseline's relayed traffic saturates the
    # network while NegotiaToR keeps climbing.
    assert nt[top_load][1] > oblivious[top_load][1] + 0.05
    # Shape: thin-clos is marginally below parallel, not qualitatively off.
    assert nt_thin[top_load][1] <= nt[top_load][1] + 0.02
    assert nt_thin[top_load][1] > 0.8 * nt[top_load][1]
    # Shape: goodput tracks offered load at the lightest point for everyone.
    light = min(scale.loads)
    for system in ("NT parallel", "NT thin-clos", "oblivious"):
        assert abs(data[system][light][1] - light) < 0.05
