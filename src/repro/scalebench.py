"""The streaming-scale benchmark: million-flow bounded-memory runs.

Where :mod:`repro.perf` measures how fast the engine steps *epochs*, this
module measures how fast the whole streaming data path (DESIGN.md §11)
chews through *flows*: a :func:`~repro.workloads.streams
.heavy_poisson_stream` trace sized by flow count is pulled lazily through
``NegotiaToRSimulator(stream=True)``, so no flow list ever materializes and
the bounded-memory tracker evicts every completion.  The result records

* throughput — wall seconds, flows/sec, epochs/sec,
* the boundedness witness — ``peak_live_flows`` (the tracker's high-water
  mark of in-flight flows) next to the total flow count, plus the process
  peak RSS for context, and
* correctness sanity — completions, delivered bytes, and streaming FCT
  stats from the reservoirs.

``repro bench --scale`` runs it and tracks the trajectory in
``BENCH_scale.json`` with the same baseline/current bookkeeping as the
hot-path suite (:class:`repro.perf.BenchFile` is shape-compatible).  The
default point — 1M flows of 1000 bytes at load 0.5 on an 8x2 fabric —
holds in-flight residency near ~700 flows, four orders of magnitude below
the trace, and finishes in seconds on a laptop.
"""

from __future__ import annotations

import random
import resource
import sys
from dataclasses import dataclass, fields, replace

from .perf import Stopwatch, fabric_config
from .sim.factory import make_negotiator
from .sweep.spec import unknown_name_message
from .topology.parallel import ParallelNetwork
from .topology.thinclos import ThinClos
from .workloads.distributions import FixedSize
from .workloads.streams import heavy_poisson_span_ns, heavy_poisson_stream

DEFAULT_FLOWS = 1_000_000
DEFAULT_TORS = 8
DEFAULT_PORTS = 2
DEFAULT_LOAD = 0.5
DEFAULT_FLOW_BYTES = 1000
_BENCH_SEED = 0x5CA1E

SCALE_BENCH_FILE = "BENCH_scale.json"

#: Engines the scale bench can drive, in the shared rejection-message order.
ENGINES = ("adaptive", "negotiator", "rotor")


@dataclass(frozen=True)
class ScaleBenchResult:
    """One streaming scale run's throughput and residency counters.

    ``epochs`` counts the engine's own steps — NegotiaToR epochs for the
    negotiator engine, circuit slices for the rotor and adaptive engines.
    """

    num_flows: int
    num_tors: int
    ports_per_tor: int
    load: float
    flow_bytes: int
    completed: bool
    wall_s: float
    flows_per_sec: float
    epochs: int
    epochs_per_sec: float
    completed_flows: int
    delivered_bytes: int
    peak_live_flows: int
    final_live_flows: int
    max_rss_kb: int
    mice_fct_p99_ns: float | None
    mice_fct_mean_ns: float | None
    engine: str = "negotiator"

    @property
    def key(self) -> str:
        """Stable identifier used in BENCH_scale.json.

        Every knob that changes the workload participates, so baselines
        recorded at different loads or flow sizes never collide.  The
        negotiator engine keeps the historical unprefixed key so existing
        baselines stay comparable; other engines prefix their name.
        """
        prefix = (
            "heavy-poisson"
            if self.engine == "negotiator"
            else f"{self.engine}-heavy-poisson"
        )
        return (
            f"{prefix}/t{self.num_tors}p{self.ports_per_tor}"
            f"/f{self.num_flows}/l{self.load:g}/b{self.flow_bytes}"
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


def run_scale_bench(
    num_flows: int = DEFAULT_FLOWS,
    num_tors: int = DEFAULT_TORS,
    ports_per_tor: int = DEFAULT_PORTS,
    *,
    load: float = DEFAULT_LOAD,
    flow_bytes: int = DEFAULT_FLOW_BYTES,
    seed: int = _BENCH_SEED,
    fast_forward: bool = True,
    engine: str = "negotiator",
    core: str | None = None,
) -> ScaleBenchResult:
    """Stream ``num_flows`` Poisson flows through the engine and time it.

    The run goes to completion (generous time cap: 4x the expected arrival
    span, which a stable load never approaches), so flows/sec covers the
    whole lifecycle — lazy generation, injection, scheduling, delivery,
    and eviction into the online accumulators.  ``engine`` selects the
    bounded-memory engine under test: ``negotiator`` (the default, on the
    parallel network), ``rotor`` (the RotorNet-style baseline on
    thin-clos, its reference fabric), or ``adaptive`` (the demand-aware
    engine, also on thin-clos).
    """
    if num_flows <= 0:
        raise ValueError("num_flows must be positive")
    if engine not in ENGINES:
        raise ValueError(unknown_name_message("engine", [engine], ENGINES))
    config = fabric_config(num_tors, ports_per_tor, fast_forward=fast_forward)
    if core is not None:
        config = replace(config, core=core)
    host_aggregate_gbps = config.host_aggregate_gbps
    distribution = FixedSize(flow_bytes)
    flows = heavy_poisson_stream(
        distribution,
        load,
        num_tors,
        host_aggregate_gbps,
        num_flows,
        random.Random(seed),
    )
    span_ns = heavy_poisson_span_ns(
        distribution, load, num_tors, host_aggregate_gbps, num_flows
    )
    if engine in ("adaptive", "rotor"):
        if num_tors % ports_per_tor:
            raise ValueError(
                f"the {engine} scale bench runs on the balanced thin-clos: "
                "num_tors must be a multiple of ports_per_tor"
            )
        topology = ThinClos(
            num_tors, ports_per_tor, num_tors // ports_per_tor
        )
        if engine == "rotor":
            from .sim.rotor import RotorSimulator

            sim = RotorSimulator(config, topology, flows, stream=True)
        else:
            from .sim.adaptive import AdaptiveSimulator

            sim = AdaptiveSimulator(config, topology, flows, stream=True)
    else:
        sim = make_negotiator(
            config, ParallelNetwork(num_tors, ports_per_tor), flows, stream=True
        )
    with Stopwatch() as watch:
        completed = sim.run_until_complete(max_ns=4.0 * span_ns)
    steps = sim.epoch if engine == "negotiator" else sim.slices
    tracker = sim.tracker
    summary = sim.summary()
    wall = watch.elapsed_s
    max_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        # ru_maxrss is bytes on macOS, kilobytes on Linux.
        max_rss //= 1024
    return ScaleBenchResult(
        num_flows=num_flows,
        num_tors=num_tors,
        ports_per_tor=ports_per_tor,
        load=load,
        flow_bytes=flow_bytes,
        completed=completed,
        wall_s=wall,
        flows_per_sec=num_flows / wall if wall > 0 else 0.0,
        epochs=steps,
        epochs_per_sec=steps / wall if wall > 0 else 0.0,
        completed_flows=tracker.num_completed,
        delivered_bytes=tracker.delivered_bytes,
        peak_live_flows=tracker.peak_live_flows,
        final_live_flows=tracker.live_flows,
        max_rss_kb=max_rss,
        mice_fct_p99_ns=summary.mice_fct_p99_ns,
        mice_fct_mean_ns=summary.mice_fct_mean_ns,
        engine=engine,
    )


def format_result(result: ScaleBenchResult) -> str:
    """Human-readable report of one scale run."""
    residency = result.peak_live_flows / result.num_flows
    lines = [
        f"streaming scale bench: {result.key}",
        f"  flows      : {result.num_flows:,} x {result.flow_bytes} B "
        f"at load {result.load:g} "
        f"({'completed' if result.completed else 'TIME CAP HIT'})",
        f"  throughput : {result.flows_per_sec:,.0f} flows/s, "
        f"{result.epochs_per_sec:,.0f} epochs/s "
        f"({result.epochs:,} epochs in {result.wall_s:.2f} s)",
        f"  residency  : peak {result.peak_live_flows:,} flows in flight "
        f"({residency:.2%} of the trace), {result.final_live_flows} at end",
        f"  peak RSS   : {result.max_rss_kb / 1024:,.0f} MB",
    ]
    if result.mice_fct_p99_ns is not None:
        lines.append(
            f"  mice FCT   : p99 {result.mice_fct_p99_ns / 1e3:,.1f} us, "
            f"mean {result.mice_fct_mean_ns / 1e3:,.1f} us (streaming "
            "reservoir)"
        )
    return "\n".join(lines)
