"""Workload generation: trace-driven Poisson traffic, incasts, all-to-all."""

from .distributions import EmpiricalCDF, FixedSize
from .generators import (
    merge_workloads,
    network_arrival_rate_per_ns,
    poisson_workload,
    single_pair_stream,
    uniform_pair,
)
from .incast import (
    BACKGROUND_TAG,
    INCAST_TAG,
    all_to_all_workload,
    incast_finish_time_ns,
    incast_workload,
    mixed_incast_workload,
)
from . import trace_io
from .patterns import (
    bursty_workload,
    hotspot_workload,
    permutation_workload,
    ring_allreduce_workload,
    shuffle_workload,
)
from .streams import (
    heavy_poisson_span_ns,
    heavy_poisson_stream,
    merge_workload_streams,
    poisson_flow_stream,
)
from .traces import TRACES, by_name, google, hadoop, websearch

__all__ = [
    "BACKGROUND_TAG",
    "EmpiricalCDF",
    "FixedSize",
    "INCAST_TAG",
    "TRACES",
    "all_to_all_workload",
    "bursty_workload",
    "by_name",
    "google",
    "hadoop",
    "heavy_poisson_span_ns",
    "heavy_poisson_stream",
    "hotspot_workload",
    "incast_finish_time_ns",
    "incast_workload",
    "merge_workload_streams",
    "merge_workloads",
    "mixed_incast_workload",
    "network_arrival_rate_per_ns",
    "permutation_workload",
    "poisson_flow_stream",
    "poisson_workload",
    "ring_allreduce_workload",
    "shuffle_workload",
    "single_pair_stream",
    "trace_io",
    "uniform_pair",
    "websearch",
]
