"""Published DCN flow-size traces used in the paper's evaluation (section 4).

The paper generates workloads from three published distributions.  We encode
piecewise log-linear CDFs reproducing each trace's headline statistics:

* **Hadoop** (Meta/Facebook Hadoop clusters, Roy et al., SIGCOMM'15 — the
  paper's default): highly tailed; 60% of flows are smaller than 1 KB while
  more than 80% of the bytes come from flows larger than 100 KB.
* **Web search** (DCTCP, Alizadeh et al., SIGCOMM'10): heavier — more than
  80% of flows exceed 10 KB.
* **Google** (aggregated datacenter RPC traffic, Homa's W1 / Sivaram memo):
  lighter — more than 80% of flows are below 1 KB.

The anchor tables are approximations read off the published CDFs; tests
verify the headline statistics above rather than exact anchor values.
"""

from __future__ import annotations

from .distributions import EmpiricalCDF

KB = 1000
MB = 1000 * KB


def hadoop() -> EmpiricalCDF:
    """Meta Hadoop trace (paper's default workload)."""
    return EmpiricalCDF(
        [
            (80, 0.0),
            (150, 0.10),
            (300, 0.30),
            (600, 0.50),
            (1 * KB, 0.60),
            (3 * KB, 0.70),
            (10 * KB, 0.80),
            (100 * KB, 0.90),
            (1 * MB, 0.97),
            (10 * MB, 1.0),
        ],
        name="hadoop",
    )


def websearch() -> EmpiricalCDF:
    """DCTCP web-search trace (Fig 13b)."""
    return EmpiricalCDF(
        [
            (5 * KB, 0.0),
            (10 * KB, 0.19),
            (13 * KB, 0.30),
            (19 * KB, 0.40),
            (33 * KB, 0.53),
            (53 * KB, 0.60),
            (133 * KB, 0.70),
            (667 * KB, 0.80),
            (1333 * KB, 0.90),
            (3333 * KB, 0.95),
            (6667 * KB, 0.98),
            (20 * MB, 1.0),
        ],
        name="websearch",
    )


def google() -> EmpiricalCDF:
    """Aggregated Google datacenter traffic (Fig 13c)."""
    return EmpiricalCDF(
        [
            (30, 0.0),
            (100, 0.40),
            (300, 0.60),
            (600, 0.75),
            (1 * KB, 0.85),
            (4 * KB, 0.92),
            (10 * KB, 0.95),
            (100 * KB, 0.99),
            (1 * MB, 1.0),
        ],
        name="google",
    )


TRACES = {
    "hadoop": hadoop,
    "websearch": websearch,
    "google": google,
}


def by_name(name: str) -> EmpiricalCDF:
    """Look up a trace by name."""
    try:
        return TRACES[name]()
    except KeyError:
        raise ValueError(
            f"unknown trace {name!r}; choose from {sorted(TRACES)}"
        ) from None
