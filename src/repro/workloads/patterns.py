"""Traffic patterns beyond the paper's evaluation (sweep scenario backends).

The paper sweeps uniform Poisson traffic, incasts, and all-to-alls.  The
reconfigurable-networks literature (ProjecToR's skewed matrices, the
demand-aware designs surveyed by Avin & Schmid) judges fabrics under far
more diverse traffic; this module adds those shapes:

* **Hotspot** — a small set of ToRs exchanges a large share of the traffic,
  the skewed matrices observed in production clusters.
* **Permutation** — each ToR sends to exactly one fixed partner, the
  adversarial case for oblivious rotors and the best case for demand-aware
  scheduling.
* **Bursty** — on/off modulated Poisson arrivals: the same average load as a
  plain Poisson process, but concentrated into bursts.
* **Ring all-reduce** — the 2(N-1)-phase ring collective of data-parallel ML
  training: every node forwards a 1/N-sized chunk to its ring successor.
* **All-to-all shuffle** — repeated synchronous all-to-all rounds, the
  expert-parallel / map-reduce shuffle pattern.

All generators draw randomness exclusively from the ``rng`` argument, so a
``(generator, seed)`` pair is fully deterministic — the property the sweep
runner's parallel fan-out relies on.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator

from ..sim.flows import Flow
from .generators import network_arrival_rate_per_ns, uniform_pair
from .incast import all_to_all_workload

HOTSPOT_TAG = "hotspot"
PERMUTATION_TAG = "permutation"
BURSTY_TAG = "bursty"
ALLREDUCE_TAG = "allreduce"
SHUFFLE_TAG = "shuffle"


def hotspot_workload(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng: random.Random,
    hot_fraction: float = 0.125,
    hot_weight: float = 0.75,
    tag: str = HOTSPOT_TAG,
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """Poisson arrivals with a skewed traffic matrix.

    ``hot_fraction`` of the ToRs (at least two) form a hot set that carries
    ``hot_weight`` of the flows among themselves; the rest of the traffic is
    uniform over all ToRs.  Aggregate load matches the plain Poisson model.
    """
    if not 0 < hot_fraction <= 1:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0 <= hot_weight <= 1:
        raise ValueError("hot_weight must be in [0, 1]")
    if num_tors < 2:
        raise ValueError("need at least two ToRs")
    num_hot = max(2, round(hot_fraction * num_tors))
    num_hot = min(num_hot, num_tors)
    hot = rng.sample(range(num_tors), num_hot)
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    if fids is None:
        fids = itertools.count()
    flows = []
    t = rng.expovariate(rate)
    while t < duration_ns:
        if rng.random() < hot_weight:
            src, dst = rng.sample(hot, 2)
        else:
            src, dst = uniform_pair(num_tors, rng)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=size_dist.sample(rng),
                arrival_ns=t,
                tag=tag,
            )
        )
        t += rng.expovariate(rate)
    return flows


def permutation_workload(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng: random.Random,
    tag: str = PERMUTATION_TAG,
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """Poisson arrivals over a fixed fixed-point-free permutation matrix.

    A random cyclic order of the ToRs is drawn once; every flow from ToR
    ``i`` goes to ``i``'s successor in that cycle.  Each ToR therefore has
    exactly one destination — the pattern demand-aware fabrics serve with a
    single matching while oblivious rotors waste all but one slot.
    """
    if num_tors < 2:
        raise ValueError("a permutation needs at least two ToRs")
    order = rng.sample(range(num_tors), num_tors)
    successor = {
        order[i]: order[(i + 1) % num_tors] for i in range(num_tors)
    }
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    if fids is None:
        fids = itertools.count()
    flows = []
    t = rng.expovariate(rate)
    while t < duration_ns:
        src = rng.randrange(num_tors)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=successor[src],
                size_bytes=size_dist.sample(rng),
                arrival_ns=t,
                tag=tag,
            )
        )
        t += rng.expovariate(rate)
    return flows


def bursty_workload(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng: random.Random,
    mean_on_ns: float = 100_000.0,
    mean_off_ns: float = 300_000.0,
    tag: str = BURSTY_TAG,
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """On/off modulated Poisson arrivals (a two-state MMPP).

    The source process alternates exponentially distributed ON and OFF
    periods; flows only arrive during ON periods, at a rate boosted by
    ``(mean_on + mean_off) / mean_on`` so the long-run average load equals
    ``load``.  Same marginal traffic volume as the plain Poisson workload,
    but concentrated into bursts that stress scheduling responsiveness.
    """
    if mean_on_ns <= 0 or mean_off_ns < 0:
        raise ValueError("mean_on_ns must be positive, mean_off_ns >= 0")
    base_rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    burst_rate = base_rate * (mean_on_ns + mean_off_ns) / mean_on_ns
    if fids is None:
        fids = itertools.count()
    flows = []
    t = 0.0
    on = True
    while t < duration_ns:
        if on:
            period = rng.expovariate(1.0 / mean_on_ns)
        elif mean_off_ns > 0:
            period = rng.expovariate(1.0 / mean_off_ns)
        else:
            period = 0.0
        end = min(t + period, duration_ns)
        if on:
            arrival = t + rng.expovariate(burst_rate)
            while arrival < end:
                src, dst = uniform_pair(num_tors, rng)
                flows.append(
                    Flow(
                        fid=next(fids),
                        src=src,
                        dst=dst,
                        size_bytes=size_dist.sample(rng),
                        arrival_ns=arrival,
                        tag=tag,
                    )
                )
                arrival += rng.expovariate(burst_rate)
        t = end
        on = not on
    return flows


def ring_allreduce_workload(
    num_tors: int,
    data_bytes: int,
    at_ns: float = 0.0,
    phase_gap_ns: float | None = None,
    host_aggregate_gbps: float = 400.0,
    fids: Iterator[int] | None = None,
    tag: str = ALLREDUCE_TAG,
) -> list[Flow]:
    """The ring all-reduce collective of data-parallel training.

    Every node holds ``data_bytes`` and the ring algorithm runs 2(N-1)
    phases (N-1 reduce-scatter + N-1 all-gather); in each phase every node
    sends a ``data_bytes / N`` chunk to its ring successor.  Phases are
    paced ``phase_gap_ns`` apart — an idealized synchronous schedule (a
    flow-level open-loop generator cannot model the data dependency between
    phases); the default gap is the chunk's host-NIC serialization time, the
    fastest any node could turn a phase around.
    """
    if num_tors < 2:
        raise ValueError("a ring needs at least two ToRs")
    if data_bytes <= 0:
        raise ValueError("data_bytes must be positive")
    chunk = max(1, data_bytes // num_tors)
    if phase_gap_ns is None:
        phase_gap_ns = chunk * 8.0 / host_aggregate_gbps
    if phase_gap_ns <= 0:
        raise ValueError("phase_gap_ns must be positive")
    if fids is None:
        fids = itertools.count()
    flows = []
    for phase in range(2 * (num_tors - 1)):
        start = at_ns + phase * phase_gap_ns
        for src in range(num_tors):
            flows.append(
                Flow(
                    fid=next(fids),
                    src=src,
                    dst=(src + 1) % num_tors,
                    size_bytes=chunk,
                    arrival_ns=start,
                    tag=tag,
                )
            )
    return flows


def shuffle_workload(
    num_tors: int,
    chunk_bytes: int,
    rounds: int = 1,
    at_ns: float = 0.0,
    round_gap_ns: float = 0.0,
    fids: Iterator[int] | None = None,
    tag: str = SHUFFLE_TAG,
) -> list[Flow]:
    """Repeated synchronous all-to-all rounds (MoE / map-reduce shuffle).

    Each round, every ToR sends a ``chunk_bytes`` flow to every other ToR;
    ``rounds`` rounds start ``round_gap_ns`` apart (0 collapses them into
    one burst).
    """
    if rounds < 1:
        raise ValueError("need at least one round")
    if round_gap_ns < 0:
        raise ValueError("round_gap_ns must be non-negative")
    if fids is None:
        fids = itertools.count()
    flows = []
    for r in range(rounds):
        round_flows = all_to_all_workload(
            num_tors, chunk_bytes, at_ns=at_ns + r * round_gap_ns, fids=fids
        )
        for flow in round_flows:
            flow.tag = tag
        flows.extend(round_flows)
    return flows
