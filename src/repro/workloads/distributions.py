"""Empirical flow-size distributions.

DCN workload papers publish flow sizes as a cumulative distribution over a
handful of anchor points.  :class:`EmpiricalCDF` interpolates log-linearly
between anchors (flow sizes span six orders of magnitude, so straight-line
interpolation in log-size space is the standard choice) and supports exact
mean computation, which the load model needs to convert a target load into a
Poisson arrival rate.
"""

from __future__ import annotations

import bisect
import math
import random
from collections.abc import Sequence


class EmpiricalCDF:
    """A flow-size distribution given as (size_bytes, cumulative_prob) anchors.

    The first anchor must have probability 0 (the minimum size) and the last
    probability 1 (the maximum size).  Between anchors the distribution is
    log-uniform in size.
    """

    def __init__(
        self, points: Sequence[tuple[float, float]], name: str = ""
    ) -> None:
        if len(points) < 2:
            raise ValueError("need at least two CDF anchors")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError("CDF must start at probability 0 and end at 1")
        if any(b <= a for a, b in zip(probs, probs[1:])):
            raise ValueError("CDF probabilities must be strictly increasing")
        if any(b <= a for a, b in zip(sizes, sizes[1:])):
            raise ValueError("CDF sizes must be strictly increasing")
        if sizes[0] < 1:
            raise ValueError("flow sizes must be at least one byte")
        self._sizes = sizes
        self._probs = probs
        self.name = name

    @property
    def min_bytes(self) -> int:
        """Smallest possible flow size."""
        return int(self._sizes[0])

    @property
    def max_bytes(self) -> int:
        """Largest possible flow size."""
        return int(self._sizes[-1])

    def quantile(self, u: float) -> float:
        """Inverse CDF at ``u`` in [0, 1]."""
        if not 0.0 <= u <= 1.0:
            raise ValueError("quantile argument must be in [0, 1]")
        index = bisect.bisect_left(self._probs, u)
        if index == 0:
            return self._sizes[0]
        lo_p, hi_p = self._probs[index - 1], self._probs[index]
        lo_s, hi_s = self._sizes[index - 1], self._sizes[index]
        fraction = (u - lo_p) / (hi_p - lo_p)
        return math.exp(
            math.log(lo_s) + fraction * (math.log(hi_s) - math.log(lo_s))
        )

    def cdf(self, size_bytes: float) -> float:
        """Cumulative probability of flows of at most ``size_bytes``."""
        if size_bytes < self._sizes[0]:
            return 0.0
        if size_bytes >= self._sizes[-1]:
            return 1.0
        index = bisect.bisect_right(self._sizes, size_bytes)
        lo_s, hi_s = self._sizes[index - 1], self._sizes[index]
        lo_p, hi_p = self._probs[index - 1], self._probs[index]
        fraction = (math.log(size_bytes) - math.log(lo_s)) / (
            math.log(hi_s) - math.log(lo_s)
        )
        return lo_p + fraction * (hi_p - lo_p)

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (at least 1 byte)."""
        return max(1, round(self.quantile(rng.random())))

    def mean(self) -> float:
        """Exact mean flow size under log-uniform interpolation.

        The mean of a log-uniform variable on [a, b] is (b - a) / ln(b / a);
        each segment contributes its probability mass times that value.
        """
        total = 0.0
        for i in range(len(self._sizes) - 1):
            a, b = self._sizes[i], self._sizes[i + 1]
            mass = self._probs[i + 1] - self._probs[i]
            total += mass * (b - a) / math.log(b / a)
        return total

    def truncated(self, max_bytes: int) -> "EmpiricalCDF":
        """A copy of this distribution with its size tail capped.

        Anchors above ``max_bytes`` are dropped and the tail probability
        mass is spread log-uniformly up to the cap.  Scaled-down experiment
        runs use this so the largest flow's service time stays small
        relative to the run length, mirroring the ratio of the paper's 30 ms
        runs to its 10 MB maximum flow (see DESIGN.md).
        """
        if max_bytes >= self._sizes[-1]:
            return self
        if max_bytes <= self._sizes[0]:
            raise ValueError("cap below the distribution's minimum size")
        points = [
            (s, p)
            for s, p in zip(self._sizes, self._probs)
            if s < max_bytes and p < 1.0
        ]
        points.append((float(max_bytes), 1.0))
        return EmpiricalCDF(points, name=f"{self.name}-cap{max_bytes}")

    def bytes_fraction_above(self, size_bytes: float) -> float:
        """Fraction of total traffic bytes carried by flows above a size.

        Used to verify headline trace statistics (e.g. Hadoop: more than 80%
        of bytes come from flows larger than 100 KB).
        """
        total = self.mean()
        above = 0.0
        for i in range(len(self._sizes) - 1):
            a, b = self._sizes[i], self._sizes[i + 1]
            mass = self._probs[i + 1] - self._probs[i]
            if b <= size_bytes:
                continue
            lo = max(a, size_bytes)
            # Mean contribution of the sub-segment [lo, b] of a log-uniform
            # segment [a, b]: mass is proportional to log-length.
            sub_mass = mass * (math.log(b) - math.log(lo)) / (
                math.log(b) - math.log(a)
            )
            above += sub_mass * (b - lo) / math.log(b / lo) if b > lo else 0.0
        return above / total

    def __repr__(self) -> str:
        return (
            f"EmpiricalCDF({self.name or 'unnamed'}, "
            f"{self.min_bytes}B..{self.max_bytes}B, mean={self.mean():.0f}B)"
        )


class FixedSize:
    """A degenerate distribution: every flow has the same size.

    Matches :class:`EmpiricalCDF`'s sampling interface so synthetic workloads
    (incast, all-to-all) can flow through the same generators.
    """

    def __init__(self, size_bytes: int, name: str = "") -> None:
        if size_bytes < 1:
            raise ValueError("flow size must be at least one byte")
        self._size = size_bytes
        self.name = name or f"fixed-{size_bytes}B"

    def sample(self, rng: random.Random) -> int:
        """Return the fixed size."""
        return self._size

    def mean(self) -> float:
        """Return the fixed size."""
        return float(self._size)
