"""Generator-based workload streams: lazy traffic for million-flow runs.

The materialized generators in :mod:`repro.workloads.generators` build the
whole flow list up front — fine for the paper's figures, fatal for the
ROADMAP's "heavy traffic from millions of users" regime where the trace
alone would dwarf memory.  This module is the lazy counterpart (DESIGN.md
section 11):

* :func:`poisson_flow_stream` yields the *exact same flows* as
  :func:`~repro.workloads.generators.poisson_workload` (identical RNG draw
  order), one at a time, in arrival order.
* :func:`heavy_poisson_stream` sizes the trace by a target **flow count**
  instead of a duration — the shape of a sustained heavy-load benchmark,
  where the question is "how fast can the engine chew through N flows", not
  "what happens in T nanoseconds".
* :func:`merge_workload_streams` lazily merges arrival-ordered streams with
  a heap, keyed on ``(arrival_ns, fid)`` so equal-arrival flows interleave
  in deterministic fid order whatever the stream boundaries were.

Every stream yields flows with non-decreasing arrival times, which is what
the engines' ``stream=True`` mode requires.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable, Iterator

from ..sim.flows import Flow
from .generators import network_arrival_rate_per_ns, uniform_pair


def _arrival_key(flow: Flow) -> tuple[float, int]:
    return (flow.arrival_ns, flow.fid)


def _checked_order(stream: Iterable[Flow]) -> Iterator[Flow]:
    """Pass flows through, raising if the (arrival, fid) key ever drops."""
    last: tuple[float, int] | None = None
    for flow in stream:
        key = (flow.arrival_ns, flow.fid)
        if last is not None and key < last:
            raise ValueError(
                f"flow {flow.fid} (arrival {flow.arrival_ns} ns) is out of "
                f"order after (arrival {last[0]} ns, fid {last[1]}); merge "
                "inputs must be sorted by (arrival_ns, fid)"
            )
        last = key
        yield flow


def merge_workload_streams(*streams: Iterable[Flow]) -> Iterator[Flow]:
    """Lazily merge arrival-ordered flow streams into one ordered stream.

    A ``heapq.merge`` keyed on ``(arrival_ns, fid)``: memory is O(number of
    streams), never O(flows), and equal-arrival flows from different streams
    come out in fid order — a deterministic tiebreak that does not depend on
    how the workload was split into streams.  Each input must itself be
    sorted by that key (every generator in this package is, because fids
    increase in generation order); a violation raises mid-stream naming the
    offending flow.  Flow-id uniqueness across streams is the caller's
    contract (share one ``fids`` counter), exactly as for
    :func:`~repro.workloads.generators.merge_workloads`.
    """
    return heapq.merge(
        *(_checked_order(s) for s in streams), key=_arrival_key
    )


def poisson_flow_stream(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng,
    tag: str = "",
    fids: Iterator[int] | None = None,
) -> Iterator[Flow]:
    """Lazy Poisson arrivals over ``duration_ns`` at a target network load.

    Yields exactly the flows :func:`~repro.workloads.generators
    .poisson_workload` would return, in the same order, from the same RNG
    draws — ``list(poisson_flow_stream(...))`` is that function.
    """
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    if fids is None:
        fids = itertools.count()
    t = rng.expovariate(rate)
    while t < duration_ns:
        src, dst = uniform_pair(num_tors, rng)
        yield Flow(
            fid=next(fids),
            src=src,
            dst=dst,
            size_bytes=size_dist.sample(rng),
            arrival_ns=t,
            tag=tag,
        )
        t += rng.expovariate(rate)


def heavy_poisson_stream(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    num_flows: int,
    rng,
    tag: str = "",
    fids: Iterator[int] | None = None,
) -> Iterator[Flow]:
    """Lazy Poisson arrivals sized by a target flow count, not a duration.

    The heavy-load benchmark workload: arrivals keep coming at the load's
    rate until exactly ``num_flows`` flows have been emitted.  Per-flow RNG
    draw order matches :func:`poisson_flow_stream`, so a duration-bounded
    stream at the same seed is a prefix of this one.
    """
    if num_flows <= 0:
        raise ValueError("flow count must be positive")
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    if fids is None:
        fids = itertools.count()
    t = 0.0
    for _ in range(num_flows):
        t += rng.expovariate(rate)
        src, dst = uniform_pair(num_tors, rng)
        yield Flow(
            fid=next(fids),
            src=src,
            dst=dst,
            size_bytes=size_dist.sample(rng),
            arrival_ns=t,
            tag=tag,
        )


def heavy_poisson_span_ns(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    num_flows: int,
) -> float:
    """Expected arrival span of a :func:`heavy_poisson_stream` trace.

    ``num_flows / rate`` — what a caller should budget (plus drain margin)
    when running the stream to completion.
    """
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    return num_flows / rate
