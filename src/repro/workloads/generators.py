"""Flow arrival generators and the paper's load model (section 4.1).

The network load is defined as ``L = F / (R * N * tau)`` where ``F`` is the
mean flow size, ``R`` the per-ToR host-aggregate bandwidth, ``N`` the number
of ToRs, and ``tau`` the network-wide mean flow inter-arrival time.  Flows
arrive as a Poisson process with sources and destinations chosen uniformly at
random.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator

from ..sim.flows import Flow


def network_arrival_rate_per_ns(
    load: float, mean_flow_bytes: float, num_tors: int, host_aggregate_gbps: float
) -> float:
    """Network-wide Poisson flow arrival rate (flows per ns) for a load.

    Inverting the load model: ``1/tau = L * R * N / F`` with F in bits.
    Gbps conveniently equals bits-per-ns, so no unit juggling is needed.
    """
    if load <= 0:
        raise ValueError("load must be positive")
    if mean_flow_bytes <= 0:
        raise ValueError("mean flow size must be positive")
    return load * host_aggregate_gbps * num_tors / (mean_flow_bytes * 8.0)


def uniform_pair(num_tors: int, rng: random.Random) -> tuple[int, int]:
    """A uniformly random ordered pair of distinct ToRs."""
    src = rng.randrange(num_tors)
    dst = rng.randrange(num_tors - 1)
    if dst >= src:
        dst += 1
    return src, dst


def poisson_workload(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng: random.Random,
    tag: str = "",
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """Poisson arrivals over ``duration_ns`` at a target network load.

    ``size_dist`` is anything with ``sample(rng)`` and ``mean()`` —
    an :class:`~repro.workloads.distributions.EmpiricalCDF` or ``FixedSize``.
    """
    if duration_ns <= 0:
        raise ValueError("duration must be positive")
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, host_aggregate_gbps
    )
    if fids is None:
        fids = itertools.count()
    flows = []
    t = rng.expovariate(rate)
    while t < duration_ns:
        src, dst = uniform_pair(num_tors, rng)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=size_dist.sample(rng),
                arrival_ns=t,
                tag=tag,
            )
        )
        t += rng.expovariate(rate)
    return flows


def single_pair_stream(
    src: int,
    dst: int,
    total_bytes: int,
    start_ns: float = 0.0,
    chunk_bytes: int | None = None,
    fids: Iterator[int] | None = None,
    tag: str = "stream",
) -> list[Flow]:
    """A continuous byte stream between one ToR pair (Fig 19's workload).

    The stream is one large flow by default; pass ``chunk_bytes`` to split it
    into back-to-back flows arriving together.
    """
    if total_bytes <= 0:
        raise ValueError("stream must carry bytes")
    if fids is None:
        fids = itertools.count()
    if chunk_bytes is None:
        return [
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=total_bytes,
                arrival_ns=start_ns,
                tag=tag,
            )
        ]
    flows = []
    remaining = total_bytes
    while remaining > 0:
        size = min(chunk_bytes, remaining)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=size,
                arrival_ns=start_ns,
                tag=tag,
            )
        )
        remaining -= size
    return flows


def merge_workloads(*workloads: list[Flow]) -> list[Flow]:
    """Merge several arrival-ordered workloads into one flow list.

    A lazy heap merge keyed on ``(arrival_ns, fid)`` — no full re-sort —
    so equal-arrival flows from different workloads land in deterministic
    fid order regardless of argument order.  This ordering feeds spec
    hashes and golden digests, so it is part of the reproducibility
    contract.  Inputs must already be sorted by that key (every generator
    in this package is); unsorted input raises rather than silently
    misordering.  Flow ids must be unique across the inputs (share one
    ``fids`` counter between generators to guarantee that).
    """
    from .streams import merge_workload_streams

    merged = list(merge_workload_streams(*workloads))
    fids = {flow.fid for flow in merged}
    if len(fids) != len(merged):
        raise ValueError("flow ids collide across merged workloads")
    return merged
