"""Incast, all-to-all, and mixed workloads (sections 4.2 and 4.4).

* **Incast** — ``degree`` source ToRs synchronously send one small flow to
  the same destination (Fig 7a: 1 KB flows, degrees 1..50).
* **All-to-all** — every ToR synchronously sends an equal-sized flow to every
  other ToR (Fig 7b: flow sizes 1..500 KB).
* **Mixed** — Poisson background traffic plus randomly injected incasts that
  consume a target fraction of per-ToR downlink bandwidth (Fig 13a: degree
  20, 1 KB flows, 2% of bandwidth).
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Iterator

from ..sim.config import KB
from ..sim.flows import Flow
from .generators import poisson_workload

INCAST_TAG = "incast"
BACKGROUND_TAG = "background"


def incast_workload(
    num_tors: int,
    degree: int,
    dst: int,
    flow_bytes: int = 1 * KB,
    at_ns: float = 0.0,
    rng: random.Random | None = None,
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """One incast: ``degree`` distinct sources hit ``dst`` simultaneously."""
    if not 1 <= degree <= num_tors - 1:
        raise ValueError(
            f"incast degree must be in [1, {num_tors - 1}], got {degree}"
        )
    if not 0 <= dst < num_tors:
        raise ValueError("destination out of range")
    candidates = [t for t in range(num_tors) if t != dst]
    if rng is None:
        sources = candidates[:degree]
    else:
        sources = rng.sample(candidates, degree)
    if fids is None:
        fids = itertools.count()
    return [
        Flow(
            fid=next(fids),
            src=src,
            dst=dst,
            size_bytes=flow_bytes,
            arrival_ns=at_ns,
            tag=INCAST_TAG,
        )
        for src in sources
    ]


def all_to_all_workload(
    num_tors: int,
    flow_bytes: int,
    at_ns: float = 0.0,
    fids: Iterator[int] | None = None,
) -> list[Flow]:
    """Every ToR sends one equal-sized flow to every other ToR at once."""
    if fids is None:
        fids = itertools.count()
    return [
        Flow(
            fid=next(fids),
            src=src,
            dst=dst,
            size_bytes=flow_bytes,
            arrival_ns=at_ns,
            tag="all-to-all",
        )
        for src in range(num_tors)
        for dst in range(num_tors)
        if src != dst
    ]


def mixed_incast_workload(
    size_dist,
    load: float,
    num_tors: int,
    host_aggregate_gbps: float,
    duration_ns: float,
    rng: random.Random,
    incast_degree: int = 20,
    incast_flow_bytes: int = 1 * KB,
    incast_bandwidth_fraction: float = 0.02,
) -> list[Flow]:
    """Poisson background traffic with incasts mixed in (Fig 13a).

    Incast events form their own Poisson process whose rate is set so all
    incast bytes add up to ``incast_bandwidth_fraction`` of the network's
    aggregate downlink bandwidth.  Background flows carry the tag
    ``"background"`` and incast flows ``"incast"`` so their metrics separate.

    The paper's default degree is 20; on fabrics too small to host it the
    degree is clamped to ``num_tors - 1``.
    """
    if not 0 < incast_bandwidth_fraction < 1:
        raise ValueError("incast bandwidth fraction must be in (0, 1)")
    incast_degree = min(incast_degree, num_tors - 1)
    fids = itertools.count()
    background = poisson_workload(
        size_dist,
        load,
        num_tors,
        host_aggregate_gbps,
        duration_ns,
        rng,
        tag=BACKGROUND_TAG,
        fids=fids,
    )
    incast_bits = incast_degree * incast_flow_bytes * 8.0
    event_rate = (
        incast_bandwidth_fraction * host_aggregate_gbps * num_tors / incast_bits
    )
    incasts: list[Flow] = []
    t = rng.expovariate(event_rate)
    while t < duration_ns:
        dst = rng.randrange(num_tors)
        incasts.extend(
            incast_workload(
                num_tors,
                incast_degree,
                dst,
                flow_bytes=incast_flow_bytes,
                at_ns=t,
                rng=rng,
                fids=fids,
            )
        )
        t += rng.expovariate(event_rate)
    merged = background + incasts
    merged.sort(key=lambda f: f.arrival_ns)
    return merged


def incast_finish_time_ns(flows: list[Flow], at_ns: float) -> float:
    """Completion time of the last incast flow, relative to injection."""
    incast_flows = [f for f in flows if f.tag == INCAST_TAG]
    if not incast_flows:
        raise ValueError("no incast flows in the workload")
    if not all(f.completed for f in incast_flows):
        raise ValueError("incast has not finished")
    return max(f.completed_ns for f in incast_flows) - at_ns
