"""Workload (de)serialization: bring your own traces.

Flows serialize to a line-oriented CSV with a fixed header —
``fid,src,dst,size_bytes,arrival_ns,tag`` — so real cluster traces can be
replayed through either simulator, and generated workloads can be archived
for exact reruns.  The format round-trips everything a
:class:`~repro.sim.flows.Flow` carries at arrival time (completion state is
simulation output, not workload input).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable
from pathlib import Path

from ..sim.flows import Flow

HEADER = ["fid", "src", "dst", "size_bytes", "arrival_ns", "tag"]


def dumps(flows: Iterable[Flow]) -> str:
    """Serialize flows to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(HEADER)
    for flow in flows:
        writer.writerow(
            [flow.fid, flow.src, flow.dst, flow.size_bytes,
             repr(flow.arrival_ns), flow.tag]
        )
    return buffer.getvalue()


def _parse_field(line_number: int, name: str, raw: str, cast):
    """Convert one CSV field, turning raw cast errors into located ones."""
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(
            f"line {line_number}: {name} must be a{'n integer' if cast is int else ' number'}, "
            f"got {raw!r}"
        ) from None


def loads(text: str) -> list[Flow]:
    """Parse and validate flows from CSV text.

    Rows are validated with line-numbered error messages: malformed fields,
    non-positive sizes, negative arrival times, self-loops (``src == dst``),
    out-of-range negatives, and duplicate flow ids are all rejected before
    any simulation sees the workload.  Rows need not be arrival-ordered —
    non-monotonic input is legal and is stably sorted by arrival time on
    load (ties keep file order), so any row permutation of a workload file
    replays identically.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty workload file") from None
    if header != HEADER:
        raise ValueError(
            f"unexpected workload header {header!r}; expected {HEADER!r}"
        )
    flows = []
    seen_fids: dict[int, int] = {}
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(HEADER):
            raise ValueError(
                f"line {line_number}: expected {len(HEADER)} fields, "
                f"got {len(row)}"
            )
        raw_fid, raw_src, raw_dst, raw_size, raw_arrival, tag = row
        fid = _parse_field(line_number, "fid", raw_fid, int)
        src = _parse_field(line_number, "src", raw_src, int)
        dst = _parse_field(line_number, "dst", raw_dst, int)
        size_bytes = _parse_field(line_number, "size_bytes", raw_size, int)
        arrival_ns = _parse_field(line_number, "arrival_ns", raw_arrival, float)
        if fid < 0:
            raise ValueError(f"line {line_number}: flow id must be non-negative")
        if src < 0 or dst < 0:
            raise ValueError(
                f"line {line_number}: ToR indices must be non-negative "
                f"(got src={src}, dst={dst})"
            )
        if size_bytes <= 0:
            raise ValueError(
                f"line {line_number}: flow size must be positive, "
                f"got {size_bytes}"
            )
        if not arrival_ns >= 0:
            raise ValueError(
                f"line {line_number}: arrival time must be non-negative, "
                f"got {raw_arrival}"
            )
        if src == dst:
            raise ValueError(
                f"line {line_number}: flow {fid} has src == dst == {src}"
            )
        if fid in seen_fids:
            raise ValueError(
                f"line {line_number}: duplicate flow id {fid} "
                f"(first used on line {seen_fids[fid]})"
            )
        seen_fids[fid] = line_number
        flows.append(
            Flow(
                fid=fid,
                src=src,
                dst=dst,
                size_bytes=size_bytes,
                arrival_ns=arrival_ns,
                tag=tag,
            )
        )
    flows.sort(key=lambda f: f.arrival_ns)
    return flows


def save(flows: Iterable[Flow], path: str | Path) -> None:
    """Write a workload file."""
    Path(path).write_text(dumps(flows))


def load(path: str | Path) -> list[Flow]:
    """Read a workload file."""
    return loads(Path(path).read_text())


def validate_for_fabric(flows: Iterable[Flow], num_tors: int) -> None:
    """Check a loaded workload fits a fabric of ``num_tors`` ToRs."""
    for flow in flows:
        if not 0 <= flow.src < num_tors:
            raise ValueError(f"flow {flow.fid}: source {flow.src} out of range")
        if not 0 <= flow.dst < num_tors:
            raise ValueError(
                f"flow {flow.fid}: destination {flow.dst} out of range"
            )
