"""Workload (de)serialization: bring your own traces.

Flows serialize to a line-oriented CSV with a fixed header —
``fid,src,dst,size_bytes,arrival_ns,tag`` — so real cluster traces can be
replayed through either simulator, and generated workloads can be archived
for exact reruns.  The format round-trips everything a
:class:`~repro.sim.flows.Flow` carries at arrival time (completion state is
simulation output, not workload input).

Two readers share one row validator:

* :func:`loads`/:func:`load` — eager: parse everything, sort by arrival.
* :func:`stream`/:func:`stream_chunks` — chunked: the file is consumed
  incrementally and flows are yielded as they parse, so a million-flow
  trace never materializes.  Streaming cannot sort for you, so rows must
  already be arrival-ordered; validation errors keep their line numbers
  even when they surface mid-stream, after earlier flows were yielded.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Iterator
from pathlib import Path

from ..sim.flows import Flow

HEADER = ["fid", "src", "dst", "size_bytes", "arrival_ns", "tag"]

DEFAULT_CHUNK_ROWS = 4096
"""How many flows :func:`stream_chunks` batches per yielded list."""


def dumps(flows: Iterable[Flow]) -> str:
    """Serialize flows to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(HEADER)
    for flow in flows:
        writer.writerow(
            [flow.fid, flow.src, flow.dst, flow.size_bytes,
             repr(flow.arrival_ns), flow.tag]
        )
    return buffer.getvalue()


def _parse_field(line_number: int, name: str, raw: str, cast):
    """Convert one CSV field, turning raw cast errors into located ones."""
    try:
        return cast(raw)
    except ValueError:
        raise ValueError(
            f"line {line_number}: {name} must be a{'n integer' if cast is int else ' number'}, "
            f"got {raw!r}"
        ) from None


def _check_header(reader) -> None:
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty workload file") from None
    if header != HEADER:
        raise ValueError(
            f"unexpected workload header {header!r}; expected {HEADER!r}"
        )


def _flow_from_row(
    line_number: int, row: list[str], seen_fids: dict[int, int] | None
) -> Flow:
    """Validate one CSV row into a Flow, raising line-numbered errors."""
    if len(row) != len(HEADER):
        raise ValueError(
            f"line {line_number}: expected {len(HEADER)} fields, "
            f"got {len(row)}"
        )
    raw_fid, raw_src, raw_dst, raw_size, raw_arrival, tag = row
    fid = _parse_field(line_number, "fid", raw_fid, int)
    src = _parse_field(line_number, "src", raw_src, int)
    dst = _parse_field(line_number, "dst", raw_dst, int)
    size_bytes = _parse_field(line_number, "size_bytes", raw_size, int)
    arrival_ns = _parse_field(line_number, "arrival_ns", raw_arrival, float)
    if fid < 0:
        raise ValueError(f"line {line_number}: flow id must be non-negative")
    if src < 0 or dst < 0:
        raise ValueError(
            f"line {line_number}: ToR indices must be non-negative "
            f"(got src={src}, dst={dst})"
        )
    if size_bytes <= 0:
        raise ValueError(
            f"line {line_number}: flow size must be positive, "
            f"got {size_bytes}"
        )
    if not arrival_ns >= 0:
        raise ValueError(
            f"line {line_number}: arrival time must be non-negative, "
            f"got {raw_arrival}"
        )
    if src == dst:
        raise ValueError(
            f"line {line_number}: flow {fid} has src == dst == {src}"
        )
    if seen_fids is not None:
        if fid in seen_fids:
            raise ValueError(
                f"line {line_number}: duplicate flow id {fid} "
                f"(first used on line {seen_fids[fid]})"
            )
        seen_fids[fid] = line_number
    return Flow(
        fid=fid,
        src=src,
        dst=dst,
        size_bytes=size_bytes,
        arrival_ns=arrival_ns,
        tag=tag,
    )


def loads(text: str) -> list[Flow]:
    """Parse and validate flows from CSV text.

    Rows are validated with line-numbered error messages: malformed fields,
    non-positive sizes, negative arrival times, self-loops (``src == dst``),
    out-of-range negatives, and duplicate flow ids are all rejected before
    any simulation sees the workload.  Rows need not be arrival-ordered —
    non-monotonic input is legal and is stably sorted by arrival time on
    load (ties keep file order), so any row permutation of a workload file
    replays identically.
    """
    reader = csv.reader(io.StringIO(text))
    _check_header(reader)
    flows = []
    seen_fids: dict[int, int] = {}
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        flows.append(_flow_from_row(line_number, row, seen_fids))
    flows.sort(key=lambda f: f.arrival_ns)
    return flows


def save(flows: Iterable[Flow], path: str | Path) -> None:
    """Write a workload file."""
    Path(path).write_text(dumps(flows))


def load(path: str | Path) -> list[Flow]:
    """Read a workload file."""
    return loads(Path(path).read_text())


def stream(
    path: str | Path, *, check_duplicate_fids: bool = True
) -> Iterator[Flow]:
    """Read a workload file incrementally, never holding the whole trace.

    Yields validated flows one at a time while the file is consumed through
    the OS read buffer — memory stays O(1) in the trace length.  The same
    line-numbered validation as :func:`loads` applies; an invalid row
    raises when the stream reaches it, *after* earlier flows were yielded,
    so a replay that began is cut off with the offending line named.

    Unlike the eager loader, streaming cannot sort: rows must already be
    non-decreasing in ``arrival_ns``, and a backwards arrival raises with
    its line number (sort the file once with :func:`load`/:func:`save`).
    ``check_duplicate_fids=False`` drops the duplicate-id guard and with it
    the reader's only O(flows) side structure (an int-keyed dict), for
    traces whose producer already guarantees unique ids.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        _check_header(reader)
        seen_fids: dict[int, int] | None = (
            {} if check_duplicate_fids else None
        )
        last_arrival = 0.0
        for line_number, row in enumerate(reader, start=2):
            if not row:
                continue
            flow = _flow_from_row(line_number, row, seen_fids)
            if flow.arrival_ns < last_arrival:
                raise ValueError(
                    f"line {line_number}: arrival {flow.arrival_ns} ns goes "
                    f"backwards (previous row arrived at {last_arrival} ns); "
                    "streaming replay needs an arrival-sorted file — load() "
                    "sorts eagerly"
                )
            last_arrival = flow.arrival_ns
            yield flow


def stream_chunks(
    path: str | Path,
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    *,
    check_duplicate_fids: bool = True,
) -> Iterator[list[Flow]]:
    """Read a workload file as bounded-size flow batches.

    Batching amortizes per-flow call overhead for consumers that process
    flows in bulk (bulk registration, format conversion) while keeping
    residency at ``chunk_rows`` flows.  The final chunk may be short; the
    validation and ordering rules are :func:`stream`'s.
    """
    if chunk_rows <= 0:
        raise ValueError("chunk_rows must be positive")
    chunk: list[Flow] = []
    for flow in stream(path, check_duplicate_fids=check_duplicate_fids):
        chunk.append(flow)
        if len(chunk) >= chunk_rows:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def validate_for_fabric(flows: Iterable[Flow], num_tors: int) -> None:
    """Check a loaded workload fits a fabric of ``num_tors`` ToRs."""
    for flow in flows:
        if not 0 <= flow.src < num_tors:
            raise ValueError(f"flow {flow.fid}: source {flow.src} out of range")
        if not 0 <= flow.dst < num_tors:
            raise ValueError(
                f"flow {flow.fid}: destination {flow.dst} out of range"
            )
