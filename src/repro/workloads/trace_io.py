"""Workload (de)serialization: bring your own traces.

Flows serialize to a line-oriented CSV with a fixed header —
``fid,src,dst,size_bytes,arrival_ns,tag`` — so real cluster traces can be
replayed through either simulator, and generated workloads can be archived
for exact reruns.  The format round-trips everything a
:class:`~repro.sim.flows.Flow` carries at arrival time (completion state is
simulation output, not workload input).
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable
from pathlib import Path

from ..sim.flows import Flow

HEADER = ["fid", "src", "dst", "size_bytes", "arrival_ns", "tag"]


def dumps(flows: Iterable[Flow]) -> str:
    """Serialize flows to CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(HEADER)
    for flow in flows:
        writer.writerow(
            [flow.fid, flow.src, flow.dst, flow.size_bytes,
             repr(flow.arrival_ns), flow.tag]
        )
    return buffer.getvalue()


def loads(text: str) -> list[Flow]:
    """Parse flows from CSV text (arrival-sorted)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise ValueError("empty workload file") from None
    if header != HEADER:
        raise ValueError(
            f"unexpected workload header {header!r}; expected {HEADER!r}"
        )
    flows = []
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != len(HEADER):
            raise ValueError(
                f"line {line_number}: expected {len(HEADER)} fields, "
                f"got {len(row)}"
            )
        fid, src, dst, size_bytes, arrival_ns, tag = row
        flows.append(
            Flow(
                fid=int(fid),
                src=int(src),
                dst=int(dst),
                size_bytes=int(size_bytes),
                arrival_ns=float(arrival_ns),
                tag=tag,
            )
        )
    fids = [flow.fid for flow in flows]
    if len(set(fids)) != len(fids):
        raise ValueError("duplicate flow ids in workload file")
    flows.sort(key=lambda f: f.arrival_ns)
    return flows


def save(flows: Iterable[Flow], path: str | Path) -> None:
    """Write a workload file."""
    Path(path).write_text(dumps(flows))


def load(path: str | Path) -> list[Flow]:
    """Read a workload file."""
    return loads(Path(path).read_text())


def validate_for_fabric(flows: Iterable[Flow], num_tors: int) -> None:
    """Check a loaded workload fits a fabric of ``num_tors`` ToRs."""
    for flow in flows:
        if not 0 <= flow.src < num_tors:
            raise ValueError(f"flow {flow.fid}: source {flow.src} out of range")
        if not 0 <= flow.dst < num_tors:
            raise ValueError(
                f"flow {flow.fid}: destination {flow.dst} out of range"
            )
