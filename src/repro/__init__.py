"""repro - a reproduction of NegotiaToR (SIGCOMM 2024).

NegotiaToR is an on-demand reconfigurable optical datacenter network: ToR
switches interconnected by passive AWGRs negotiate conflict-free one-hop
connections every epoch through a distributed REQUEST/GRANT/ACCEPT matching,
with a piggybacking mechanism that lets mice flows bypass the scheduling
delay entirely.

Quick start::

    import random
    from repro import (
        SimConfig, ParallelNetwork, NegotiaToRSimulator, hadoop,
        poisson_workload,
    )

    config = SimConfig(num_tors=32, ports_per_tor=4)
    topology = ParallelNetwork(config.num_tors, config.ports_per_tor)
    rng = random.Random(1)
    flows = poisson_workload(
        hadoop(), load=0.5, num_tors=config.num_tors,
        host_aggregate_gbps=config.host_aggregate_gbps,
        duration_ns=2_000_000, rng=rng,
    )
    sim = NegotiaToRSimulator(config, topology, flows)
    sim.run(duration_ns=2_000_000)
    print(sim.summary())
"""

from .core.efficiency import asymptotic_match_ratio, expected_match_ratio
from .core.matching import Match, MatchingResult, NegotiaToRMatcher
from .core.pipeline import PipelinedScheduler
from .core.relay import RelayPolicy, SelectiveRelaySimulator
from .core.rings import RoundRobinRing
from .core.variants import make_scheduler
from .sim.adaptive import AdaptiveSimulator
from .sim.config import (
    KB,
    MICE_THRESHOLD_BYTES,
    AdaptiveConfig,
    EpochConfig,
    EpochTiming,
    SimConfig,
    epoch_config_for_reconfiguration_delay,
    epoch_config_without_piggyback,
)
from .sim.failures import (
    Direction,
    FailureEvent,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
    random_failure_plan,
)
from .sim.flows import Flow, FlowTracker
from .sim.metrics import BandwidthRecorder, MatchRatioRecorder, RunSummary
from .sim.buffers import ReceiverBuffer
from .sim.network import NegotiaToRSimulator
from .sim.oblivious import ObliviousSimulator
from .sim.observability import EpochStats, EpochStatsRecorder
from .sim.queues import PiasDestQueue
from .topology.awgr import AWGR, OpticalPath
from .topology.base import FlatTopology
from .topology.parallel import ParallelNetwork
from .topology.thinclos import ThinClos
from .topology.validation import TopologyContractError, validate_topology
from .workloads.distributions import EmpiricalCDF, FixedSize
from .workloads.generators import (
    merge_workloads,
    network_arrival_rate_per_ns,
    poisson_workload,
    single_pair_stream,
)
from .workloads.incast import (
    all_to_all_workload,
    incast_finish_time_ns,
    incast_workload,
    mixed_incast_workload,
)
from .workloads.streams import (
    heavy_poisson_stream,
    merge_workload_streams,
    poisson_flow_stream,
)
from .workloads.traces import google, hadoop, websearch

__version__ = "1.0.0"

__all__ = [
    "AWGR",
    "AdaptiveConfig",
    "AdaptiveSimulator",
    "BandwidthRecorder",
    "Direction",
    "EmpiricalCDF",
    "EpochConfig",
    "EpochStats",
    "EpochStatsRecorder",
    "EpochTiming",
    "FailureEvent",
    "FailurePlan",
    "FixedSize",
    "FlatTopology",
    "Flow",
    "FlowTracker",
    "KB",
    "LinkFailureModel",
    "LinkRef",
    "Match",
    "MatchingResult",
    "MatchRatioRecorder",
    "MICE_THRESHOLD_BYTES",
    "NegotiaToRMatcher",
    "NegotiaToRSimulator",
    "ObliviousSimulator",
    "OpticalPath",
    "ParallelNetwork",
    "PiasDestQueue",
    "PipelinedScheduler",
    "ReceiverBuffer",
    "RelayPolicy",
    "RoundRobinRing",
    "RunSummary",
    "SelectiveRelaySimulator",
    "SimConfig",
    "ThinClos",
    "TopologyContractError",
    "all_to_all_workload",
    "asymptotic_match_ratio",
    "epoch_config_for_reconfiguration_delay",
    "epoch_config_without_piggyback",
    "expected_match_ratio",
    "google",
    "hadoop",
    "incast_finish_time_ns",
    "incast_workload",
    "heavy_poisson_stream",
    "make_scheduler",
    "merge_workload_streams",
    "merge_workloads",
    "mixed_incast_workload",
    "network_arrival_rate_per_ns",
    "poisson_flow_stream",
    "poisson_workload",
    "random_failure_plan",
    "single_pair_stream",
    "validate_topology",
    "websearch",
]
