"""Design-space variants of NegotiaToR Matching (section 3.5, appendix A.2).

The paper argues its minimalist choices — no iteration, binary requests,
stateless scheduling — by building the more complex alternatives and showing
they do not pay for themselves.  This module implements those alternatives:

* :class:`IterativeScheduler` — k-round request/grant/accept (A.2.1); each
  extra iteration adds three epochs of scheduling delay, and the accumulated
  matching is applied atomically after the last round.
* :class:`DataSizeScheduler` — goodput-oriented informative requests carrying
  the aggregated per-destination queue size; destinations grant the largest
  backlog first (A.2.3).
* :class:`HolDelayScheduler` — FCT-oriented informative requests carrying a
  weighted head-of-line waiting delay, alpha = 0.001 on the lowest band
  (A.2.3).
* :class:`StatefulScheduler` — destinations keep per-source demand matrices
  updated by new-data reports, tentative decrements on grant, and reverts on
  reject (A.2.4).
* :class:`ProjecToRScheduler` — per-port requests with waiting-delay
  priority, transplanting ProjecToR's scheduler onto the same fabric (A.2.5).

All variants plug into :class:`~repro.sim.network.NegotiaToRSimulator` via
the ``scheduler`` argument, replacing the default
:class:`~repro.core.pipeline.PipelinedScheduler`.
"""

from __future__ import annotations

import random
from collections.abc import Mapping

from ..topology.base import FlatTopology
from ..topology.parallel import ParallelNetwork
from .matching import (
    Match,
    NegotiaToRMatcher,
    PortPredicate,
    _all_ports_usable,
)
from .pipeline import GrantDelivery, PipelinedScheduler, RequestsByDst

# ---------------------------------------------------------------------------
# informative requests (A.2.3)
# ---------------------------------------------------------------------------


class ValuePriorityMatcher(NegotiaToRMatcher):
    """A matcher whose GRANT prefers the request with the largest payload.

    Ties (and absent payloads) fall back to ring order, and the rings still
    advance so the fallback stays fair.  ACCEPT keeps the plain round-robin
    rings: the paper's informative-request variants only alter how
    destinations prioritize, not how sources break ties.
    """

    def _ranked(self, requests: Mapping[int, object], eligible: set[int], ring):
        order = {src: i for i, src in enumerate(ring.ordered_candidates(eligible))}
        return sorted(
            eligible,
            key=lambda src: (-self._priority(requests[src]), order[src]),
        )

    @staticmethod
    def _priority(payload: object) -> float:
        return float(payload) if payload is not None else 0.0

    def _grant_parallel(self, dst, requests, rx_usable, tx_usable):
        rx_usable = rx_usable or _all_ports_usable
        tx_usable = tx_usable or _all_ports_usable
        ring = self._grant_rings[dst]
        ports = [p for p in range(self._ports) if rx_usable(dst, p)]
        candidates = {src for src in requests if src != dst}
        if not ports or not candidates:
            return []
        assigned = []
        for index, port in enumerate(ports):
            eligible = {s for s in candidates if tx_usable(s, port)}
            if not eligible:
                continue
            ranked = self._ranked(requests, eligible, ring)
            # Deal ports down the ranked list so one huge requester does not
            # monopolize every port when backlogs are comparable.
            src = ranked[index % len(ranked)]
            ring.advance_past(src)
            assigned.append((port, src))
        return assigned

    def _grant_thinclos(self, dst, requests, rx_usable, tx_usable):
        rx_usable = rx_usable or _all_ports_usable
        tx_usable = tx_usable or _all_ports_usable
        assigned = []
        for port in range(self._ports):
            if not rx_usable(dst, port):
                continue
            ring = self._grant_rings[dst][port]
            eligible = {
                src
                for src in requests
                if src in ring.members and tx_usable(src, port)
            }
            if not eligible:
                continue
            src = self._ranked(requests, eligible, ring)[0]
            ring.advance_past(src)
            assigned.append((port, src))
        return assigned


class DataSizeScheduler(PipelinedScheduler):
    """Goodput-oriented informative requests: payload = queued bytes."""

    def request_payload(self, src, dst, queue, now_ns):
        return float(queue.pending_bytes)


class HolDelayScheduler(PipelinedScheduler):
    """FCT-oriented informative requests: payload = weighted HoL delay.

    The paper weights the lowest-priority band by a small alpha (0.001 at its
    best setting) so elephant waiting times cannot mask mice waiting times:
    ``HoL = (1 - alpha) * mean(HoL of higher bands) + alpha * HoL(lowest)``.
    """

    def __init__(self, matcher: NegotiaToRMatcher, alpha: float = 0.001) -> None:
        super().__init__(matcher)
        if not 0 <= alpha <= 1:
            raise ValueError("alpha must be in [0, 1]")
        self.alpha = alpha

    def request_payload(self, src, dst, queue, now_ns):
        bands = queue.num_bands
        if bands == 1:
            return queue.head_wait_ns(0, now_ns)
        upper = [queue.head_wait_ns(b, now_ns) for b in range(bands - 1)]
        lowest = queue.head_wait_ns(bands - 1, now_ns)
        return (1 - self.alpha) * sum(upper) / len(upper) + self.alpha * lowest


# ---------------------------------------------------------------------------
# stateful scheduling (A.2.4)
# ---------------------------------------------------------------------------


class StatefulScheduler(PipelinedScheduler):
    """Destination-side demand matrices prevent over-scheduling (A.2.4).

    Sources report *newly arrived* bytes in their requests; each destination
    accumulates them into a per-source matrix.  A request is only granted
    while the matrix shows pending data, and every grant tentatively reserves
    up to one scheduled phase of it.  The accept message piggybacked in the
    next epoch confirms the reservation; a rejected (or lost) grant reverts
    it.
    """

    def __init__(
        self, matcher: NegotiaToRMatcher, phase_capacity_bytes: int
    ) -> None:
        super().__init__(matcher)
        if phase_capacity_bytes <= 0:
            raise ValueError("phase capacity must be positive")
        self._capacity = phase_capacity_bytes
        self._matrix: dict[tuple[int, int], float] = {}
        self._reported: dict[tuple[int, int], int] = {}
        self._tentative: dict[tuple[int, int, int], float] = {}

    @property
    def is_idle(self) -> bool:
        """Idle additionally requires no tentative reservation in flight.

        An unresolved reservation is reverted (a matrix write) on the next
        ``advance``, so skipping epochs while one exists would not be a
        no-op.  The demand matrices themselves are persistent state and do
        not change across empty epochs.
        """
        return super().is_idle and not self._tentative

    def demand_estimate(self, dst: int, src: int) -> float:
        """The destination's current estimate of the source's backlog."""
        return self._matrix.get((dst, src), 0.0)

    def request_payload(self, src, dst, queue, now_ns):
        key = (src, dst)
        total = queue.total_enqueued_bytes
        new_bytes = total - self._reported.get(key, 0)
        self._reported[key] = total
        return float(new_bytes)

    def advance(
        self,
        delivered_requests: RequestsByDst,
        deliver_grants: GrantDelivery,
        rx_usable: PortPredicate | None = None,
        tx_usable: PortPredicate | None = None,
    ) -> tuple[list[Match], int, int]:
        # Grant only the pairs whose matrix still shows demand.
        granted_view = {
            dst: {
                src: payload
                for src, payload in srcs.items()
                if self._matrix.get((dst, src), 0.0) > 0
            }
            for dst, srcs in self._awaiting_grant.items()
        }
        granted_view = {d: s for d, s in granted_view.items() if s}
        grants_by_src, num_grants = self._matcher.grant_step(
            granted_view, rx_usable, tx_usable
        )
        new_tentative: dict[tuple[int, int, int], float] = {}
        for src, grants in grants_by_src.items():
            for dst, port in grants:
                key = (dst, src)
                reserve = min(self._matrix.get(key, 0.0), float(self._capacity))
                self._matrix[key] = self._matrix.get(key, 0.0) - reserve
                new_tentative[(src, port, dst)] = reserve
        surviving_grants = deliver_grants(grants_by_src) if grants_by_src else {}

        matches = self._matcher.accept_step(self._awaiting_accept, tx_usable)

        # Resolve last epoch's reservations: accepted stand, rejected revert.
        accepted = {(m.src, m.port, m.dst) for m in matches}
        for key, reserve in self._tentative.items():
            if key not in accepted:
                src, _port, dst = key
                self._matrix[(dst, src)] = (
                    self._matrix.get((dst, src), 0.0) + reserve
                )
        self._tentative = new_tentative

        grants_answered = self._grants_issued_last_epoch
        self._awaiting_grant = dict(delivered_requests)
        self._awaiting_accept = surviving_grants
        self._grants_issued_last_epoch = num_grants

        # Requests delivered this epoch update the matrices for next epoch.
        for dst, srcs in delivered_requests.items():
            for src, payload in srcs.items():
                if payload:
                    key = (dst, src)
                    self._matrix[key] = self._matrix.get(key, 0.0) + payload
        return matches, grants_answered, len(matches)


# ---------------------------------------------------------------------------
# ProjecToR-style scheduling (A.2.5)
# ---------------------------------------------------------------------------


class ProjecToRMatcher(NegotiaToRMatcher):
    """Per-port, waiting-delay-prioritized matching (appendix A.2.5).

    Requests arrive as ``(tx_port, waiting_delay_ns)`` payloads: the source
    has already committed a specific port to the data bundle.  A destination
    grants each RX port to the waiting-delay maximum among the requests that
    chose that port, and a source accepts its per-port delay maximum.
    """

    def _grant_for_port(self, requests, port, tx_usable, member_filter=None):
        best_src, best_delay = None, -1.0
        for src, payload in requests.items():
            if payload is None:
                continue
            req_port, delay = payload
            if req_port != port or not tx_usable(src, port):
                continue
            if member_filter is not None and src not in member_filter:
                continue
            if delay > best_delay:
                best_src, best_delay = src, delay
        return best_src

    def _grant_parallel(self, dst, requests, rx_usable, tx_usable):
        rx_usable = rx_usable or _all_ports_usable
        tx_usable = tx_usable or _all_ports_usable
        assigned = []
        for port in range(self._ports):
            if not rx_usable(dst, port):
                continue
            src = self._grant_for_port(requests, port, tx_usable)
            if src is not None:
                assigned.append((port, src))
        return assigned

    def _grant_thinclos(self, dst, requests, rx_usable, tx_usable):
        rx_usable = rx_usable or _all_ports_usable
        tx_usable = tx_usable or _all_ports_usable
        assigned = []
        for port in range(self._ports):
            if not rx_usable(dst, port):
                continue
            members = set(self._grant_rings[dst][port].members)
            src = self._grant_for_port(requests, port, tx_usable, members)
            if src is not None:
                assigned.append((port, src))
        return assigned


class ProjecToRScheduler(PipelinedScheduler):
    """Pipeline wrapper choosing ports and delays for ProjecToR requests.

    On the parallel network the source rotates its port choice per pair and
    epoch (bundles are pinned to ports when the request is emitted); on
    thin-clos the topology dictates the port.  The waiting delay is the HoL
    age of the pair's queue, as ProjecToR logs per-bundle waiting times.
    """

    def __init__(self, matcher: NegotiaToRMatcher) -> None:
        super().__init__(matcher)
        self._parallel = isinstance(matcher.topology, ParallelNetwork)
        self._ports = matcher.topology.ports_per_tor
        self._rotation: dict[tuple[int, int], int] = {}
        self._topology = matcher.topology

    def request_payload(self, src, dst, queue, now_ns):
        if self._parallel:
            key = (src, dst)
            port = self._rotation.get(key, (src + dst) % self._ports)
            self._rotation[key] = (port + 1) % self._ports
        else:
            port = self._topology.data_port(src, dst)
        oldest = max(
            queue.head_wait_ns(band, now_ns) for band in range(queue.num_bands)
        )
        return (port, oldest)


# ---------------------------------------------------------------------------
# iterative matching (A.2.1)
# ---------------------------------------------------------------------------


class _IterativeProcess:
    """One scheduling process refined over k iterations."""

    __slots__ = ("start_epoch", "requests", "matches", "locked_tx", "locked_rx")

    def __init__(self, start_epoch: int, requests: RequestsByDst) -> None:
        self.start_epoch = start_epoch
        self.requests = requests
        self.matches: list[Match] = []
        self.locked_tx: set[tuple[int, int]] = set()
        self.locked_rx: set[tuple[int, int]] = set()


class IterativeScheduler:
    """k-iteration NegotiaToR Matching (appendix A.2.1).

    Iteration ``i`` of the process started at epoch ``p`` runs its REQUEST at
    epoch ``p + 3(i-1)``, GRANT one epoch later and ACCEPT another epoch
    later; ports matched by earlier iterations are locked and re-offered
    demand can only land on unmatched ports.  The accumulated matching is
    applied atomically when the last iteration accepts, at epoch
    ``p + 3(k-1) + 2`` — which is exactly the paper's "one more iteration
    adds three epochs of scheduling delay".  With ``iterations=1`` this
    degenerates to the standard pipeline.

    Message-loss filtering applies to first-round requests (the engine
    filters them) and to all grant rounds (via ``deliver_grants``);
    re-request rounds are treated as reliable, which only matters in
    failure experiments the paper does not combine with iteration.
    """

    def __init__(self, matcher: NegotiaToRMatcher, iterations: int) -> None:
        if iterations < 1:
            raise ValueError("need at least one iteration")
        self._matcher = matcher
        self.iterations = iterations
        self._epoch = 0
        self._processes: dict[int, _IterativeProcess] = {}
        self._grants_in_flight: dict[int, dict[int, list[tuple[int, int]]]] = {}
        self._grants_issued: dict[int, int] = {}

    @property
    def matcher(self) -> NegotiaToRMatcher:
        """The ring-state holder this scheduler drives."""
        return self._matcher

    def request_payload(self, src, dst, queue, now_ns):
        """Requests stay binary in the iterative variant."""
        return None

    def observe_sent(self, src, dst, num_bytes):
        """No demand bookkeeping."""

    @property
    def is_idle(self) -> bool:
        """Whether no scheduling process or grant is in flight.

        The internal epoch counter is self-contained (stages are computed
        relative to each process's start epoch), so the engine skipping
        epochs while idle cannot desynchronize it.
        """
        return (
            not self._processes
            and not self._grants_in_flight
            and all(count == 0 for count in self._grants_issued.values())
        )

    def advance(
        self,
        delivered_requests: RequestsByDst,
        deliver_grants: GrantDelivery,
        rx_usable: PortPredicate | None = None,
        tx_usable: PortPredicate | None = None,
    ) -> tuple[list[Match], int, int]:
        rx_usable = rx_usable or _all_ports_usable
        tx_usable = tx_usable or _all_ports_usable
        epoch = self._epoch
        self._epoch += 1
        if delivered_requests:
            self._processes[epoch] = _IterativeProcess(epoch, delivered_requests)

        grants_to_send: dict[int, dict[int, list[tuple[int, int]]]] = {}
        finalized: list[Match] = []
        accepts = 0
        grants_answered = self._grants_issued.pop(epoch - 1, 0)

        for start in list(self._processes):
            process = self._processes[start]
            stage = epoch - start
            iteration, phase = divmod(stage, 3)
            if phase == 1 and iteration < self.iterations:
                grants = self._grant_round(process, rx_usable, tx_usable)
                if grants:
                    grants_to_send[start] = grants
            elif phase == 2 and iteration < self.iterations:
                round_matches = self._accept_round(process, start, tx_usable)
                accepts += len(round_matches)
                process.matches.extend(round_matches)
                if iteration == self.iterations - 1:
                    finalized.extend(process.matches)
                    del self._processes[start]

        issued = 0
        for start, grants in grants_to_send.items():
            issued += sum(len(g) for g in grants.values())
            surviving = deliver_grants(grants)
            self._grants_in_flight[start] = surviving
        self._grants_issued[epoch] = issued
        return finalized, grants_answered, accepts

    def _grant_round(self, process, rx_usable, tx_usable):
        def rx_free(tor, port):
            return (tor, port) not in process.locked_rx and rx_usable(tor, port)

        def tx_free(tor, port):
            return (tor, port) not in process.locked_tx and tx_usable(tor, port)

        live_requests = {
            dst: {
                src: payload
                for src, payload in srcs.items()
                if any(
                    tx_free(src, p) for p in range(self._matcher.topology.ports_per_tor)
                )
            }
            for dst, srcs in process.requests.items()
        }
        live_requests = {d: s for d, s in live_requests.items() if s}
        grants_by_src, _ = self._matcher.grant_step(
            live_requests, rx_free, tx_free
        )
        return grants_by_src

    def _accept_round(self, process, start, tx_usable):
        grants = self._grants_in_flight.pop(start, {})
        if not grants:
            return []

        def tx_free(tor, port):
            return (tor, port) not in process.locked_tx and tx_usable(tor, port)

        matches = self._matcher.accept_step(grants, tx_free)
        for match in matches:
            process.locked_tx.add((match.src, match.port))
            process.locked_rx.add((match.dst, match.port))
        return matches

    def reset(self) -> None:
        """Drop all in-flight processes."""
        self._processes.clear()
        self._grants_in_flight.clear()
        self._grants_issued.clear()


def scheduling_delay_epochs(iterations: int) -> int:
    """Nominal scheduling delay of the iterative variant, in epochs."""
    if iterations < 1:
        raise ValueError("need at least one iteration")
    return 2 + 3 * (iterations - 1)


# ---------------------------------------------------------------------------
# factory helpers
# ---------------------------------------------------------------------------


def make_scheduler(
    name: str,
    topology: FlatTopology,
    rng: random.Random,
    *,
    iterations: int = 3,
    alpha: float = 0.001,
    phase_capacity_bytes: int = 30 * 1115,
):
    """Build a scheduler variant by name.

    Names: ``base``, ``iterative``, ``data-size``, ``hol-delay``,
    ``stateful``, ``projector``.
    """
    if name == "base":
        return PipelinedScheduler(NegotiaToRMatcher(topology, rng))
    if name == "iterative":
        return IterativeScheduler(
            NegotiaToRMatcher(topology, rng), iterations=iterations
        )
    if name == "data-size":
        return DataSizeScheduler(ValuePriorityMatcher(topology, rng))
    if name == "hol-delay":
        return HolDelayScheduler(ValuePriorityMatcher(topology, rng), alpha=alpha)
    if name == "stateful":
        return StatefulScheduler(
            NegotiaToRMatcher(topology, rng),
            phase_capacity_bytes=phase_capacity_bytes,
        )
    if name == "projector":
        return ProjecToRScheduler(ProjecToRMatcher(topology, rng))
    raise ValueError(f"unknown scheduler variant {name!r}")
