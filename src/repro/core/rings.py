"""Round-robin priority rings, the arbiters behind GRANT and ACCEPT.

NegotiaToR Matching borrows the round-robin matching (RRM) arbiter used for
crossbar switch scheduling: a ring over a fixed member set whose pointer marks
the highest-priority member, priority falling clockwise.  After a member is
chosen the pointer moves to the member right after it, so the least recently
served member is always favoured — fairness without starvation (section 3.2.1).
"""

from __future__ import annotations

import random
from collections.abc import Collection, Iterable, Sequence


class RoundRobinRing:
    """A round-robin arbiter over a fixed, ordered set of members.

    The paper initializes ring pointers randomly; pass an ``rng`` for that, or
    a ``start`` index for deterministic placement (tests).
    """

    __slots__ = ("_members", "_index_of", "_pointer")

    def __init__(
        self,
        members: Sequence[int],
        rng: random.Random | None = None,
        start: int | None = None,
    ) -> None:
        if not members:
            raise ValueError("ring needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("ring members must be unique")
        self._members = tuple(members)
        self._index_of = {member: i for i, member in enumerate(self._members)}
        if start is not None:
            if not 0 <= start < len(self._members):
                raise ValueError("start index out of range")
            self._pointer = start
        elif rng is not None:
            self._pointer = rng.randrange(len(self._members))
        else:
            self._pointer = 0

    @property
    def members(self) -> tuple[int, ...]:
        """The ring's member set, in clockwise order."""
        return self._members

    @property
    def pointer(self) -> int:
        """Index of the current highest-priority member."""
        return self._pointer

    def peek(self, candidates: Collection[int]) -> int | None:
        """Return the highest-priority member among ``candidates``.

        Does not move the pointer; returns None when no candidate belongs to
        the ring.  With few candidates the winner is found by ranking each
        candidate's clockwise distance from the pointer (O(candidates));
        with many, a clockwise scan stops at the first hit after O(ring /
        candidates) expected steps.  Both orders pick the same member.
        """
        members = self._members
        n = len(members)
        pointer = self._pointer
        if len(candidates) * 4 < n:
            index_of = self._index_of
            best = None
            best_rank = n
            for member in candidates:
                index = index_of.get(member)
                if index is None:
                    continue
                rank = index - pointer
                if rank < 0:
                    rank += n
                if rank < best_rank:
                    best, best_rank = member, rank
            return best
        for i in range(pointer, n):
            if members[i] in candidates:
                return members[i]
        for i in range(pointer):
            if members[i] in candidates:
                return members[i]
        return None

    def advance_past(self, member: int) -> None:
        """Move the pointer to the member right after ``member``."""
        try:
            index = self._index_of[member]
        except KeyError:
            raise ValueError(f"{member} is not a ring member") from None
        self._pointer = (index + 1) % len(self._members)

    def pick(self, candidates: Collection[int]) -> int | None:
        """Pick the highest-priority candidate and advance the pointer.

        This is one GRANT (or ACCEPT) decision: the chosen member loses its
        priority until the ring wraps around to it again.
        """
        member = self.peek(candidates)
        if member is not None:
            self.advance_past(member)
        return member

    def ordered_candidates(self, candidates: Collection[int]) -> list[int]:
        """Candidates sorted by current ring priority (highest first).

        Dealing ports to this list round-robin is equivalent to calling
        :meth:`pick` repeatedly while every candidate keeps requesting, but
        costs O(ring size) instead of O(ports x ring size).
        """
        if not candidates:
            return []
        # dicts and sets support O(1) membership directly; only copy when
        # given a sequence (this runs once per destination per epoch).
        if not isinstance(candidates, (set, frozenset, dict)):
            candidates = set(candidates)
        members = self._members
        pointer = self._pointer
        ordered = []
        for member in members[pointer:]:
            if member in candidates:
                ordered.append(member)
        for member in members[:pointer]:
            if member in candidates:
                ordered.append(member)
        return ordered

    def deal(self, candidates: Collection[int], count: int) -> list[int]:
        """Make ``count`` consecutive picks over a fixed candidate set.

        Used by GRANT to allocate all ports of a destination ToR in one go:
        with r candidates and m ports each candidate receives floor(m/r) or
        ceil(m/r) picks, starting from the ring pointer.  The pointer ends up
        right after the last pick, exactly as ``count`` calls to :meth:`pick`
        would leave it.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        ordered = self.ordered_candidates(candidates)
        if not ordered or count == 0:
            return []
        picks = [ordered[i % len(ordered)] for i in range(count)]
        self.advance_past(picks[-1])
        return picks


def build_rings(
    member_sets: Iterable[Sequence[int]], rng: random.Random
) -> list[RoundRobinRing]:
    """Construct one randomly-initialized ring per member set."""
    return [RoundRobinRing(members, rng=rng) for members in member_sets]
