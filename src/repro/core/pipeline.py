"""The three-epoch scheduling pipeline (section 3.3.1, Fig 4).

One scheduling process spans three epochs: requests computed at epoch ``p``
ride that epoch's predefined phase, the destinations grant at ``p+1``, and
the sources accept at ``p+2`` — whose scheduled phase then carries the data.
Epoch ``n`` therefore simultaneously transports ``request_n``, ``grant_{n-1}``
and ``accept_{n-2}``, and the effective scheduling delay is about two epochs.

The engine owns message *delivery* (including loss on failed links); this
class owns the hand-off of surviving messages between pipeline stages and the
pairing of accepts with the grants they answer (for the match-ratio metric).
"""

from __future__ import annotations

from collections.abc import Callable

from .matching import Match, NegotiaToRMatcher, PortPredicate

GrantsBySrc = dict[int, list[tuple[int, int]]]
RequestsByDst = dict[int, dict[int, object]]
GrantDelivery = Callable[[GrantsBySrc], GrantsBySrc]


class PipelinedScheduler:
    """Carries in-flight scheduling messages across consecutive epochs."""

    def __init__(self, matcher: NegotiaToRMatcher) -> None:
        self._matcher = matcher
        self._awaiting_grant: RequestsByDst = {}
        self._awaiting_accept: GrantsBySrc = {}
        self._grants_issued_last_epoch = 0

    @property
    def matcher(self) -> NegotiaToRMatcher:
        """The ring-state holder this pipeline drives."""
        return self._matcher

    @property
    def is_idle(self) -> bool:
        """Whether advancing with no input would be an exact no-op.

        True when no request, grant, or grant-count is in flight: the engine
        may then skip whole epochs (idle fast-forward, DESIGN.md section 7)
        without changing any observable state.  Stateful subclasses override
        this to account for their extra in-flight state.
        """
        return (
            not self._awaiting_grant
            and not self._awaiting_accept
            and self._grants_issued_last_epoch == 0
        )

    def advance(
        self,
        delivered_requests: RequestsByDst,
        deliver_grants: GrantDelivery,
        rx_usable: PortPredicate | None = None,
        tx_usable: PortPredicate | None = None,
    ) -> tuple[list[Match], int, int]:
        """Run one epoch's GRANT and ACCEPT stages.

        ``delivered_requests`` are this epoch's requests that survived the
        predefined phase (granted next epoch).  ``deliver_grants`` applies
        this epoch's message-loss filter to the grants issued now (accepted
        next epoch).

        Returns ``(matches, grants_answered, accepts)`` where ``matches``
        drive this epoch's scheduled phase and ``grants_answered`` is the
        number of grants those accepts respond to (issued one epoch earlier),
        i.e. the denominator of this epoch's match ratio.
        """
        grants_by_src, num_grants = self._matcher.grant_step(
            self._awaiting_grant, rx_usable, tx_usable
        )
        surviving_grants = deliver_grants(grants_by_src) if grants_by_src else {}

        matches = self._matcher.accept_step(self._awaiting_accept, tx_usable)

        grants_answered = self._grants_issued_last_epoch
        self._awaiting_grant = dict(delivered_requests)
        self._awaiting_accept = surviving_grants
        self._grants_issued_last_epoch = num_grants
        return matches, grants_answered, len(matches)

    def reset(self) -> None:
        """Drop all in-flight messages (used after catastrophic failures)."""
        self._awaiting_grant = {}
        self._awaiting_accept = {}
        self._grants_issued_last_epoch = 0

    # ------------------------------------------------------------------
    # engine hooks for scheduler variants (section 3.5 / appendix A.2)
    # ------------------------------------------------------------------

    def request_payload(self, src: int, dst: int, queue, now_ns: float):
        """Payload attached to a REQUEST — None, because requests are binary.

        Variants override this: the data-size variant reports queued bytes,
        the HoL-delay variant a weighted waiting time, the stateful variant
        newly arrived bytes.
        """
        return None

    def observe_sent(self, src: int, dst: int, num_bytes: int) -> None:
        """Notification of scheduled-phase bytes actually sent (no-op here).

        The stateful variant uses this to reconcile its demand matrices.
        """
