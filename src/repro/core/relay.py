"""Traffic-aware selective relay on thin-clos (section 3.5, appendix A.2.2).

The thin-clos topology connects each ordered pair through a single
port-to-port path, so a pair's direct bandwidth is capped at one port.  The
paper explores relaying *elephant* data through lightly-loaded intermediate
ToRs to put idle links to work, and concludes the gain does not justify the
complexity — this module exists to reproduce that conclusion (Table 3).

The three-step protocol (Fig 16):

1. Before requesting, a source with more than ``relay_threshold_bytes`` of
   lowest-band (elephant) data for some destination selects intermediate
   candidates — excluding any whose shared source link already carries
   high-volume direct traffic — and sends them relay requests.
2. An intermediate grants a relay request when its own queue toward the final
   destination is short and it has granted less than one scheduled phase of
   relay bytes this epoch (buffer/congestion control).
3. The source accepts grants onto ports left idle by the accepted matching;
   direct traffic always has priority.  The relayed bytes join the
   intermediate's ordinary per-destination queue (lowest band), so the
   intermediate's own NegotiaToR Matching forwards them — a second one-hop
   transmission.

Relay requests/grants ride the same predefined phase as the scheduling
messages, pipelined over two epochs like the main REQUEST -> GRANT flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.config import KB
from ..sim.network import NegotiaToRSimulator
from ..topology.thinclos import ThinClos


@dataclass(frozen=True)
class RelayPolicy:
    """Tuning knobs of the selective relay (appendix A.2.2 settings)."""

    relay_threshold_bytes: int = 60 * KB
    high_volume_bytes: int = 30 * KB
    max_candidates: int = 2
    grant_budget_phases: float = 1.0

    def __post_init__(self) -> None:
        if self.relay_threshold_bytes <= 0:
            raise ValueError("relay threshold must be positive")
        if self.high_volume_bytes <= 0:
            raise ValueError("high-volume threshold must be positive")
        if self.max_candidates < 1:
            raise ValueError("need at least one candidate")
        if self.grant_budget_phases <= 0:
            raise ValueError("grant budget must be positive")


class SelectiveRelaySimulator(NegotiaToRSimulator):
    """NegotiaToR with traffic-aware selective relay enabled (thin-clos)."""

    def __init__(self, *args, relay_policy: RelayPolicy | None = None, **kwargs):
        super().__init__(*args, **kwargs)
        if not isinstance(self.topology, ThinClos):
            raise ValueError(
                "selective relay targets the connection-limited thin-clos "
                "topology (appendix A.2.2)"
            )
        self.policy = relay_policy or RelayPolicy()
        # (src, dst, intermediate, volume) requests awaiting grant.
        self._relay_requests: list[tuple[int, int, int, int]] = []
        # (src, port, intermediate, dst, granted_bytes) awaiting execution.
        self._relay_grants: list[tuple[int, int, int, int, int]] = []
        self._candidate_rotation = 0
        self.relay_stats = {"requests": 0, "grants": 0, "executed_bytes": 0}

    def _subclass_state_idle(self) -> bool:
        """Block idle fast-forward while relay messages are in flight."""
        return not self._relay_requests and not self._relay_grants

    # ------------------------------------------------------------------
    # the three-step relay pipeline
    # ------------------------------------------------------------------

    def _plan_relay(self, epoch, start_ns, matches):
        assignments = self._accept_relay_grants()
        self._grant_relay_requests()
        self._emit_relay_requests()
        return assignments

    def _emit_relay_requests(self) -> None:
        """Step 1: sources nominate intermediates for elephant backlogs."""
        topology: ThinClos = self.topology  # type: ignore[assignment]
        policy = self.policy
        lowest = self.config.num_priority_bands - 1
        requests = []
        for src, dst in list(self._active_pairs):
            queue = self._queues[src][dst]
            if queue.band_bytes(lowest) < policy.relay_threshold_bytes:
                continue
            candidates = []
            self._candidate_rotation += 1
            for offset in range(self._candidate_rotation,
                                self._candidate_rotation + topology.num_tors):
                intermediate = offset % topology.num_tors
                if intermediate in (src, dst):
                    continue
                first_hop_port = topology.data_port(src, intermediate)
                if self._port_has_high_volume_direct(
                    src, first_hop_port, exclude_dst=dst
                ):
                    continue
                candidates.append(intermediate)
                if len(candidates) >= policy.max_candidates:
                    break
            volume = min(
                queue.band_bytes(lowest),
                self.timing.scheduled_slots * self.timing.data_payload_bytes,
            )
            for intermediate in candidates:
                requests.append((src, dst, intermediate, volume))
        self.relay_stats["requests"] += len(requests)
        self._relay_requests = requests

    def _grant_relay_requests(self) -> None:
        """Step 2: intermediates admit relay volume within their budget."""
        topology: ThinClos = self.topology  # type: ignore[assignment]
        policy = self.policy
        budget = int(
            policy.grant_budget_phases
            * self.timing.scheduled_slots
            * self.timing.data_payload_bytes
        )
        granted_by_intermediate: dict[int, int] = {}
        granted_rx_ports: set[tuple[int, int]] = set()
        grants = []
        for src, dst, intermediate, volume in self._relay_requests:
            first_hop_port = topology.data_port(src, intermediate)
            if (intermediate, first_hop_port) in granted_rx_ports:
                continue
            used = granted_by_intermediate.get(intermediate, 0)
            if used >= budget:
                continue
            # The intermediate's own second-hop link must not already carry
            # high-volume direct traffic toward the final destination.
            second_hop_port = topology.data_port(intermediate, dst)
            if self._port_has_high_volume_direct(
                intermediate, second_hop_port, exclude_dst=None
            ):
                continue
            allowed = min(volume, budget - used)
            if allowed <= 0:
                continue
            granted_by_intermediate[intermediate] = used + allowed
            granted_rx_ports.add((intermediate, first_hop_port))
            grants.append((src, first_hop_port, intermediate, dst, allowed))
        self.relay_stats["grants"] += len(grants)
        self._relay_requests = []
        self._relay_grants = grants

    def _accept_relay_grants(self):
        """Step 3: sources claim grants; execution defers to the engine,
        which gives direct traffic priority on every port."""
        assignments = []
        claimed_tx: set[tuple[int, int]] = set()
        lowest = self.config.num_priority_bands - 1
        for src, port, intermediate, dst, allowed in self._relay_grants:
            if (src, port) in claimed_tx:
                continue
            queue = self._queues[src][dst]
            if queue.band_bytes(lowest) == 0:
                continue
            claimed_tx.add((src, port))
            assignments.append((src, port, intermediate, dst, allowed))
        self._relay_grants = []
        return assignments

    def _run_relay_transmissions(self, assignments, matches, start_ns):
        super()._run_relay_transmissions(assignments, matches, start_ns)
        # Relay first hops never deliver to the tracker; the executed volume
        # is visible through the bandwidth recorder when one is attached.
        if self.bandwidth is not None:
            self.relay_stats["executed_bytes"] = sum(
                self.bandwidth.total_bytes(key)
                for key in self.bandwidth.keys()
                if key[0] == "relay"
            )

    # ------------------------------------------------------------------
    # local traffic inspection
    # ------------------------------------------------------------------

    def _port_has_high_volume_direct(
        self, tor: int, port: int, exclude_dst: int | None
    ) -> bool:
        """Whether a ToR's TX port carries high-volume direct traffic.

        Thin-clos maps each destination group to one port, so this scans the
        W destinations reachable through ``port``.
        """
        topology: ThinClos = self.topology  # type: ignore[assignment]
        threshold = self.policy.high_volume_bytes
        for dst in topology.reachable_dsts(tor, port):
            if dst == exclude_dst:
                continue
            if (tor, dst) in self._active_pairs and self._queues[tor][
                dst
            ].pending_bytes >= threshold:
                return True
        return False
