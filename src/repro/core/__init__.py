"""The paper's primary contribution: NegotiaToR Matching and its variants."""

from .efficiency import (
    asymptotic_match_ratio,
    binomial_acceptance_expectation,
    expected_match_ratio,
    monte_carlo_match_ratio,
)
from .matching import Match, MatchingResult, NegotiaToRMatcher, validate_matching
from .pipeline import PipelinedScheduler
from .relay import RelayPolicy, SelectiveRelaySimulator
from .rings import RoundRobinRing, build_rings
from .variants import (
    DataSizeScheduler,
    HolDelayScheduler,
    IterativeScheduler,
    ProjecToRMatcher,
    ProjecToRScheduler,
    StatefulScheduler,
    ValuePriorityMatcher,
    make_scheduler,
    scheduling_delay_epochs,
)

__all__ = [
    "DataSizeScheduler",
    "HolDelayScheduler",
    "IterativeScheduler",
    "Match",
    "ProjecToRMatcher",
    "ProjecToRScheduler",
    "RelayPolicy",
    "SelectiveRelaySimulator",
    "StatefulScheduler",
    "ValuePriorityMatcher",
    "make_scheduler",
    "scheduling_delay_epochs",
    "MatchingResult",
    "NegotiaToRMatcher",
    "PipelinedScheduler",
    "RoundRobinRing",
    "asymptotic_match_ratio",
    "binomial_acceptance_expectation",
    "build_rings",
    "expected_match_ratio",
    "monte_carlo_match_ratio",
    "validate_matching",
]
