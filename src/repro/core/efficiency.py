"""Analytic matching-efficiency model of NegotiaToR Matching (section 3.2.2).

Under saturation on the parallel network — every ToR requesting every other —
grants and accepts are effectively uniform random.  A given grant lands on a
specific source port with probability 1/n, it competes with X ~ B(n-1, 1/n)
other grants for that port, and is accepted with probability 1/(X+1), so

    E[Y] = E[1/(X+1)] = 1 - (1 - 1/n)^n  ──n→∞──▶  1 - 1/e ≈ 0.632.

On thin-clos the competition pool is the W sources a port can hear, so n = W
and the efficiency is slightly higher (0.644 at W = 16 vs 0.634 at n = 128).
This module provides the closed form, the limit, and a Monte Carlo
cross-check mirroring the model's assumptions exactly.
"""

from __future__ import annotations

import math
import random


def expected_match_ratio(n: int) -> float:
    """E[Y] = 1 - (1 - 1/n)^n, the acceptance probability of one grant.

    ``n`` is the number of ToRs competing for a port: the whole fabric on the
    parallel network, one W-ToR group on thin-clos.
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    return 1.0 - (1.0 - 1.0 / n) ** n


def asymptotic_match_ratio() -> float:
    """The large-n limit 1 - 1/e."""
    return 1.0 - math.exp(-1.0)


def binomial_acceptance_expectation(n: int) -> float:
    """E[1/(X+1)] with X ~ B(n-1, 1/n), evaluated by direct summation.

    The closed form above uses the identity E[1/(X+1)] =
    (1 - (1-p)^(m+1)) / ((m+1) p) for X ~ B(m, p) with m = n-1 and p = 1/n.
    Summing the binomial pmf term by term provides an independent numerical
    check that the closed form is right (tests compare the two).
    """
    if n < 1:
        raise ValueError("n must be at least 1")
    p = 1.0 / n
    m = n - 1
    total = 0.0
    for k in range(m + 1):
        pmf = math.comb(m, k) * p**k * (1.0 - p) ** (m - k)
        total += pmf / (k + 1)
    return total


def monte_carlo_match_ratio(
    n: int, ports: int, rounds: int, rng: random.Random
) -> float:
    """Simulate the section 3.2.2 model directly.

    ``n`` saturated ToRs with ``ports`` uplinks each: every destination deals
    its ports uniformly at random over all sources, every source accepts one
    grant per port uniformly at random.  Returns accepted/granted over all
    rounds — an unbiased estimate of E[Y].
    """
    if n < 2:
        raise ValueError("need at least two ToRs")
    if ports < 1 or rounds < 1:
        raise ValueError("ports and rounds must be positive")
    granted = 0
    accepted = 0
    for _ in range(rounds):
        # grants[src][port] = list of destinations that granted (src, port).
        grants: dict[tuple[int, int], list[int]] = {}
        for dst in range(n):
            sources = [s for s in range(n) if s != dst]
            for port in range(ports):
                src = rng.choice(sources)
                grants.setdefault((src, port), []).append(dst)
                granted += 1
        for competitors in grants.values():
            if competitors:
                accepted += 1
    return accepted / granted
