"""NegotiaToR Matching: distributed REQUEST / GRANT / ACCEPT (section 3.2).

The algorithm computes a conflict-free port-level matching from *binary*
per-pair demand, with no iteration:

* **REQUEST** — a source ToR sends one ToR-level request to every destination
  whose per-destination queue holds enough pending data (the engine computes
  the request sets; this module consumes them).
* **GRANT** — each destination allocates its RX ports to the received
  requests using round-robin rings: one shared ring on the parallel network
  (any port hears any source), one ring per port on thin-clos (a port hears
  only its W-ToR group).  A granted port binds the *same* port index on the
  source side, because AWGR ``k`` joins everyone's port ``k``.
* **ACCEPT** — a source may receive grants from several destinations for the
  same TX port; a per-port round-robin ring picks one, yielding the final
  matching.

Because each step only eliminates conflicts on one side, the result is a
partial matching: every (ToR, port) appears at most once on the transmit side
and at most once on the receive side.

The class keeps all ToRs' ring state; each call site (the simulator) feeds it
the message sets that actually survived the in-band control plane, so link
failures naturally translate into missing requests or grants.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Collection, Mapping
from dataclasses import dataclass, field

from ..topology.base import FlatTopology
from ..topology.parallel import ParallelNetwork
from .rings import RoundRobinRing

PortPredicate = Callable[[int, int], bool]


def _all_ports_usable(tor: int, port: int) -> bool:
    return True


def _normalize_predicate(predicate: PortPredicate | None) -> PortPredicate | None:
    """Map the all-usable sentinel to None so hot paths can skip it.

    ``None`` means "every port is usable": the GRANT/ACCEPT hot paths treat
    it as permission to skip per-(tor, port) predicate calls and candidate
    filtering entirely, which is the common case (no detected failures, no
    receiver-buffer pressure).
    """
    if predicate is _all_ports_usable:
        return None
    return predicate


@dataclass(frozen=True, slots=True)
class Match:
    """A scheduled one-hop connection: src transmits to dst on port ``port``."""

    src: int
    port: int
    dst: int


@dataclass
class MatchingResult:
    """Outcome of one epoch's GRANT + ACCEPT steps."""

    matches: list[Match] = field(default_factory=list)
    num_grants: int = 0

    @property
    def num_accepts(self) -> int:
        """Accepted grants (equals the number of matches)."""
        return len(self.matches)

    @property
    def match_ratio(self) -> float:
        """Accepts / grants for this epoch (Fig 14's metric)."""
        if self.num_grants == 0:
            raise ValueError("no grants were issued")
        return len(self.matches) / self.num_grants


class NegotiaToRMatcher:
    """All-ToR ring state plus the GRANT and ACCEPT procedures."""

    def __init__(self, topology: FlatTopology, rng: random.Random) -> None:
        self._topology = topology
        self._num_tors = topology.num_tors
        self._ports = topology.ports_per_tor
        self._shared_grant_ring = isinstance(topology, ParallelNetwork)
        if self._shared_grant_ring:
            # Fig 3b: one GRANT ring per destination ToR, shared by its ports.
            self._grant_rings: list = [
                RoundRobinRing(
                    [t for t in range(self._num_tors) if t != tor], rng=rng
                )
                for tor in range(self._num_tors)
            ]
        else:
            # Fig 3c: one GRANT ring per (destination ToR, RX port).
            self._grant_rings = [
                [
                    RoundRobinRing(topology.reachable_srcs(tor, port), rng=rng)
                    for port in range(self._ports)
                ]
                for tor in range(self._num_tors)
            ]
        self._accept_rings = [
            [
                RoundRobinRing(topology.reachable_dsts(tor, port), rng=rng)
                for port in range(self._ports)
            ]
            for tor in range(self._num_tors)
        ]
        self._all_ports = tuple(range(self._ports))
        # Per-port ACCEPT scratch buckets, reused across sources and epochs
        # so the hot path allocates no per-destination containers.
        self._accept_buckets: list[list[int]] = [[] for _ in range(self._ports)]

    @property
    def topology(self) -> FlatTopology:
        """The fabric this matcher schedules."""
        return self._topology

    @property
    def uses_shared_grant_ring(self) -> bool:
        """True on the parallel network (per-ToR ring), False on thin-clos."""
        return self._shared_grant_ring

    # ------------------------------------------------------------------
    # GRANT
    # ------------------------------------------------------------------

    def grant_step(
        self,
        requests_by_dst: Mapping[int, Mapping[int, object]],
        rx_usable: PortPredicate | None = None,
        tx_usable: PortPredicate | None = None,
    ) -> tuple[dict[int, list[tuple[int, int]]], int]:
        """Allocate every destination's RX ports to its received requests.

        ``requests_by_dst[dst]`` maps requesting sources to request payloads
        (ignored here — requests are binary; variants interpret them).
        ``rx_usable`` and ``tx_usable`` exclude ports with *detected* link
        failures on the receive and transmit side respectively; ``None``
        (the common, failure-free case) means every port is usable and lets
        the GRANT step skip all per-port predicate calls.

        Returns (grants routed to each source as ``src -> [(dst, port), ...]``,
        total number of grants issued).
        """
        rx_usable = _normalize_predicate(rx_usable)
        tx_usable = _normalize_predicate(tx_usable)
        grants_by_src: dict[int, list[tuple[int, int]]] = {}
        num_grants = 0
        grant = (
            self._grant_parallel if self._shared_grant_ring else self._grant_thinclos
        )
        for dst, requests in requests_by_dst.items():
            if not requests:
                continue
            for port, src in grant(dst, requests, rx_usable, tx_usable):
                entry = grants_by_src.get(src)
                if entry is None:
                    grants_by_src[src] = [(dst, port)]
                else:
                    entry.append((dst, port))
                num_grants += 1
        return grants_by_src, num_grants

    def _grant_parallel(
        self,
        dst: int,
        requests: Mapping[int, object],
        rx_usable: PortPredicate | None,
        tx_usable: PortPredicate | None,
    ) -> list[tuple[int, int]]:
        ring = self._grant_rings[dst]
        if rx_usable is None:
            ports: Collection[int] = self._all_ports
        else:
            ports = [p for p in range(self._ports) if rx_usable(dst, p)]
            if not ports:
                return []
        # The engine never routes a ToR's request to itself; only filter the
        # self-request out when a direct run_epoch() caller included one.
        candidates: Collection[int] = requests
        if dst in requests:
            candidates = [src for src in requests if src != dst]
            if not candidates:
                return []
        if tx_usable is None or not any(
            not tx_usable(src, port) for src in candidates for port in ports
        ):
            picks = ring.deal(candidates, len(ports))
            return list(zip(ports, picks))
        # A source with a failed egress port must not be granted that port:
        # fall back to per-port picks over per-port candidate sets.
        assigned = []
        for port in ports:
            eligible = {src for src in candidates if tx_usable(src, port)}
            src = ring.pick(eligible)
            if src is not None:
                assigned.append((port, src))
        return assigned

    def _grant_thinclos(
        self,
        dst: int,
        requests: Mapping[int, object],
        rx_usable: PortPredicate | None,
        tx_usable: PortPredicate | None,
    ) -> list[tuple[int, int]]:
        assigned = []
        rings = self._grant_rings[dst]
        if rx_usable is None and tx_usable is None:
            # The ring scan itself intersects with the request set (peek
            # tests membership), so no per-port candidate set is needed.
            for port in range(self._ports):
                src = rings[port].pick(requests)
                if src is not None:
                    assigned.append((port, src))
            return assigned
        for port in range(self._ports):
            if rx_usable is not None and not rx_usable(dst, port):
                continue
            ring = rings[port]
            if tx_usable is None:
                src = ring.pick(requests)
            else:
                eligible = {
                    src
                    for src in requests
                    if src in ring.members and tx_usable(src, port)
                }
                src = ring.pick(eligible)
            if src is not None:
                assigned.append((port, src))
        return assigned

    # ------------------------------------------------------------------
    # ACCEPT
    # ------------------------------------------------------------------

    def accept_step(
        self,
        grants_by_src: Mapping[int, list[tuple[int, int]]],
        tx_usable: PortPredicate | None = None,
    ) -> list[Match]:
        """Resolve source-side conflicts: one accepted grant per TX port."""
        tx_usable = _normalize_predicate(tx_usable)
        matches: list[Match] = []
        buckets = self._accept_buckets
        for src, grants in grants_by_src.items():
            rings = self._accept_rings[src]
            if len(grants) == 1:
                # Most sources hold a single grant: no grouping needed.
                dst, port = grants[0]
                if tx_usable is None or tx_usable(src, port):
                    picked = rings[port].pick((dst,))
                    if picked is not None:
                        matches.append(Match(src=src, port=port, dst=picked))
                continue
            used = []
            for dst, port in grants:
                bucket = buckets[port]
                if not bucket:
                    used.append(port)
                bucket.append(dst)
            used.sort()
            for port in used:
                bucket = buckets[port]
                if tx_usable is None or tx_usable(src, port):
                    dst = rings[port].pick(bucket)
                    if dst is not None:
                        matches.append(Match(src=src, port=port, dst=dst))
                bucket.clear()
        return matches

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def run_epoch(
        self,
        requests_by_dst: Mapping[int, Mapping[int, object]],
        rx_usable: PortPredicate | None = None,
        tx_usable: PortPredicate | None = None,
    ) -> MatchingResult:
        """GRANT + ACCEPT back to back (no pipelining, no message loss).

        Useful for unit tests and for the matching-efficiency experiments
        that study the algorithm in isolation.
        """
        grants_by_src, num_grants = self.grant_step(
            requests_by_dst, rx_usable, tx_usable
        )
        matches = self.accept_step(grants_by_src, tx_usable)
        return MatchingResult(matches=matches, num_grants=num_grants)


def validate_matching(matches: list[Match], topology: FlatTopology) -> None:
    """Assert the structural invariants of a NegotiaToR matching.

    Raises ValueError when two matches share a (src, port) or (dst, port),
    or when a match violates the topology's reachability.
    """
    tx_seen: set[tuple[int, int]] = set()
    rx_seen: set[tuple[int, int]] = set()
    for match in matches:
        tx = (match.src, match.port)
        rx = (match.dst, match.port)
        if tx in tx_seen:
            raise ValueError(f"transmit side conflict at {tx}")
        if rx in rx_seen:
            raise ValueError(f"receive side conflict at {rx}")
        tx_seen.add(tx)
        rx_seen.add(rx)
        required = topology.data_port(match.src, match.dst)
        if required is not None and required != match.port:
            raise ValueError(
                f"match {match} uses port {match.port} but topology only "
                f"connects the pair via port {required}"
            )
