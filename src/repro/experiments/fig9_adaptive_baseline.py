"""Fig 9 companion — the four-way schedule comparison with the adaptive engine.

The rotor baseline (fig9_rotor_baseline) placed NegotiaToR between two
traffic-oblivious designs.  This experiment completes the D3 / Avin-Schmid
taxonomy with the demand-*aware* corner: the adaptive engine
(sim/adaptive.py), which tracks an EWMA traffic-matrix estimate and
periodically re-aims its circuits at the heavy entries, paying a
reconfiguration penalty per re-aimed link.  All four systems —
negotiator, oblivious, rotor, adaptive — run over three traffic shapes:

* ``uniform`` — equal-sized bulk flows over a uniform matrix
  (``rotor-uniform``), where demand-awareness buys nothing: the rotor's
  round-robin already matches the matrix, and the adaptive engine's
  matching degenerates to a (penalty-paying) rotation.
* ``skewed`` — a skewed matrix (``rotor-skewed`` with half the ToRs hot),
  where the adaptive engine overtakes the rotor: its matching parks
  circuits on the hot pairs instead of sweeping past them.  The hot set
  is deliberately wider than the rotor baseline's (0.5 vs 0.125): with
  only two hot ToRs the direct-circuit ceiling — one uplink per hot pair
  — binds first, and the rotor's VLB relay, which spreads hot traffic
  over the whole bisection, wins instead.  Demand-aware direct circuits
  pay off once the hot set is wide enough to absorb its own demand.
* ``shuffling`` — synchronous all-to-all rounds (``shuffle``), the
  collective pattern whose instantaneous matrix is dense and balanced;
  a stress test for the demand tracker's reaction to bursts that are
  over before the EWMA settles.

Expected shape:

* NegotiaToR's mice FCT stays lowest everywhere (per-epoch negotiation
  reacts in microseconds; schedule recomputation reacts in slices).
* On the skewed matrix the adaptive engine's goodput sits between the
  rotor and NegotiaToR, approaching the latter as skew concentrates.
* On uniform and shuffling traffic adaptive roughly tracks the rotor —
  the matching cannot beat round-robin on a balanced matrix, and the
  reconfiguration penalty is the price of trying.
"""

from __future__ import annotations

from ..sim.config import KB
from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

WORKLOADS = (
    ("uniform", "rotor-uniform", {"flow_bytes": 50 * KB}),
    (
        "skewed",
        "rotor-skewed",
        {"trace": "hadoop", "hot_fraction": 0.5, "hot_weight": 0.9},
    ),
    ("shuffling", "shuffle", {"chunk_bytes": 10 * KB, "rounds": 2}),
)

SYSTEMS = (
    ("NT parallel", "parallel"),
    ("oblivious", "oblivious"),
    ("rotor", "rotor"),
    ("adaptive", "adaptive"),
)


def load_specs(
    scale: ExperimentScale, *, loads=None
) -> dict[tuple[str, str], dict[float, RunSpec]]:
    """Declare every run: {(system label, workload label): {load: spec}}."""
    loads = loads if loads is not None else scale.loads
    grid: dict[tuple[str, str], dict[float, RunSpec]] = {}
    for workload_label, scenario, scenario_params in WORKLOADS:
        for system_label, kind in SYSTEMS:
            grid[(system_label, workload_label)] = {
                load: RunSpec(
                    **scale_spec_fields(scale),
                    **system_spec_fields(kind),
                    scenario=scenario,
                    scenario_params=scenario_params,
                    load=load,
                    seed=scale.seed,
                )
                for load in loads
            }
    return grid


def sweep(
    scale: ExperimentScale,
    *,
    loads=None,
    runner: SweepRunner | None = None,
) -> dict[tuple[str, str], dict[float, tuple[float | None, float]]]:
    """Run the grid; returns {(system, workload): {load: (fct_ms, goodput)}}."""
    runner = runner if runner is not None else SweepRunner()
    grid = load_specs(scale, loads=loads)
    summaries = runner.run(
        spec for per_load in grid.values() for spec in per_load.values()
    )
    return {
        key: {
            load: (
                fct_ms(summaries[spec.content_hash]),
                summaries[spec.content_hash].goodput_normalized,
            )
            for load, spec in per_load.items()
        }
        for key, per_load in grid.items()
    }


def build_result(
    scale: ExperimentScale, data, *, loads=None
) -> ExperimentResult:
    """Render the sweep as one table with FCT and goodput per system."""
    loads = loads if loads is not None else scale.loads
    headers = ["system", "workload"]
    for load in loads:
        headers.append(f"FCT@{int(load * 100)}%")
    for load in loads:
        headers.append(f"gput@{int(load * 100)}%")
    result = ExperimentResult(
        experiment="Fig 9 (adaptive baseline)",
        title="negotiator vs oblivious vs rotor vs adaptive: "
        "99p mice FCT (ms) and goodput",
        headers=headers,
    )
    for (system, workload), per_load in data.items():
        row: list = [system, workload]
        for load in loads:
            fct, _ = per_load[load]
            row.append(fct if fct is not None else "n/a")
        for load in loads:
            _, goodput = per_load[load]
            row.append(goodput)
        result.rows.append(row)
    result.series = data
    result.notes.append(
        "adaptive = EWMA demand tracking with greedy max-weight circuit "
        "matching and rotating residual round-robin coverage (DESIGN.md "
        "section 16); the shuffle workload is synchronous, so its rows "
        "repeat across load columns"
    )
    result.notes.append(
        "expected: adaptive goodput above the rotor's on the wide-hot-set "
        "skewed matrix, tracking the rotor on uniform and shuffling "
        "traffic; at narrower hot sets the rotor's VLB relay wins instead "
        "(direct-circuit ceiling, see the module docstring)"
    )
    result.notes.append(f"scale={scale.name}")
    return result


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate the four-system adaptive-baseline comparison."""
    scale = scale or current_scale()
    return build_result(scale, sweep(scale, runner=runner))


if __name__ == "__main__":
    print(run().render())
