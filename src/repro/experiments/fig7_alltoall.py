"""Fig 7b — average goodput under synchronous all-to-all workloads.

Every ToR sends an equal-sized flow to every other ToR at t=0; we measure
average received goodput (Gbps per ToR) over the transfer.  Expected shape:
goodput grows with the flow size for all systems; NegotiaToR on the parallel
network is highest (full connectivity keeps links busy as flows finish),
thin-clos is close behind, and the traffic-oblivious scheme is limited by
relayed traffic competing for receiver bandwidth.

Each (system, flow size) point is declared as a
:class:`~repro.sweep.spec.RunSpec` with the ``alltoall_goodput_gbps``
collector and executed through the sweep runner.
"""

from __future__ import annotations

from ..sim.config import KB
from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale

INJECT_NS = 10_000.0
SYSTEMS = ("parallel", "thinclos", "oblivious")


def alltoall_spec(
    scale: ExperimentScale, system: str, flow_kb: int
) -> RunSpec:
    """Declare one all-to-all run."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system),
        scenario="alltoall",
        scenario_params={"flow_bytes": flow_kb * KB, "at_ns": INJECT_NS},
        load=1.0,
        seed=scale.seed,
        until_complete=True,
        max_ns=200_000_000.0,
        collect=("alltoall_goodput_gbps",),
    )


def alltoall_goodput_gbps(
    scale: ExperimentScale,
    system: str,
    flow_kb: int,
    runner: SweepRunner | None = None,
) -> float:
    """Average per-ToR received goodput (Gbps) during the transfer."""
    runner = runner if runner is not None else SweepRunner()
    spec = alltoall_spec(scale, system, flow_kb)
    summary = runner.run([spec])[spec.content_hash]
    return summary.extra["alltoall_goodput_gbps"]


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 7b."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 7b",
        title="average per-ToR goodput (Gbps) under all-to-all",
        headers=[
            "flow size (KB)",
            "NegotiaToR parallel",
            "NegotiaToR thin-clos",
            "oblivious thin-clos",
        ],
    )
    specs = {
        (system, flow_kb): alltoall_spec(scale, system, flow_kb)
        for flow_kb in scale.alltoall_flow_kb
        for system in SYSTEMS
    }
    summaries = runner.run(specs.values())
    for flow_kb in scale.alltoall_flow_kb:
        result.add_row(
            flow_kb,
            *(
                summaries[specs[(system, flow_kb)].content_hash].extra[
                    "alltoall_goodput_gbps"
                ]
                for system in SYSTEMS
            ),
        )
    result.notes.append(
        "paper: goodput rises with flow size; parallel > thin-clos > oblivious "
        "at heavy sizes"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
