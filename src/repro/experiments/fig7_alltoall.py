"""Fig 7b — average goodput under synchronous all-to-all workloads.

Every ToR sends an equal-sized flow to every other ToR at t=0; we measure
average received goodput (Gbps per ToR) over the transfer.  Expected shape:
goodput grows with the flow size for all systems; NegotiaToR on the parallel
network is highest (full connectivity keeps links busy as flows finish),
thin-clos is close behind, and the traffic-oblivious scheme is limited by
relayed traffic competing for receiver bandwidth.
"""

from __future__ import annotations

from ..sim.config import KB
from ..workloads.incast import all_to_all_workload
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    run_negotiator,
    run_oblivious,
)

INJECT_NS = 10_000.0


def alltoall_goodput_gbps(
    scale: ExperimentScale, system: str, flow_kb: int
) -> float:
    """Average per-ToR received goodput (Gbps) during the transfer."""
    flows = all_to_all_workload(
        scale.num_tors, flow_bytes=flow_kb * KB, at_ns=INJECT_NS
    )
    max_ns = 200_000_000.0
    if system == "oblivious":
        artifacts = run_oblivious(
            scale, "thinclos", flows, until_complete=True, max_ns=max_ns
        )
    else:
        artifacts = run_negotiator(
            scale, system, flows, until_complete=True, max_ns=max_ns
        )
    sim = artifacts.simulator
    if not sim.tracker.all_complete:
        raise RuntimeError("all-to-all transfer did not finish")
    finish_ns = max(f.completed_ns for f in sim.tracker.flows)
    duration = finish_ns - INJECT_NS
    total_bits = sim.tracker.delivered_bytes * 8.0
    return total_bits / duration / scale.num_tors


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 7b."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 7b",
        title="average per-ToR goodput (Gbps) under all-to-all",
        headers=[
            "flow size (KB)",
            "NegotiaToR parallel",
            "NegotiaToR thin-clos",
            "oblivious thin-clos",
        ],
    )
    for flow_kb in scale.alltoall_flow_kb:
        result.add_row(
            flow_kb,
            alltoall_goodput_gbps(scale, "parallel", flow_kb),
            alltoall_goodput_gbps(scale, "thinclos", flow_kb),
            alltoall_goodput_gbps(scale, "oblivious", flow_kb),
        )
    result.notes.append(
        "paper: goodput rises with flow size; parallel > thin-clos > oblivious "
        "at heavy sizes"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
