"""Table 4 / Appendix A.2.3 — informative requests on the parallel network.

Binary requests versus (i) data-size-prioritized requests and (ii) weighted
head-of-line-delay-prioritized requests (alpha = 0.001).  Expected shape:
the data-size approach buys almost no goodput and *hurts* FCT (mice pairs
lose grants to big backlogs); the HoL-delay approach trims tail FCT at full
load but is neutral elsewhere — neither justifies the added complexity.

Each (variant, load) point is declared as a
:class:`~repro.sweep.spec.RunSpec` naming the scheduler variant.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_us

PAPER_REFERENCE = {
    # load -> {variant: (FCT us, goodput)}
    0.10: {"base": (15.3, 0.091), "data-size": (15.6, 0.091), "hol-delay": (15.2, 0.091)},
    0.25: {"base": (15.4, 0.226), "data-size": (15.9, 0.226), "hol-delay": (15.2, 0.226)},
    0.50: {"base": (15.6, 0.452), "data-size": (16.4, 0.452), "hol-delay": (15.3, 0.452)},
    0.75: {"base": (16.3, 0.675), "data-size": (23.0, 0.676), "hol-delay": (15.3, 0.676)},
    1.00: {"base": (22.0, 0.890), "data-size": (44.2, 0.898), "hol-delay": (15.5, 0.892)},
}

VARIANTS = ("base", "data-size", "hol-delay")


def variant_spec(
    scale: ExperimentScale, load: float, variant: str
) -> RunSpec:
    """Declare one request-content-policy run (parallel network)."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scheduler=variant,
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
    )


def run_point(
    scale: ExperimentScale,
    load: float,
    variant: str,
    runner: SweepRunner | None = None,
):
    """(99p mice FCT us, goodput) for one request-content policy."""
    runner = runner if runner is not None else SweepRunner()
    spec = variant_spec(scale, load, variant)
    summary = runner.run([spec])[spec.content_hash]
    return fct_us(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Table 4."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Table 4",
        title="informative requests: 99p mice FCT (us) / goodput (parallel)",
        headers=["load"]
        + [f"{v} FCT" for v in VARIANTS]
        + [f"{v} gput" for v in VARIANTS]
        + ["paper (base/size/hol FCT)"],
    )
    specs = {
        (variant, load): variant_spec(scale, load, variant)
        for load in loads
        for variant in VARIANTS
    }
    summaries = runner.run(specs.values())
    for load in loads:
        fcts, gputs = [], []
        for variant in VARIANTS:
            summary = summaries[specs[(variant, load)].content_hash]
            fct = fct_us(summary)
            fcts.append(fct if fct is not None else "n/a")
            gputs.append(summary.goodput_normalized)
        reference = PAPER_REFERENCE.get(round(load, 2))
        paper_cell = (
            "/".join(str(reference[v][0]) for v in VARIANTS) if reference else "-"
        )
        result.add_row(f"{load:.0%}", *fcts, *gputs, paper_cell)
    result.notes.append(
        "paper: goodput differences are tiny; data-size hurts tail FCT at "
        "heavy load, HoL-delay trims it modestly"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
