"""Table 4 / Appendix A.2.3 — informative requests on the parallel network.

Binary requests versus (i) data-size-prioritized requests and (ii) weighted
head-of-line-delay-prioritized requests (alpha = 0.001).  Expected shape:
the data-size approach buys almost no goodput and *hurts* FCT (mice pairs
lose grants to big backlogs); the HoL-delay approach trims tail FCT at full
load but is neutral elsewhere — neither justifies the added complexity.
"""

from __future__ import annotations

from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_us,
    run_negotiator,
    workload_for,
)

PAPER_REFERENCE = {
    # load -> {variant: (FCT us, goodput)}
    0.10: {"base": (15.3, 0.091), "data-size": (15.6, 0.091), "hol-delay": (15.2, 0.091)},
    0.25: {"base": (15.4, 0.226), "data-size": (15.9, 0.226), "hol-delay": (15.2, 0.226)},
    0.50: {"base": (15.6, 0.452), "data-size": (16.4, 0.452), "hol-delay": (15.3, 0.452)},
    0.75: {"base": (16.3, 0.675), "data-size": (23.0, 0.676), "hol-delay": (15.3, 0.676)},
    1.00: {"base": (22.0, 0.890), "data-size": (44.2, 0.898), "hol-delay": (15.5, 0.892)},
}

VARIANTS = ("base", "data-size", "hol-delay")


def run_point(scale: ExperimentScale, load: float, variant: str):
    """(99p mice FCT us, goodput) for one request-content policy."""
    flows = workload_for(scale, load)
    artifacts = run_negotiator(
        scale, "parallel", flows, scheduler_name=variant
    )
    summary = artifacts.summary
    return fct_us(summary), summary.goodput_normalized


def run(scale: ExperimentScale | None = None, loads=None) -> ExperimentResult:
    """Regenerate Table 4."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    result = ExperimentResult(
        experiment="Table 4",
        title="informative requests: 99p mice FCT (us) / goodput (parallel)",
        headers=["load"]
        + [f"{v} FCT" for v in VARIANTS]
        + [f"{v} gput" for v in VARIANTS]
        + ["paper (base/size/hol FCT)"],
    )
    for load in loads:
        fcts, gputs = [], []
        for variant in VARIANTS:
            fct, goodput = run_point(scale, load, variant)
            fcts.append(fct if fct is not None else "n/a")
            gputs.append(goodput)
        reference = PAPER_REFERENCE.get(round(load, 2))
        paper_cell = (
            "/".join(str(reference[v][0]) for v in VARIANTS) if reference else "-"
        )
        result.add_row(f"{load:.0%}", *fcts, *gputs, paper_cell)
    result.notes.append(
        "paper: goodput differences are tiny; data-size hurts tail FCT at "
        "heavy load, HoL-delay trims it modestly"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
