"""Fig 9 companion — NegotiaToR vs oblivious vs rotor, across workloads.

The paper's evaluation compares NegotiaToR against one traffic-oblivious
baseline (the Sirius-style per-packet rotor with up-front VLB spraying).
This experiment adds the *other* classic oblivious design — a
RotorNet-style long-slice round-robin rotor with RotorLB two-hop relay
(sim/rotor.py) — and runs all three systems over three traffic shapes:

* the paper's Hadoop Poisson workload,
* ``rotor-uniform`` — equal-sized bulk flows over a uniform matrix, the
  regime rotor fabrics are designed for, and
* ``rotor-skewed`` — a heavily skewed matrix, the regime that punishes
  traffic-oblivious schedules hardest.

Expected shape (adaptive-vs-oblivious trade-off; cf. D3, Avin & Schmid):

* NegotiaToR's mice FCT stays one to two orders of magnitude below both
  oblivious designs everywhere — neither rotor can deliver a mouse before
  its rotation reaches the destination.
* On the uniform bulk workload the rotor's goodput tracks the offered load
  (its schedule matches the demand matrix by construction); on the skewed
  matrix it falls behind while NegotiaToR keeps climbing.
* Disabling the VLB relay (``rotor w/o VLB``) hurts the rotor most on
  skewed traffic, where direct slices to the hot destinations are the
  bottleneck that indirection would have spread.
"""

from __future__ import annotations

from ..sim.config import KB
from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

WORKLOADS = (
    ("hadoop poisson", "poisson", {"trace": "hadoop"}),
    ("rotor-uniform", "rotor-uniform", {"flow_bytes": 50 * KB}),
    (
        "rotor-skewed",
        "rotor-skewed",
        {"trace": "hadoop", "hot_fraction": 0.125, "hot_weight": 0.9},
    ),
)

SYSTEMS = (
    ("NT parallel", "parallel", {}),
    ("oblivious", "oblivious", {}),
    ("rotor", "rotor", {}),
    ("rotor w/o VLB", "rotor", {"vlb_relay": False}),
)


def load_specs(
    scale: ExperimentScale, *, loads=None
) -> dict[tuple[str, str], dict[float, RunSpec]]:
    """Declare every run: {(system label, workload label): {load: spec}}."""
    loads = loads if loads is not None else scale.loads
    grid: dict[tuple[str, str], dict[float, RunSpec]] = {}
    for workload_label, scenario, scenario_params in WORKLOADS:
        for system_label, kind, rotor_params in SYSTEMS:
            grid[(system_label, workload_label)] = {
                load: RunSpec(
                    **scale_spec_fields(scale),
                    **system_spec_fields(kind),
                    scenario=scenario,
                    scenario_params=scenario_params,
                    load=load,
                    seed=scale.seed,
                    rotor_params=rotor_params,
                )
                for load in loads
            }
    return grid


def sweep(
    scale: ExperimentScale,
    *,
    loads=None,
    runner: SweepRunner | None = None,
) -> dict[tuple[str, str], dict[float, tuple[float | None, float]]]:
    """Run the grid; returns {(system, workload): {load: (fct_ms, goodput)}}."""
    runner = runner if runner is not None else SweepRunner()
    grid = load_specs(scale, loads=loads)
    summaries = runner.run(
        spec for per_load in grid.values() for spec in per_load.values()
    )
    return {
        key: {
            load: (
                fct_ms(summaries[spec.content_hash]),
                summaries[spec.content_hash].goodput_normalized,
            )
            for load, spec in per_load.items()
        }
        for key, per_load in grid.items()
    }


def build_result(
    scale: ExperimentScale, data, *, loads=None
) -> ExperimentResult:
    """Render the sweep as one table with FCT and goodput per system."""
    loads = loads if loads is not None else scale.loads
    headers = ["system", "workload"]
    for load in loads:
        headers.append(f"FCT@{int(load * 100)}%")
    for load in loads:
        headers.append(f"gput@{int(load * 100)}%")
    result = ExperimentResult(
        experiment="Fig 9 (rotor baseline)",
        title="NegotiaToR vs oblivious vs rotor: 99p mice FCT (ms) and goodput",
        headers=headers,
    )
    for (system, workload), per_load in data.items():
        row: list = [system, workload]
        for load in loads:
            fct, _ = per_load[load]
            row.append(fct if fct is not None else "n/a")
        for load in loads:
            _, goodput = per_load[load]
            row.append(goodput)
        result.rows.append(row)
    result.series = data
    result.notes.append(
        "rotor = RotorNet-style round-robin slices with RotorLB two-hop "
        "relay; oblivious = per-packet rotor with up-front VLB spraying"
    )
    result.notes.append(
        "expected: NegotiaToR mice FCT 1-2 orders below both rotors; the "
        "rotor matches offered load on uniform bulk traffic and falls "
        "behind on the skewed matrix"
    )
    result.notes.append(f"scale={scale.name}")
    return result


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate the three-system rotor-baseline comparison."""
    scale = scale or current_scale()
    return build_result(scale, sweep(scale, runner=runner))


if __name__ == "__main__":
    print(run().render())
