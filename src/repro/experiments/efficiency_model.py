"""Section 3.2.2 — the matching-efficiency model, three ways.

For a range of competitor counts n we compare (i) the closed form
1 - (1 - 1/n)^n, (ii) the direct binomial expectation it simplifies, and
(iii) a Monte Carlo simulation of the random grant/accept model.  The paper
quotes 0.634 at n = 128 (parallel) and 0.644 at n = 16 (thin-clos W), with
1 - 1/e as the limit.
"""

from __future__ import annotations

import random

from ..core.efficiency import (
    asymptotic_match_ratio,
    binomial_acceptance_expectation,
    expected_match_ratio,
    monte_carlo_match_ratio,
)
from .common import ExperimentResult, ExperimentScale, current_scale

COMPETITOR_COUNTS = (4, 8, 16, 32, 64, 128)


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Validate the efficiency model across competitor counts."""
    scale = scale or current_scale()
    rng = random.Random(scale.seed)
    result = ExperimentResult(
        experiment="Sec 3.2.2",
        title="matching efficiency E[Y]: closed form vs binomial vs Monte Carlo",
        headers=["n", "closed form", "binomial sum", "Monte Carlo"],
    )
    for n in COMPETITOR_COUNTS:
        rounds = max(20, 4000 // n)
        result.add_row(
            n,
            expected_match_ratio(n),
            binomial_acceptance_expectation(n),
            monte_carlo_match_ratio(n, ports=4, rounds=rounds, rng=rng),
        )
    result.notes.append(
        f"limit 1 - 1/e = {asymptotic_match_ratio():.4f}; paper quotes "
        "0.634 at n=128 and 0.644 at n=16"
    )
    return result


if __name__ == "__main__":
    print(run().render())
