"""Fig 10 — bandwidth usage through link failure and recovery.

A fraction of all directed fibers fails simultaneously mid-run on the
parallel network and is repaired later.  We report the paper's two ratios:
``BW_post_failure / BW_pre_failure`` (how much bandwidth the failures cost)
and ``BW_pre_recovery / BW_post_recovery`` (how completely repair restores
it).  Expected shape: the bandwidth drop is disproportionate to the failure
ratio (one dead fiber affects every pair whose control or data rides it) and
recovery returns usage to its pre-failure level.

Each failure-ratio point is declared as a :class:`~repro.sweep.spec.RunSpec`
carrying the failure plan in ``failure_params`` and the windowed-bandwidth
measurement in the ``fault_bw_ratios`` collector.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, make_topology

FAILURE_RATIOS = (0.02, 0.04, 0.06, 0.08, 0.10)


def _epoch_ns(scale: ExperimentScale) -> float:
    from ..sim.config import EpochConfig, EpochTiming

    slots = make_topology(scale, "parallel").predefined_slots
    return EpochTiming.derive(EpochConfig(), 100.0, slots).epoch_ns


def fault_spec(
    scale: ExperimentScale, failure_ratio: float, seed: int = 5
) -> RunSpec:
    """Declare one Fig 10 run: saturating all-to-all through fail+repair.

    A saturating all-to-all backlog keeps every link busy, so windowed
    delivered bytes measure available bandwidth directly.  The window
    boundaries are multiples of the (declare-time-derived) epoch length.
    """
    epoch_ns = _epoch_ns(scale)
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scenario="alltoall",
        scenario_params={"flow_bytes": 20_000_000, "at_ns": 0.0},
        load=1.0,
        seed=seed,
        duration_ns=360 * epoch_ns,
        failure_params={
            "plan": "random",
            "ratio": failure_ratio,
            "fail_at_ns": 120 * epoch_ns,
            "repair_at_ns": 240 * epoch_ns,
            "seed": seed,
            "detect_epochs": 3,
        },
        instrument={
            "bandwidth_bin_ns": epoch_ns,
            "margin_ns": 25 * epoch_ns,
        },
        collect=("fault_bw_ratios",),
    )


def bandwidth_ratios(
    scale: ExperimentScale,
    failure_ratio: float,
    seed: int = 5,
    runner: SweepRunner | None = None,
) -> tuple[float, float]:
    """(post-failure/pre-failure, pre-recovery/post-recovery) ratios."""
    runner = runner if runner is not None else SweepRunner()
    spec = fault_spec(scale, failure_ratio, seed=seed)
    ratios = runner.run([spec])[spec.content_hash].extra["fault_bw_ratios"]
    return ratios["drop"], ratios["recovery"]


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 10."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 10",
        title="bandwidth usage through link failure and recovery",
        headers=[
            "failure ratio",
            "BW_post_failure/BW_pre_failure",
            "BW_pre_recov/BW_post_recov",
        ],
    )
    specs = {ratio: fault_spec(scale, ratio) for ratio in FAILURE_RATIOS}
    summaries = runner.run(specs.values())
    for ratio in FAILURE_RATIOS:
        ratios = summaries[specs[ratio].content_hash].extra["fault_bw_ratios"]
        result.add_row(f"{ratio:.0%}", ratios["drop"], ratios["recovery"])
    result.notes.append(
        "paper: 1% failures -> 98.9% bandwidth, 10% -> 75.3%; recovery "
        "restores the pre-failure level (both ratios track each other)"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
