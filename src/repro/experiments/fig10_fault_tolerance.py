"""Fig 10 — bandwidth usage through link failure and recovery.

A fraction of all directed fibers fails simultaneously mid-run on the
parallel network and is repaired later.  We report the paper's two ratios:
``BW_post_failure / BW_pre_failure`` (how much bandwidth the failures cost)
and ``BW_pre_recovery / BW_post_recovery`` (how completely repair restores
it).  Expected shape: the bandwidth drop is disproportionate to the failure
ratio (one dead fiber affects every pair whose control or data rides it) and
recovery returns usage to its pre-failure level.
"""

from __future__ import annotations

import random

from ..sim.failures import LinkFailureModel, random_failure_plan
from ..workloads.incast import all_to_all_workload
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    make_topology,
    run_negotiator,
)

FAILURE_RATIOS = (0.02, 0.04, 0.06, 0.08, 0.10)


def bandwidth_ratios(
    scale: ExperimentScale, failure_ratio: float, seed: int = 5
) -> tuple[float, float]:
    """(post-failure/pre-failure, pre-recovery/post-recovery) ratios."""
    epoch_ns = _epoch_ns(scale)
    duration = 360 * epoch_ns
    fail_at = 120 * epoch_ns
    repair_at = 240 * epoch_ns
    margin = 25 * epoch_ns

    # A saturating all-to-all backlog keeps every link busy, so windowed
    # delivered bytes measure available bandwidth directly.
    flows = all_to_all_workload(scale.num_tors, flow_bytes=20_000_000)
    plan, _failed = random_failure_plan(
        scale.num_tors, scale.ports_per_tor, failure_ratio,
        fail_at, repair_at, random.Random(seed),
    )
    model = LinkFailureModel(scale.num_tors, scale.ports_per_tor, detect_epochs=3)
    artifacts = run_negotiator(
        scale, "parallel", flows,
        duration_ns=duration,
        failure_model=model,
        failure_plan=plan,
        bandwidth_bin_ns=epoch_ns,
    )
    recorder = artifacts.bandwidth

    def window(start, end):
        return sum(
            recorder.window_bytes(("rx", dst), start, end)
            for dst in range(scale.num_tors)
        ) / (end - start)

    pre = window(margin, fail_at)
    during = window(fail_at + margin, repair_at)
    post = window(repair_at + margin, duration - margin)
    return during / pre, during / post


def _epoch_ns(scale: ExperimentScale) -> float:
    from ..sim.config import EpochConfig, EpochTiming

    slots = make_topology(scale, "parallel").predefined_slots
    return EpochTiming.derive(EpochConfig(), 100.0, slots).epoch_ns


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 10."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 10",
        title="bandwidth usage through link failure and recovery",
        headers=[
            "failure ratio",
            "BW_post_failure/BW_pre_failure",
            "BW_pre_recov/BW_post_recov",
        ],
    )
    for ratio in FAILURE_RATIOS:
        drop, recovery = bandwidth_ratios(scale, ratio)
        result.add_row(f"{ratio:.0%}", drop, recovery)
    result.notes.append(
        "paper: 1% failures -> 98.9% bandwidth, 10% -> 75.3%; recovery "
        "restores the pre-failure level (both ratios track each other)"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
