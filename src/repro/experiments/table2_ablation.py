"""Table 2 — scheduling-delay-bypass ablation at 100% load.

The paper reports 99th-percentile / average mice-flow FCT in *epochs* for
the four combinations of data piggybacking (PB) and priority queues (PQ) on
both topologies.  Expected shape: each mechanism helps alone, their
combination drives the average below the ~2-epoch scheduling delay (the
paper reaches 6.0/1.6 epochs on the parallel network), and disabling both is
one to two orders of magnitude worse.

Each ablation cell is declared as a :class:`~repro.sweep.spec.RunSpec`:
``priority_queue`` switches PQ, and ``epoch_params={"piggyback": False}``
applies the no-piggyback protocol (shrunk predefined slots, regrown
scheduled phase).
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale

PAPER_REFERENCE = {
    # (pb, pq) -> (parallel 99p/avg, thin-clos 99p/avg), in epochs
    (False, False): ((732.4, 42.1), (1216.4, 75.0)),
    (True, False): ((418.5, 19.9), (847.9, 45.3)),
    (False, True): ((21.0, 5.7), (26.4, 5.7)),
    (True, True): ((6.0, 1.6), (6.5, 1.6)),
}

TOPOLOGIES = ("parallel", "thinclos")
CELLS = ((False, False), (True, False), (False, True), (True, True))


def ablation_spec(
    scale: ExperimentScale, topology_kind: str, pb: bool, pq: bool
) -> RunSpec:
    """Declare one ablation cell's run."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology=topology_kind,
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=1.0,
        seed=scale.seed,
        priority_queue=pq,
        epoch_params={} if pb else {"piggyback": False},
    )


def run_cell(
    scale: ExperimentScale,
    topology_kind: str,
    pb: bool,
    pq: bool,
    runner: SweepRunner | None = None,
) -> tuple[float, float]:
    """One ablation cell: (99p, mean) mice FCT in epochs at 100% load."""
    runner = runner if runner is not None else SweepRunner()
    spec = ablation_spec(scale, topology_kind, pb, pq)
    summary = runner.run([spec])[spec.content_hash]
    if summary.mice_fct_p99_epochs is None:
        raise RuntimeError("no completed mice flows — run longer")
    return summary.mice_fct_p99_epochs, summary.mice_fct_mean_epochs


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Table 2."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Table 2",
        title="mice flow FCT in epochs (99p/avg) at 100% load, PB/PQ ablation",
        headers=[
            "config",
            "parallel 99p",
            "parallel avg",
            "thin-clos 99p",
            "thin-clos avg",
            "paper parallel",
            "paper thin-clos",
        ],
    )
    labels = {
        (False, False): "-",
        (True, False): "PB",
        (False, True): "PQ",
        (True, True): "PB and PQ",
    }
    # Batch-warm the runner so the whole grid fans out; the per-cell
    # reads below are pure cache hits through the shared helper.
    runner.run(
        ablation_spec(scale, kind, pb, pq)
        for pb, pq in CELLS
        for kind in TOPOLOGIES
    )
    for key in CELLS:
        pb, pq = key
        par_p99, par_avg = run_cell(scale, "parallel", pb, pq, runner=runner)
        thin_p99, thin_avg = run_cell(scale, "thinclos", pb, pq, runner=runner)
        paper_par, paper_thin = PAPER_REFERENCE[key]
        result.add_row(
            labels[key],
            par_p99,
            par_avg,
            thin_p99,
            thin_avg,
            f"{paper_par[0]}/{paper_par[1]}",
            f"{paper_thin[0]}/{paper_thin[1]}",
        )
    result.notes.append(
        "shape check: FCT drops with each mechanism; PB+PQ average is near "
        "the ~2-epoch scheduling delay"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
