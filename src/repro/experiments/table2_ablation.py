"""Table 2 — scheduling-delay-bypass ablation at 100% load.

The paper reports 99th-percentile / average mice-flow FCT in *epochs* for
the four combinations of data piggybacking (PB) and priority queues (PQ) on
both topologies.  Expected shape: each mechanism helps alone, their
combination drives the average below the ~2-epoch scheduling delay (the
paper reaches 6.0/1.6 epochs on the parallel network), and disabling both is
one to two orders of magnitude worse.
"""

from __future__ import annotations

from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    make_topology,
    run_negotiator,
    sim_config,
    workload_for,
)
from ..sim.config import EpochConfig, epoch_config_without_piggyback

PAPER_REFERENCE = {
    # (pb, pq) -> (parallel 99p/avg, thin-clos 99p/avg), in epochs
    (False, False): ((732.4, 42.1), (1216.4, 75.0)),
    (True, False): ((418.5, 19.9), (847.9, 45.3)),
    (False, True): ((21.0, 5.7), (26.4, 5.7)),
    (True, True): ((6.0, 1.6), (6.5, 1.6)),
}


def run_cell(
    scale: ExperimentScale, topology_kind: str, pb: bool, pq: bool
) -> tuple[float, float]:
    """One ablation cell: (99p, mean) mice FCT in epochs at 100% load."""
    epoch = EpochConfig()
    if not pb:
        predefined_slots = make_topology(scale, topology_kind).predefined_slots
        epoch = epoch_config_without_piggyback(epoch, 100.0, predefined_slots)
    config = sim_config(scale, epoch=epoch, priority_queue_enabled=pq)
    flows = workload_for(scale, load=1.0)
    artifacts = run_negotiator(
        scale, topology_kind, flows, config=config
    )
    summary = artifacts.summary
    if summary.mice_fct_p99_epochs is None:
        raise RuntimeError("no completed mice flows — run longer")
    return summary.mice_fct_p99_epochs, summary.mice_fct_mean_epochs


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Table 2."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Table 2",
        title="mice flow FCT in epochs (99p/avg) at 100% load, PB/PQ ablation",
        headers=[
            "config",
            "parallel 99p",
            "parallel avg",
            "thin-clos 99p",
            "thin-clos avg",
            "paper parallel",
            "paper thin-clos",
        ],
    )
    labels = {
        (False, False): "-",
        (True, False): "PB",
        (False, True): "PQ",
        (True, True): "PB and PQ",
    }
    for key in [(False, False), (True, False), (False, True), (True, True)]:
        pb, pq = key
        par_p99, par_avg = run_cell(scale, "parallel", pb, pq)
        thin_p99, thin_avg = run_cell(scale, "thinclos", pb, pq)
        paper_par, paper_thin = PAPER_REFERENCE[key]
        result.add_row(
            labels[key],
            par_p99,
            par_avg,
            thin_p99,
            thin_avg,
            f"{paper_par[0]}/{paper_par[1]}",
            f"{paper_thin[0]}/{paper_thin[1]}",
        )
    result.notes.append(
        "shape check: FCT drops with each mechanism; PB+PQ average is near "
        "the ~2-epoch scheduling delay"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
