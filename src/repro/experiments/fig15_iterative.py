"""Fig 15 / Appendix A.2.1 — iteration versus speedup.

The iterative variants run with *no* uplink speedup (ITER_I/III/V = 1/3/5
iterations at 1x) against the standard non-iterative matching with the 2x
speedup.  Expected shape: iteration consistently worsens FCT (each extra
iteration adds three epochs of scheduling delay) and does not buy goodput —
the 2x speedup dominates everywhere, which is the paper's argument for
"no iteration".
"""

from __future__ import annotations

from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_ms,
    run_negotiator,
    sim_config,
    workload_for,
)

VARIANTS = (
    ("Speedup 2x", "base", None, True),
    ("ITER_I", "iterative", 1, False),
    ("ITER_III", "iterative", 3, False),
    ("ITER_V", "iterative", 5, False),
)


def run_point(
    scale: ExperimentScale,
    load: float,
    scheduler_name: str,
    iterations: int | None,
    speedup: bool,
):
    """(FCT ms, goodput) for one variant at one load (parallel network)."""
    config = sim_config(scale)
    if not speedup:
        config = config.without_speedup()
    flows = workload_for(scale, load)
    kwargs = {"iterations": iterations} if iterations is not None else {}
    artifacts = run_negotiator(
        scale, "parallel", flows,
        config=config,
        scheduler_name=scheduler_name,
        scheduler_kwargs=kwargs or None,
    )
    summary = artifacts.summary
    return fct_ms(summary), summary.goodput_normalized


def run(scale: ExperimentScale | None = None, loads=None) -> ExperimentResult:
    """Regenerate Fig 15."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    headers = ["variant"]
    headers += [f"FCT@{int(l * 100)}%" for l in loads]
    headers += [f"gput@{int(l * 100)}%" for l in loads]
    result = ExperimentResult(
        experiment="Fig 15",
        title="iterative matching (1x) vs 2x speedup on the parallel network",
        headers=headers,
    )
    for label, name, iterations, speedup in VARIANTS:
        fcts, gputs = [], []
        for load in loads:
            fct, goodput = run_point(scale, load, name, iterations, speedup)
            fcts.append(fct if fct is not None else "n/a")
            gputs.append(goodput)
        result.add_row(label, *fcts, *gputs)
    result.notes.append(
        "paper: iteration worsens FCT at all loads; goodput never beats the "
        "2x speedup"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
