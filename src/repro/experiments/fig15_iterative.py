"""Fig 15 / Appendix A.2.1 — iteration versus speedup.

The iterative variants run with *no* uplink speedup (ITER_I/III/V = 1/3/5
iterations at 1x) against the standard non-iterative matching with the 2x
speedup.  Expected shape: iteration consistently worsens FCT (each extra
iteration adds three epochs of scheduling delay) and does not buy goodput —
the 2x speedup dominates everywhere, which is the paper's argument for
"no iteration".

Each (variant, load) point is declared as a
:class:`~repro.sweep.spec.RunSpec` carrying the scheduler variant and the
``without_speedup`` flag.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

VARIANTS = (
    ("Speedup 2x", "base", None, True),
    ("ITER_I", "iterative", 1, False),
    ("ITER_III", "iterative", 3, False),
    ("ITER_V", "iterative", 5, False),
)


def variant_spec(
    scale: ExperimentScale,
    load: float,
    scheduler_name: str,
    iterations: int | None,
    speedup: bool,
) -> RunSpec:
    """Declare one variant's run at one load (parallel network)."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scheduler=scheduler_name,
        scheduler_params=(
            {"iterations": iterations} if iterations is not None else {}
        ),
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
        without_speedup=not speedup,
    )


def run_point(
    scale: ExperimentScale,
    load: float,
    scheduler_name: str,
    iterations: int | None,
    speedup: bool,
    runner: SweepRunner | None = None,
):
    """(FCT ms, goodput) for one variant at one load (parallel network)."""
    runner = runner if runner is not None else SweepRunner()
    spec = variant_spec(scale, load, scheduler_name, iterations, speedup)
    summary = runner.run([spec])[spec.content_hash]
    return fct_ms(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 15."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    runner = runner if runner is not None else SweepRunner()
    headers = ["variant"]
    headers += [f"FCT@{int(l * 100)}%" for l in loads]
    headers += [f"gput@{int(l * 100)}%" for l in loads]
    result = ExperimentResult(
        experiment="Fig 15",
        title="iterative matching (1x) vs 2x speedup on the parallel network",
        headers=headers,
    )
    # Batch-warm the runner so the whole grid fans out; the per-point
    # reads below are pure cache hits through the shared helper.
    runner.run(
        variant_spec(scale, load, name, iterations, speedup)
        for _label, name, iterations, speedup in VARIANTS
        for load in loads
    )
    for label, name, iterations, speedup in VARIANTS:
        fcts, gputs = [], []
        for load in loads:
            fct, gput = run_point(
                scale, load, name, iterations, speedup, runner=runner
            )
            fcts.append(fct if fct is not None else "n/a")
            gputs.append(gput)
        result.add_row(label, *fcts, *gputs)
    result.notes.append(
        "paper: iteration worsens FCT at all loads; goodput never beats the "
        "2x speedup"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
