"""Fig 9 — the main result: mice FCT and goodput across loads.

NegotiaToR (both topologies, with and without priority queues) versus the
traffic-oblivious baseline under the Hadoop workload, loads 10%..100%.
Expected shape (section 4.3):

* NegotiaToR's 99p mice FCT is one to two orders of magnitude below the
  baseline at every load when PQ is on, and still far better at light loads
  without PQ.
* Goodput tracks the offered load for everyone at light loads; at heavy
  loads relayed traffic saturates the baseline while NegotiaToR keeps
  climbing (the paper's crossover).
* Thin-clos is marginally below the parallel network, not qualitatively off.
"""

from __future__ import annotations

from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_ms,
    run_negotiator,
    run_oblivious,
    workload_for,
)

SYSTEMS = (
    ("NT parallel", "parallel", True),
    ("NT parallel w/o PQ", "parallel", False),
    ("NT thin-clos", "thinclos", True),
    ("NT thin-clos w/o PQ", "thinclos", False),
    ("oblivious", "oblivious", True),
    ("oblivious w/o PQ", "oblivious", False),
)


def sweep(
    scale: ExperimentScale,
    *,
    without_speedup: bool = False,
    trace: str = "hadoop",
    loads=None,
) -> dict[str, dict[float, tuple[float | None, float]]]:
    """Run every system at every load; returns {system: {load: (fct_ms, goodput)}}.

    ``without_speedup`` switches to the Fig 11 protocol (1x uplinks).
    """
    loads = loads if loads is not None else scale.loads
    results: dict[str, dict[float, tuple[float | None, float]]] = {}
    for label, kind, pq in SYSTEMS:
        per_load = {}
        for load in loads:
            flows = workload_for(scale, load, trace=trace)
            if kind == "oblivious":
                config = _config(scale, pq, without_speedup)
                artifacts = run_oblivious(
                    scale, "thinclos", flows, config=config
                )
            else:
                config = _config(scale, pq, without_speedup)
                artifacts = run_negotiator(scale, kind, flows, config=config)
            summary = artifacts.summary
            per_load[load] = (fct_ms(summary), summary.goodput_normalized)
        results[label] = per_load
    return results


def _config(scale, pq, without_speedup):
    from .common import sim_config

    config = sim_config(scale, priority_queue_enabled=pq)
    if without_speedup:
        config = config.without_speedup()
    return config


def build_result(
    scale: ExperimentScale,
    data,
    *,
    experiment: str = "Fig 9",
    title: str = "99p mice FCT (ms) and normalized goodput vs load",
    loads=None,
) -> ExperimentResult:
    """Render a sweep as one table with FCT and goodput per system."""
    loads = loads if loads is not None else scale.loads
    headers = ["system"]
    for load in loads:
        headers.append(f"FCT@{int(load * 100)}%")
    for load in loads:
        headers.append(f"gput@{int(load * 100)}%")
    result = ExperimentResult(
        experiment=experiment, title=title, headers=headers
    )
    for label, per_load in data.items():
        row: list = [label]
        for load in loads:
            fct, _ = per_load[load]
            row.append(fct if fct is not None else "n/a")
        for load in loads:
            _, goodput = per_load[load]
            row.append(goodput)
        result.rows.append(row)
    result.series = data
    result.notes.append(
        "paper: NegotiaToR FCT 1-2 orders of magnitude below oblivious; "
        "oblivious goodput saturates at heavy load"
    )
    result.notes.append(f"scale={scale.name}")
    return result


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 9."""
    scale = scale or current_scale()
    return build_result(scale, sweep(scale))


if __name__ == "__main__":
    print(run().render())
