"""Fig 9 — the main result: mice FCT and goodput across loads.

NegotiaToR (both topologies, with and without priority queues) versus the
traffic-oblivious baseline under the Hadoop workload, loads 10%..100%.
Expected shape (section 4.3):

* NegotiaToR's 99p mice FCT is one to two orders of magnitude below the
  baseline at every load when PQ is on, and still far better at light loads
  without PQ.
* Goodput tracks the offered load for everyone at light loads; at heavy
  loads relayed traffic saturates the baseline while NegotiaToR keeps
  climbing (the paper's crossover).
* Thin-clos is marginally below the parallel network, not qualitatively off.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

SYSTEMS = (
    ("NT parallel", "parallel", True),
    ("NT parallel w/o PQ", "parallel", False),
    ("NT thin-clos", "thinclos", True),
    ("NT thin-clos w/o PQ", "thinclos", False),
    ("oblivious", "oblivious", True),
    ("oblivious w/o PQ", "oblivious", False),
)


def load_specs(
    scale: ExperimentScale,
    *,
    without_speedup: bool = False,
    trace: str = "hadoop",
    loads=None,
) -> dict[str, dict[float, RunSpec]]:
    """Declare every Fig 9 run: {system label: {load: spec}}.

    The oblivious baseline always runs on thin-clos (its rotor schedule
    needs the AWGR structure); NegotiaToR runs on both fabrics.
    """
    loads = loads if loads is not None else scale.loads
    grid: dict[str, dict[float, RunSpec]] = {}
    for label, kind, pq in SYSTEMS:
        grid[label] = {
            load: RunSpec(
                **scale_spec_fields(scale),
                **system_spec_fields(kind),
                scenario="poisson",
                scenario_params={"trace": trace},
                load=load,
                seed=scale.seed,
                priority_queue=pq,
                without_speedup=without_speedup,
            )
            for load in loads
        }
    return grid


def sweep(
    scale: ExperimentScale,
    *,
    without_speedup: bool = False,
    trace: str = "hadoop",
    loads=None,
    runner: SweepRunner | None = None,
) -> dict[str, dict[float, tuple[float | None, float]]]:
    """Run every system at every load; returns {system: {load: (fct_ms, goodput)}}.

    ``without_speedup`` switches to the Fig 11 protocol (1x uplinks).  The
    runs are declared as specs and executed by ``runner`` (default: serial
    in-process), so ``repro run --jobs N`` parallelizes and a store-backed
    runner caches them.
    """
    runner = runner if runner is not None else SweepRunner()
    grid = load_specs(
        scale, without_speedup=without_speedup, trace=trace, loads=loads
    )
    summaries = runner.run(
        spec for per_load in grid.values() for spec in per_load.values()
    )
    return {
        label: {
            load: (
                fct_ms(summaries[spec.content_hash]),
                summaries[spec.content_hash].goodput_normalized,
            )
            for load, spec in per_load.items()
        }
        for label, per_load in grid.items()
    }


def build_result(
    scale: ExperimentScale,
    data,
    *,
    experiment: str = "Fig 9",
    title: str = "99p mice FCT (ms) and normalized goodput vs load",
    loads=None,
) -> ExperimentResult:
    """Render a sweep as one table with FCT and goodput per system."""
    loads = loads if loads is not None else scale.loads
    headers = ["system"]
    for load in loads:
        headers.append(f"FCT@{int(load * 100)}%")
    for load in loads:
        headers.append(f"gput@{int(load * 100)}%")
    result = ExperimentResult(
        experiment=experiment, title=title, headers=headers
    )
    for label, per_load in data.items():
        row: list = [label]
        for load in loads:
            fct, _ = per_load[load]
            row.append(fct if fct is not None else "n/a")
        for load in loads:
            _, goodput = per_load[load]
            row.append(goodput)
        result.rows.append(row)
    result.series = data
    result.notes.append(
        "paper: NegotiaToR FCT 1-2 orders of magnitude below oblivious; "
        "oblivious goodput saturates at heavy load"
    )
    result.notes.append(f"scale={scale.name}")
    return result


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 9."""
    scale = scale or current_scale()
    return build_result(scale, sweep(scale, runner=runner))


if __name__ == "__main__":
    print(run().render())
