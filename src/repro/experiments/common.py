"""Shared infrastructure for the paper-reproduction experiments.

Every module in :mod:`repro.experiments` regenerates one table or figure of
the paper.  Experiments run at a configurable *scale*:

* ``paper`` — the full 128 ToRs x 8 ports, 30 ms runs of section 4.1.  Exact
  but slow in pure Python (hours for the load sweeps).
* ``small`` — 32 ToRs x 4 ports, ~1.2 ms runs.  The default: every effect the
  paper reports is visible at this size, and the whole benchmark suite runs
  in minutes.
* ``tiny`` — 16 ToRs x 4 ports, sub-millisecond runs, for smoke testing.
* ``micro`` — 8 ToRs x 2 ports, 80 us runs: the golden-baseline scale the
  regression digests under tests/golden/ are recorded at.

Select with the ``REPRO_SCALE`` environment variable.  All scales keep the
paper's 2x uplink speedup by deriving the host-aggregate bandwidth from the
port count (``S * 100 / 2`` Gbps).
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field

import numpy as np

from ..core.variants import make_scheduler
from ..sim.config import EpochConfig, SimConfig
from ..sim.metrics import BandwidthRecorder, MatchRatioRecorder, RunSummary
from ..sim.factory import make_negotiator
from ..sim.network import NegotiaToRSimulator
from ..sim.oblivious import ObliviousSimulator
from ..topology.base import FlatTopology
from ..topology.parallel import ParallelNetwork
from ..topology.thinclos import ThinClos
from ..workloads.traces import by_name

SCALE_ENV_VAR = "REPRO_SCALE"

DEFAULT_LOADS = (0.1, 0.25, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class ExperimentScale:
    """One evaluation scale: fabric shape plus default run lengths."""

    name: str
    num_tors: int
    ports_per_tor: int
    awgr_ports: int
    duration_ns: float
    loads: tuple[float, ...] = DEFAULT_LOADS
    incast_degrees: tuple[int, ...] = (1, 5, 10, 20, 30)
    alltoall_flow_kb: tuple[int, ...] = (1, 5, 30, 100, 500)
    max_flow_bytes: int | None = None
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.num_tors != self.ports_per_tor * self.awgr_ports:
            raise ValueError(
                "scale must satisfy num_tors == ports_per_tor * awgr_ports "
                "for the balanced thin-clos"
            )

    @property
    def host_aggregate_gbps(self) -> float:
        """Host-side bandwidth keeping the paper's 2x speedup."""
        return self.ports_per_tor * 100.0 / 2.0


MICRO = ExperimentScale(
    name="micro",
    num_tors=8,
    ports_per_tor=2,
    awgr_ports=4,
    duration_ns=80_000.0,
    loads=(0.5, 1.0),
    incast_degrees=(1, 3),
    alltoall_flow_kb=(1, 5),
    max_flow_bytes=100_000,
    seed=99,
)

TINY = ExperimentScale(
    name="tiny",
    num_tors=16,
    ports_per_tor=4,
    awgr_ports=4,
    duration_ns=800_000.0,
    incast_degrees=(1, 2, 5, 10, 15),
    max_flow_bytes=500_000,
)

SMALL = ExperimentScale(
    name="small",
    num_tors=32,
    ports_per_tor=4,
    awgr_ports=8,
    duration_ns=1_200_000.0,
    incast_degrees=(1, 5, 10, 20, 30),
    max_flow_bytes=1_000_000,
)

PAPER = ExperimentScale(
    name="paper",
    num_tors=128,
    ports_per_tor=8,
    awgr_ports=16,
    duration_ns=30_000_000.0,
    incast_degrees=(1, 10, 20, 30, 40, 50),
)

SCALES = {scale.name: scale for scale in (MICRO, TINY, SMALL, PAPER)}


def current_scale() -> ExperimentScale:
    """The scale selected by ``REPRO_SCALE`` (default: small)."""
    name = os.environ.get(SCALE_ENV_VAR, "small").lower()
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(
            f"unknown {SCALE_ENV_VAR}={name!r}; choose from {sorted(SCALES)}"
        ) from None


def sim_config(scale: ExperimentScale, **overrides) -> SimConfig:
    """A SimConfig for one scale (2x speedup, paper timing defaults)."""
    base = dict(
        num_tors=scale.num_tors,
        ports_per_tor=scale.ports_per_tor,
        uplink_gbps=100.0,
        host_aggregate_gbps=scale.host_aggregate_gbps,
        seed=scale.seed,
    )
    base.update(overrides)
    return SimConfig(**base)


def make_topology(scale: ExperimentScale, kind: str) -> FlatTopology:
    """Build the ``parallel`` or ``thinclos`` fabric at one scale."""
    if kind == "parallel":
        return ParallelNetwork(scale.num_tors, scale.ports_per_tor)
    if kind == "thinclos":
        return ThinClos(scale.num_tors, scale.ports_per_tor, scale.awgr_ports)
    raise ValueError(f"unknown topology kind {kind!r}")


@dataclass
class RunArtifacts:
    """Everything an experiment may need from one simulation run."""

    summary: RunSummary
    simulator: object
    match_recorder: MatchRatioRecorder | None = None
    bandwidth: BandwidthRecorder | None = None


def _run_registered(sim, duration, until_complete, max_ns):
    """Drive one simulator to completion, visible to worker heartbeats.

    The active-simulator registration is what lets the sweep heartbeat
    thread (DESIGN.md §14) report sim-time/flow progress while the run
    loop below is busy; it costs one lock acquisition per *run*, not per
    epoch.
    """
    from ..telemetry.heartbeat import (
        clear_active_simulator,
        set_active_simulator,
    )

    set_active_simulator(sim)
    try:
        if until_complete:
            sim.run_until_complete(max_ns=max_ns or 100 * duration)
            return sim.summary(sim.now_ns)
        sim.run(duration)
        return sim.summary(duration)
    finally:
        clear_active_simulator()


def run_negotiator(
    scale: ExperimentScale,
    topology_kind: str,
    flows,
    *,
    duration_ns: float | None = None,
    config: SimConfig | None = None,
    epoch: EpochConfig | None = None,
    priority_queue: bool = True,
    scheduler_name: str = "base",
    scheduler_kwargs: dict | None = None,
    record_match_ratio: bool = False,
    bandwidth_bin_ns: float | None = None,
    record_pair_bandwidth: bool = False,
    failure_model=None,
    failure_plan=None,
    until_complete: bool = False,
    max_ns: float | None = None,
    stream: bool = False,
    tracer=None,
) -> RunArtifacts:
    """Run NegotiaToR on a workload and collect artifacts.

    ``stream=True`` consumes ``flows`` as a lazy arrival-ordered iterator
    with a bounded-memory tracker (DESIGN.md §11).  ``tracer`` is an
    optional :class:`~repro.telemetry.EngineTracer` (DESIGN.md §14).
    """
    if config is None:
        overrides: dict = {"priority_queue_enabled": priority_queue}
        if epoch is not None:
            overrides["epoch"] = epoch
        config = sim_config(scale, **overrides)
    topology = make_topology(scale, topology_kind)
    scheduler = None
    if scheduler_name != "base" or scheduler_kwargs:
        scheduler = make_scheduler(
            scheduler_name,
            topology,
            random.Random(config.seed),
            **(scheduler_kwargs or {}),
        )
    match_recorder = MatchRatioRecorder() if record_match_ratio else None
    bandwidth = (
        BandwidthRecorder(bandwidth_bin_ns) if bandwidth_bin_ns else None
    )
    sim = make_negotiator(
        config,
        topology,
        flows,
        scheduler=scheduler,
        failure_model=failure_model,
        failure_plan=failure_plan,
        match_recorder=match_recorder,
        bandwidth_recorder=bandwidth,
        record_pair_bandwidth=record_pair_bandwidth,
        stream=stream,
        tracer=tracer,
    )
    duration = duration_ns if duration_ns is not None else scale.duration_ns
    summary = _run_registered(sim, duration, until_complete, max_ns)
    return RunArtifacts(
        summary=summary,
        simulator=sim,
        match_recorder=match_recorder,
        bandwidth=bandwidth,
    )


def run_relay(
    scale: ExperimentScale,
    flows,
    *,
    duration_ns: float | None = None,
    config: SimConfig | None = None,
    relay_policy=None,
    until_complete: bool = False,
    max_ns: float | None = None,
    tracer=None,
) -> RunArtifacts:
    """Run the selective-relay variant (thin-clos only, appendix A.2.2)."""
    from ..core.relay import SelectiveRelaySimulator

    if config is None:
        config = sim_config(scale)
    topology = make_topology(scale, "thinclos")
    sim = SelectiveRelaySimulator(
        config, topology, flows, relay_policy=relay_policy, tracer=tracer
    )
    duration = duration_ns if duration_ns is not None else scale.duration_ns
    summary = _run_registered(sim, duration, until_complete, max_ns)
    return RunArtifacts(summary=summary, simulator=sim)


def run_oblivious(
    scale: ExperimentScale,
    topology_kind: str,
    flows,
    *,
    duration_ns: float | None = None,
    config: SimConfig | None = None,
    priority_queue: bool = True,
    bandwidth_bin_ns: float | None = None,
    until_complete: bool = False,
    max_ns: float | None = None,
    stream: bool = False,
    tracer=None,
) -> RunArtifacts:
    """Run the traffic-oblivious baseline on a workload.

    ``stream=True`` consumes ``flows`` as a lazy arrival-ordered iterator
    with a bounded-memory tracker (DESIGN.md §11).
    """
    if config is None:
        config = sim_config(scale, priority_queue_enabled=priority_queue)
    topology = make_topology(scale, topology_kind)
    bandwidth = (
        BandwidthRecorder(bandwidth_bin_ns) if bandwidth_bin_ns else None
    )
    sim = ObliviousSimulator(
        config,
        topology,
        flows,
        bandwidth_recorder=bandwidth,
        stream=stream,
        tracer=tracer,
    )
    duration = duration_ns if duration_ns is not None else scale.duration_ns
    summary = _run_registered(sim, duration, until_complete, max_ns)
    return RunArtifacts(summary=summary, simulator=sim, bandwidth=bandwidth)


def run_rotor(
    scale: ExperimentScale,
    topology_kind: str,
    flows,
    *,
    duration_ns: float | None = None,
    config: SimConfig | None = None,
    priority_queue: bool = True,
    rotor=None,
    bandwidth_bin_ns: float | None = None,
    failure_model=None,
    failure_plan=None,
    until_complete: bool = False,
    max_ns: float | None = None,
    stream: bool = False,
    tracer=None,
) -> RunArtifacts:
    """Run the RotorNet-style rotor baseline on a workload.

    ``rotor`` is a :class:`~repro.sim.config.RotorConfig` (default
    timing/relay knobs when None).  ``stream=True`` consumes ``flows`` as a
    lazy arrival-ordered iterator with a bounded-memory tracker (DESIGN.md
    §11).
    """
    from ..sim.rotor import RotorSimulator

    if config is None:
        config = sim_config(scale, priority_queue_enabled=priority_queue)
    topology = make_topology(scale, topology_kind)
    bandwidth = (
        BandwidthRecorder(bandwidth_bin_ns) if bandwidth_bin_ns else None
    )
    sim = RotorSimulator(
        config,
        topology,
        flows,
        rotor=rotor,
        failure_model=failure_model,
        failure_plan=failure_plan,
        bandwidth_recorder=bandwidth,
        stream=stream,
        tracer=tracer,
    )
    duration = duration_ns if duration_ns is not None else scale.duration_ns
    summary = _run_registered(sim, duration, until_complete, max_ns)
    return RunArtifacts(summary=summary, simulator=sim, bandwidth=bandwidth)


def run_adaptive(
    scale: ExperimentScale,
    topology_kind: str,
    flows,
    *,
    duration_ns: float | None = None,
    config: SimConfig | None = None,
    priority_queue: bool = True,
    adaptive=None,
    bandwidth_bin_ns: float | None = None,
    failure_model=None,
    failure_plan=None,
    until_complete: bool = False,
    max_ns: float | None = None,
    stream: bool = False,
    tracer=None,
) -> RunArtifacts:
    """Run the demand-aware adaptive baseline on a workload.

    ``adaptive`` is a :class:`~repro.sim.config.AdaptiveConfig` (default
    estimation/matching knobs when None).  ``stream=True`` consumes
    ``flows`` as a lazy arrival-ordered iterator with a bounded-memory
    tracker (DESIGN.md §11).
    """
    from ..sim.adaptive import AdaptiveSimulator

    if config is None:
        config = sim_config(scale, priority_queue_enabled=priority_queue)
    topology = make_topology(scale, topology_kind)
    bandwidth = (
        BandwidthRecorder(bandwidth_bin_ns) if bandwidth_bin_ns else None
    )
    sim = AdaptiveSimulator(
        config,
        topology,
        flows,
        adaptive=adaptive,
        failure_model=failure_model,
        failure_plan=failure_plan,
        bandwidth_recorder=bandwidth,
        stream=stream,
        tracer=tracer,
    )
    duration = duration_ns if duration_ns is not None else scale.duration_ns
    summary = _run_registered(sim, duration, until_complete, max_ns)
    return RunArtifacts(summary=summary, simulator=sim, bandwidth=bandwidth)


def sized_distribution(scale: ExperimentScale, trace: str = "hadoop"):
    """A flow-size distribution truncated to the scale's cap.

    The cap keeps the largest flow's single-port service time small
    relative to the run, matching the paper's 30 ms-to-10 MB ratio
    (DESIGN.md).  The single source of truth for both the experiments'
    direct workloads and the sweep scenarios.
    """
    distribution = by_name(trace)
    if scale.max_flow_bytes is not None:
        distribution = distribution.truncated(scale.max_flow_bytes)
    return distribution


def workload_for(
    scale: ExperimentScale,
    load: float,
    *,
    trace: str = "hadoop",
    duration_ns: float | None = None,
    seed_offset: int = 0,
    rng: random.Random | None = None,
):
    """The standard Poisson workload of section 4.1 at one load point.

    ``rng`` overrides the default ``Random(scale.seed + seed_offset)`` —
    the sweep layer passes a spec-seeded one so both paths share this
    single implementation.
    """
    from ..workloads.generators import poisson_workload

    duration = duration_ns if duration_ns is not None else scale.duration_ns
    if rng is None:
        rng = random.Random(scale.seed + seed_offset)
    return poisson_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration,
        rng,
    )


# ---------------------------------------------------------------------------
# result rendering
# ---------------------------------------------------------------------------


@dataclass
class ExperimentResult:
    """A rendered experiment: headers, rows, and paper-comparison notes."""

    experiment: str
    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    series: dict = field(default_factory=dict)

    def add_row(self, *values) -> None:
        """Append one table row."""
        self.rows.append(list(values))

    def to_dict(self) -> dict:
        """JSON-serializable form (series data is omitted: it may hold
        arbitrarily large arrays; the sweep store is the home for raw
        per-run data)."""
        return {
            "experiment": self.experiment,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [[_jsonable(v) for v in row] for row in self.rows],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        """Human-readable fixed-width table plus notes."""
        cells = [[_format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [f"== {self.experiment}: {self.title} =="]
        lines.append(
            "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in cells:
            lines.append(
                "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
            )
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def _jsonable(value):
    """Coerce a table cell to a JSON-serializable scalar."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


def _format_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def fct_ms(summary: RunSummary) -> float | None:
    """99th-percentile mice FCT in milliseconds (the paper's FCT axis)."""
    if summary.mice_fct_p99_ns is None:
        return None
    return summary.mice_fct_p99_ns / 1e6


def fct_us(summary: RunSummary) -> float | None:
    """99th-percentile mice FCT in microseconds."""
    if summary.mice_fct_p99_ns is None:
        return None
    return summary.mice_fct_p99_ns / 1e3
