"""Fig 19 / Appendix A.4 — one pair's bandwidth through link failures.

A single source-destination pair streams continuously on the parallel
network while some of the source's egress fibers die.  Expected shape: the
per-epoch bandwidth occupation drops to the level of the remaining links,
and *some* epochs show zero occupation — the epochs whose rotating
round-robin rule put the pair's scheduling messages on a dead fiber, so no
grant arrived.  Because the rule rotates, the zeros are intermittent rather
than permanent.
"""

from __future__ import annotations

import numpy as np

from ..sim.failures import Direction, FailurePlan, LinkFailureModel, LinkRef
from ..workloads.generators import single_pair_stream
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    make_topology,
    run_negotiator,
)


def _epoch_ns(scale: ExperimentScale) -> float:
    from ..sim.config import EpochConfig, EpochTiming

    slots = make_topology(scale, "parallel").predefined_slots
    return EpochTiming.derive(EpochConfig(), 100.0, slots).epoch_ns


def pair_bandwidth_trace(
    scale: ExperimentScale, failed_ports: int, epochs: int = 150
):
    """Per-epoch Gbps of pair (0, 1) with ``failed_ports`` egress fibers down.

    Detection is disabled (huge lag) to observe the raw pre-detection
    behaviour the paper's Fig 19 shows.
    """
    epoch_ns = _epoch_ns(scale)
    stream = single_pair_stream(0, 1, total_bytes=10**9)
    plan = FailurePlan()
    for port in range(failed_ports):
        plan.add_failure(0.0, LinkRef(0, port, Direction.EGRESS))
    model = LinkFailureModel(
        scale.num_tors, scale.ports_per_tor, detect_epochs=10**6
    )
    artifacts = run_negotiator(
        scale, "parallel", stream,
        duration_ns=epochs * epoch_ns,
        failure_model=model,
        failure_plan=plan,
        bandwidth_bin_ns=epoch_ns,
        record_pair_bandwidth=True,
    )
    _times, gbps = artifacts.bandwidth.series_gbps(
        ("pair", 0, 1), until_ns=epochs * epoch_ns
    )
    return gbps[5:]  # skip pipeline warm-up


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 19 as occupancy statistics per failure level."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 19",
        title="single pair bandwidth occupation under egress link failures",
        headers=[
            "failed egress ports",
            "mean Gbps",
            "zero-bandwidth epochs",
            "active-epoch mean Gbps",
        ],
    )
    for failed in (0, 1, scale.ports_per_tor // 2):
        gbps = pair_bandwidth_trace(scale, failed)
        zeros = float(np.mean(np.asarray(gbps) == 0.0))
        active = [v for v in gbps if v > 0]
        result.add_row(
            failed,
            float(np.mean(gbps)),
            f"{zeros:.0%}",
            float(np.mean(active)) if active else 0.0,
        )
    result.notes.append(
        "paper: failures cut mean occupation to the surviving links' level; "
        "zero epochs appear when scheduling messages ride a dead fiber but "
        "are intermittent thanks to the rotating round-robin rule"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
