"""Fig 19 / Appendix A.4 — one pair's bandwidth through link failures.

A single source-destination pair streams continuously on the parallel
network while some of the source's egress fibers die.  Expected shape: the
per-epoch bandwidth occupation drops to the level of the remaining links,
and *some* epochs show zero occupation — the epochs whose rotating
round-robin rule put the pair's scheduling messages on a dead fiber, so no
grant arrived.  Because the rule rotates, the zeros are intermittent rather
than permanent.

Each failure level is declared as a :class:`~repro.sweep.spec.RunSpec`
using the ``single-pair`` scenario, an ``egress-ports`` failure plan with
detection disabled, and the ``pair_gbps_series`` collector.
"""

from __future__ import annotations

import numpy as np

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, make_topology


def _epoch_ns(scale: ExperimentScale) -> float:
    from ..sim.config import EpochConfig, EpochTiming

    slots = make_topology(scale, "parallel").predefined_slots
    return EpochTiming.derive(EpochConfig(), 100.0, slots).epoch_ns


def pair_failure_spec(
    scale: ExperimentScale, failed_ports: int, epochs: int = 150
) -> RunSpec:
    """Declare one Fig 19 run: pair (0, 1) with dead egress fibers at ToR 0.

    Detection is disabled (huge lag) to observe the raw pre-detection
    behaviour the paper's Fig 19 shows.
    """
    epoch_ns = _epoch_ns(scale)
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scenario="single-pair",
        scenario_params={"src": 0, "dst": 1, "total_bytes": 10**9},
        load=1.0,
        seed=scale.seed,
        duration_ns=epochs * epoch_ns,
        failure_params=(
            {
                "plan": "egress-ports",
                "tor": 0,
                "ports": failed_ports,
                "at_ns": 0.0,
                "detect_epochs": 10**6,
            }
            if failed_ports
            else {}
        ),
        instrument={"bandwidth_bin_ns": epoch_ns, "pair_bandwidth": True},
        collect=("pair_gbps_series",),
    )


def pair_bandwidth_trace(
    scale: ExperimentScale,
    failed_ports: int,
    epochs: int = 150,
    runner: SweepRunner | None = None,
):
    """Per-epoch Gbps of pair (0, 1) with ``failed_ports`` egress fibers down."""
    runner = runner if runner is not None else SweepRunner()
    spec = pair_failure_spec(scale, failed_ports, epochs=epochs)
    series = runner.run([spec])[spec.content_hash].extra["pair_gbps_series"]
    return series[5:]  # skip pipeline warm-up


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 19 as occupancy statistics per failure level."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 19",
        title="single pair bandwidth occupation under egress link failures",
        headers=[
            "failed egress ports",
            "mean Gbps",
            "zero-bandwidth epochs",
            "active-epoch mean Gbps",
        ],
    )
    # dict.fromkeys dedupes (micro's 2 ports make half-ports == 1 port)
    levels = tuple(dict.fromkeys((0, 1, scale.ports_per_tor // 2)))
    # Batch-warm the runner so the levels fan out; the per-level reads
    # below are pure cache hits through the shared helper.
    runner.run(pair_failure_spec(scale, failed) for failed in levels)
    for failed in levels:
        gbps = pair_bandwidth_trace(scale, failed, runner=runner)
        zeros = float(np.mean(np.asarray(gbps) == 0.0))
        active = [v for v in gbps if v > 0]
        result.add_row(
            failed,
            float(np.mean(gbps)),
            f"{zeros:.0%}",
            float(np.mean(active)) if active else 0.0,
        )
    result.notes.append(
        "paper: failures cut mean occupation to the surviving links' level; "
        "zero epochs appear when scheduling messages ride a dead fiber but "
        "are intermittent thanks to the rotating round-robin rule"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
