"""Fig 11 — the Fig 9 comparison with the 2x speedup removed.

Uplinks get the same bandwidth as the per-ToR host aggregate (1x).  Expected
shape: the same qualitative ordering as Fig 9 — NegotiaToR exploits the
constrained bandwidth better, and the baseline saturates earlier because
relaying doubles its traffic volume against a smaller capacity.
"""

from __future__ import annotations

from ..sweep import SweepRunner
from .common import ExperimentResult, ExperimentScale, current_scale
from .fig9_main_results import build_result, sweep


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 11."""
    scale = scale or current_scale()
    data = sweep(scale, without_speedup=True, runner=runner)
    return build_result(
        scale,
        data,
        experiment="Fig 11",
        title="99p mice FCT (ms) and goodput vs load, no speedup (1x uplinks)",
    )


if __name__ == "__main__":
    print(run().render())
