"""Fig 8 — NegotiaToR under longer reconfiguration delays, 100% load.

The guardband grows from 10 ns to 100 ns while the scheduled phase is
stretched to hold the reconfiguration-overhead share constant (section
3.6.4).  Expected shape: goodput stays high across the sweep; mice FCT grows
roughly linearly with the (now much longer) epoch, since the scheduling
delay is measured in epochs.
"""

from __future__ import annotations

from ..sim.config import EpochConfig, epoch_config_for_reconfiguration_delay
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_ms,
    make_topology,
    run_negotiator,
    sim_config,
    workload_for,
)

RECONFIGURATION_DELAYS_NS = (10.0, 20.0, 50.0, 100.0)


def run_point(
    scale: ExperimentScale, topology_kind: str, guard_ns: float
) -> tuple[float, float, float]:
    """(99p mice FCT ms, normalized goodput, epoch us) at one guardband."""
    predefined_slots = make_topology(scale, topology_kind).predefined_slots
    epoch = epoch_config_for_reconfiguration_delay(
        EpochConfig(), guard_ns, 100.0, predefined_slots
    )
    config = sim_config(scale, epoch=epoch)
    flows = workload_for(scale, load=1.0)
    artifacts = run_negotiator(scale, topology_kind, flows, config=config)
    summary = artifacts.summary
    sim = artifacts.simulator
    return (
        fct_ms(summary) if summary.mice_fct_p99_ns is not None else float("nan"),
        summary.goodput_normalized,
        sim.timing.epoch_ns / 1e3,
    )


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 8 (both panels)."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 8",
        title="goodput and 99p mice FCT vs reconfiguration delay at 100% load",
        headers=[
            "guard (ns)",
            "parallel FCT (ms)",
            "parallel goodput",
            "thin-clos FCT (ms)",
            "thin-clos goodput",
            "epoch (us)",
        ],
    )
    for guard_ns in RECONFIGURATION_DELAYS_NS:
        par_fct, par_gput, epoch_us = run_point(scale, "parallel", guard_ns)
        thin_fct, thin_gput, _ = run_point(scale, "thinclos", guard_ns)
        result.add_row(guard_ns, par_fct, par_gput, thin_fct, thin_gput, epoch_us)
    result.notes.append(
        "paper: goodput roughly flat; FCT grows with the stretched epoch"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
