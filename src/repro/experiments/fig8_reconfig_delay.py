"""Fig 8 — NegotiaToR under longer reconfiguration delays, 100% load.

The guardband grows from 10 ns to 100 ns while the scheduled phase is
stretched to hold the reconfiguration-overhead share constant (section
3.6.4).  Expected shape: goodput stays high across the sweep; mice FCT grows
roughly linearly with the (now much longer) epoch, since the scheduling
delay is measured in epochs.

Each (topology, guardband) point is declared as a
:class:`~repro.sweep.spec.RunSpec` whose ``epoch_params`` carry the
``reconfiguration_delay_ns`` knob (resolved per topology by the runner).
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

RECONFIGURATION_DELAYS_NS = (10.0, 20.0, 50.0, 100.0)
TOPOLOGIES = ("parallel", "thinclos")


def reconfig_spec(
    scale: ExperimentScale, topology_kind: str, guard_ns: float
) -> RunSpec:
    """Declare one Fig 8 run at one guardband length."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology=topology_kind,
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=1.0,
        seed=scale.seed,
        epoch_params={"reconfiguration_delay_ns": guard_ns},
    )


def run_point(
    scale: ExperimentScale,
    topology_kind: str,
    guard_ns: float,
    runner: SweepRunner | None = None,
) -> tuple[float, float, float]:
    """(99p mice FCT ms, normalized goodput, epoch us) at one guardband."""
    runner = runner if runner is not None else SweepRunner()
    spec = reconfig_spec(scale, topology_kind, guard_ns)
    summary = runner.run([spec])[spec.content_hash]
    return (
        fct_ms(summary) if summary.mice_fct_p99_ns is not None else float("nan"),
        summary.goodput_normalized,
        summary.epoch_ns / 1e3,
    )


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 8 (both panels)."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 8",
        title="goodput and 99p mice FCT vs reconfiguration delay at 100% load",
        headers=[
            "guard (ns)",
            "parallel FCT (ms)",
            "parallel goodput",
            "thin-clos FCT (ms)",
            "thin-clos goodput",
            "epoch (us)",
        ],
    )
    # Batch-warm the runner so the whole grid fans out; the per-point
    # reads below are pure cache hits through the shared helper.
    runner.run(
        reconfig_spec(scale, kind, guard_ns)
        for guard_ns in RECONFIGURATION_DELAYS_NS
        for kind in TOPOLOGIES
    )
    for guard_ns in RECONFIGURATION_DELAYS_NS:
        par_fct, par_gput, epoch_us = run_point(
            scale, "parallel", guard_ns, runner=runner
        )
        thin_fct, thin_gput, _ = run_point(
            scale, "thinclos", guard_ns, runner=runner
        )
        result.add_row(guard_ns, par_fct, par_gput, thin_fct, thin_gput, epoch_us)
    result.notes.append(
        "paper: goodput roughly flat; FCT grows with the stretched epoch"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
