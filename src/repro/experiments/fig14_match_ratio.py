"""Fig 14 / Appendix A.1 — per-epoch match ratio versus the analytic model.

At 100% load, the ratio of accepted grants to issued grants converges to
E[Y] = 1 - (1 - 1/n)^n where n is the number of ToRs competing for a port:
the whole fabric on the parallel network, one W-ToR group on thin-clos.  The
paper reports 0.634 at n=128 and 0.644 at n=16 and shows the simulated
series hugging 0.63.
"""

from __future__ import annotations

import numpy as np

from ..core.efficiency import expected_match_ratio
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    run_negotiator,
    workload_for,
)


def match_ratio_series(scale: ExperimentScale, topology_kind: str):
    """(per-epoch ratios, mean ratio, theoretical E[Y])."""
    flows = workload_for(scale, load=1.0)
    artifacts = run_negotiator(
        scale, topology_kind, flows, record_match_ratio=True
    )
    recorder = artifacts.match_recorder
    ratios = recorder.ratios()
    competitors = (
        scale.num_tors if topology_kind == "parallel" else scale.awgr_ports
    )
    return ratios, recorder.mean_ratio(), expected_match_ratio(competitors)


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 14."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 14",
        title="match ratio (accepts/grants) at 100% load vs theory",
        headers=[
            "topology",
            "n (competitors)",
            "measured mean",
            "theory E[Y]",
            "series p10",
            "series p90",
        ],
    )
    for kind in ("parallel", "thinclos"):
        ratios, mean_ratio, theory = match_ratio_series(scale, kind)
        finite = ratios[~np.isnan(ratios)]
        n = scale.num_tors if kind == "parallel" else scale.awgr_ports
        result.series[kind] = finite
        result.add_row(
            kind,
            n,
            mean_ratio,
            theory,
            float(np.percentile(finite, 10)),
            float(np.percentile(finite, 90)),
        )
    result.notes.append(
        "paper: thin-clos slightly above parallel (fewer competitors per "
        "port); both consistent with 1-(1-1/n)^n"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
