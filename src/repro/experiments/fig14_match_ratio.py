"""Fig 14 / Appendix A.1 — per-epoch match ratio versus the analytic model.

At 100% load, the ratio of accepted grants to issued grants converges to
E[Y] = 1 - (1 - 1/n)^n where n is the number of ToRs competing for a port:
the whole fabric on the parallel network, one W-ToR group on thin-clos.  The
paper reports 0.634 at n=128 and 0.644 at n=16 and shows the simulated
series hugging 0.63.

Each topology's run is declared as a :class:`~repro.sweep.spec.RunSpec`
with the ``match_ratio`` instrumentation and the ``match_ratio_series``
collector.
"""

from __future__ import annotations

import numpy as np

from ..core.efficiency import expected_match_ratio
from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale


def match_ratio_spec(scale: ExperimentScale, topology_kind: str) -> RunSpec:
    """Declare one Fig 14 run at 100% load."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology=topology_kind,
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=1.0,
        seed=scale.seed,
        instrument={"match_ratio": True},
        collect=("match_ratio_series",),
    )


def match_ratio_series(
    scale: ExperimentScale,
    topology_kind: str,
    runner: SweepRunner | None = None,
):
    """(per-epoch finite ratios, mean ratio, theoretical E[Y])."""
    runner = runner if runner is not None else SweepRunner()
    spec = match_ratio_spec(scale, topology_kind)
    series = runner.run([spec])[spec.content_hash].extra["match_ratio_series"]
    competitors = (
        scale.num_tors if topology_kind == "parallel" else scale.awgr_ports
    )
    return (
        np.array(series["ratios"]),
        series["mean"],
        expected_match_ratio(competitors),
    )


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 14."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 14",
        title="match ratio (accepts/grants) at 100% load vs theory",
        headers=[
            "topology",
            "n (competitors)",
            "measured mean",
            "theory E[Y]",
            "series p10",
            "series p90",
        ],
    )
    specs = {
        kind: match_ratio_spec(scale, kind)
        for kind in ("parallel", "thinclos")
    }
    summaries = runner.run(specs.values())
    for kind in ("parallel", "thinclos"):
        series = summaries[specs[kind].content_hash].extra["match_ratio_series"]
        finite = np.array(series["ratios"])
        n = scale.num_tors if kind == "parallel" else scale.awgr_ports
        result.series[kind] = finite
        result.add_row(
            kind,
            n,
            series["mean"],
            expected_match_ratio(n),
            float(np.percentile(finite, 10)),
            float(np.percentile(finite, 90)),
        )
    result.notes.append(
        "paper: thin-clos slightly above parallel (fewer competitors per "
        "port); both consistent with 1-(1-1/n)^n"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
