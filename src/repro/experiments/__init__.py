"""Per-table/figure experiment runners (see DESIGN.md's experiment index).

Each module regenerates one table or figure of the paper at a configurable
scale (``REPRO_SCALE`` in {tiny, small, paper}) and exposes::

    run(scale=None, ...) -> ExperimentResult

The benchmarks/ directory wraps these in pytest-benchmark entries; every
module is also directly runnable: ``python -m repro.experiments.<name>``.
"""

import importlib

from .common import (
    MICRO,
    PAPER,
    SCALES,
    SMALL,
    TINY,
    ExperimentResult,
    ExperimentScale,
    current_scale,
    make_topology,
    run_adaptive,
    run_negotiator,
    run_oblivious,
    run_relay,
    run_rotor,
    sim_config,
    workload_for,
)

EXPERIMENT_MODULES = {
    "table2": "table2_ablation",
    "table3": "table3_relay",
    "table4": "table4_informative",
    "table5": "table5_stateful",
    "table6": "table6_projector",
    "fig6": "fig6_fct_cdf",
    "fig7a": "fig7_incast",
    "fig7b": "fig7_alltoall",
    "fig8": "fig8_reconfig_delay",
    "fig9": "fig9_main_results",
    "fig9_adaptive_baseline": "fig9_adaptive_baseline",
    "fig9_rotor_baseline": "fig9_rotor_baseline",
    "fig10": "fig10_fault_tolerance",
    "fig11": "fig11_no_speedup",
    "fig12": "fig12_sensitivity",
    "fig13": "fig13_workloads",
    "fig14": "fig14_match_ratio",
    "fig15": "fig15_iterative",
    "fig17_18": "fig17_18_micro",
    "fig19": "fig19_failure_micro",
    "efficiency": "efficiency_model",
}


def load_experiment(name: str):
    """Import and return one experiment module by its short name."""
    try:
        module_name = EXPERIMENT_MODULES[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENT_MODULES)}"
        ) from None
    return importlib.import_module(f".{module_name}", __package__)


__all__ = [
    "EXPERIMENT_MODULES",
    "MICRO",
    "SCALES",
    "ExperimentResult",
    "ExperimentScale",
    "PAPER",
    "SMALL",
    "TINY",
    "current_scale",
    "load_experiment",
    "make_topology",
    "run_adaptive",
    "run_negotiator",
    "run_oblivious",
    "run_relay",
    "run_rotor",
    "sim_config",
    "workload_for",
]
