"""Fig 7a — incast finish time vs incast degree.

A set of ToRs synchronously sends one 1 KB flow each to the same destination.
Expected shape: NegotiaToR's finish time is flat in the degree — every pair
gets a piggyback slot every epoch, so the incast bypasses scheduling on both
topologies identically — while the traffic-oblivious scheme grows with the
degree (cells collide at intermediates and pay extra rotor cycles).
"""

from __future__ import annotations

import random

from ..sim.config import KB
from ..workloads.incast import incast_finish_time_ns, incast_workload
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    run_negotiator,
    run_oblivious,
)

INJECT_NS = 10_000.0
FLOW_BYTES = 1 * KB


def finish_time_us(
    scale: ExperimentScale, system: str, degree: int, seed: int = 7
) -> float:
    """Incast finish time in microseconds for one system."""
    flows = incast_workload(
        scale.num_tors,
        degree,
        dst=0,
        flow_bytes=FLOW_BYTES,
        at_ns=INJECT_NS,
        rng=random.Random(seed),
    )
    max_ns = 50_000_000.0
    if system == "oblivious":
        artifacts = run_oblivious(
            scale, "thinclos", flows, until_complete=True, max_ns=max_ns
        )
    else:
        artifacts = run_negotiator(
            scale, system, flows, until_complete=True, max_ns=max_ns
        )
    sim = artifacts.simulator
    if not sim.tracker.all_complete:
        raise RuntimeError(f"incast did not finish within {max_ns} ns")
    return incast_finish_time_ns(sim.tracker.flows, INJECT_NS) / 1e3


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 7a."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 7a",
        title="incast finish time (us) vs degree, 1 KB flows",
        headers=[
            "degree",
            "NegotiaToR parallel",
            "NegotiaToR thin-clos",
            "oblivious thin-clos",
        ],
    )
    degrees = [d for d in scale.incast_degrees if d < scale.num_tors]
    for degree in degrees:
        result.add_row(
            degree,
            finish_time_us(scale, "parallel", degree),
            finish_time_us(scale, "thinclos", degree),
            finish_time_us(scale, "oblivious", degree),
        )
    result.notes.append(
        "paper: NegotiaToR flat and identical on both topologies; "
        "oblivious grows with degree"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
