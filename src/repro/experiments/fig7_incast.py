"""Fig 7a — incast finish time vs incast degree.

A set of ToRs synchronously sends one 1 KB flow each to the same destination.
Expected shape: NegotiaToR's finish time is flat in the degree — every pair
gets a piggyback slot every epoch, so the incast bypasses scheduling on both
topologies identically — while the traffic-oblivious scheme grows with the
degree (cells collide at intermediates and pay extra rotor cycles).

Each (system, degree) point is declared as a :class:`~repro.sweep.spec.RunSpec`
with the ``incast_finish_ns`` collector and executed through the sweep
runner, so the whole figure parallelizes and caches.
"""

from __future__ import annotations

from ..sim.config import KB
from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale

INJECT_NS = 10_000.0
FLOW_BYTES = 1 * KB
SYSTEMS = ("parallel", "thinclos", "oblivious")


def incast_spec(
    scale: ExperimentScale, system: str, degree: int, seed: int = 7
) -> RunSpec:
    """Declare one incast run (the paper samples sources with seed 7)."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system),
        scenario="incast",
        scenario_params={
            "degree": degree,
            "dst": 0,
            "flow_bytes": FLOW_BYTES,
            "at_ns": INJECT_NS,
        },
        load=1.0,
        seed=seed,
        until_complete=True,
        max_ns=50_000_000.0,
        collect=("incast_finish_ns",),
    )


def finish_time_us(
    scale: ExperimentScale,
    system: str,
    degree: int,
    seed: int = 7,
    runner: SweepRunner | None = None,
) -> float:
    """Incast finish time in microseconds for one system."""
    runner = runner if runner is not None else SweepRunner()
    spec = incast_spec(scale, system, degree, seed=seed)
    summary = runner.run([spec])[spec.content_hash]
    return summary.extra["incast_finish_ns"] / 1e3


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 7a."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 7a",
        title="incast finish time (us) vs degree, 1 KB flows",
        headers=[
            "degree",
            "NegotiaToR parallel",
            "NegotiaToR thin-clos",
            "oblivious thin-clos",
        ],
    )
    degrees = [d for d in scale.incast_degrees if d < scale.num_tors]
    specs = {
        (system, degree): incast_spec(scale, system, degree)
        for degree in degrees
        for system in SYSTEMS
    }
    summaries = runner.run(specs.values())
    for degree in degrees:
        result.add_row(
            degree,
            *(
                summaries[specs[(system, degree)].content_hash].extra[
                    "incast_finish_ns"
                ]
                / 1e3
                for system in SYSTEMS
            ),
        )
    result.notes.append(
        "paper: NegotiaToR flat and identical on both topologies; "
        "oblivious grows with degree"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
