"""Fig 13 — performance under more workloads (same epoch settings).

(a) Hadoop mixed with random degree-20 incasts worth 2% of downlink
bandwidth: background mice FCT, average incast finish time, and goodput.
(b) The heavier DCTCP web-search workload.  (c) The lighter Google workload.

Expected shape: the advantages of Fig 9 persist without any parameter
retuning — incasts are absorbed by the piggyback path with minor impact on
background traffic, and both FCT and goodput ordering carry over to the
other traces.
"""

from __future__ import annotations

import random
from collections import defaultdict

import numpy as np

from ..sim.flows import FlowTracker
from ..workloads.incast import BACKGROUND_TAG, INCAST_TAG, mixed_incast_workload
from ..workloads.traces import by_name
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_ms,
    run_negotiator,
    run_oblivious,
    sim_config,
    workload_for,
)

MIX_SYSTEMS = (
    ("NT parallel", "parallel"),
    ("NT thin-clos", "thinclos"),
    ("oblivious", "oblivious"),
)


def mixed_workload(scale: ExperimentScale, load: float):
    distribution = by_name("hadoop")
    if scale.max_flow_bytes is not None:
        distribution = distribution.truncated(scale.max_flow_bytes)
    return mixed_incast_workload(
        distribution,
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        scale.duration_ns,
        random.Random(scale.seed + 7),
    )


def incast_mix_point(scale: ExperimentScale, system_kind: str, load: float):
    """(bg mice FCT ms, mean incast finish ms, goodput) for Fig 13a."""
    flows = mixed_workload(scale, load)
    if system_kind == "oblivious":
        artifacts = run_oblivious(scale, "thinclos", flows)
    else:
        artifacts = run_negotiator(scale, system_kind, flows)
    sim = artifacts.simulator
    tracker = sim.tracker

    background_mice = tracker.mice_flows(
        sim.config.mice_threshold_bytes, tag=BACKGROUND_TAG
    )
    bg_fct_ms = (
        FlowTracker.fct_percentile_ns(background_mice, 99) / 1e6
        if background_mice
        else None
    )

    # Average finish time over completed incast events (grouped by arrival).
    events = defaultdict(list)
    for flow in tracker.flows_with_tag(INCAST_TAG):
        events[flow.arrival_ns].append(flow)
    finish_times = [
        max(f.completed_ns for f in group) - at
        for at, group in events.items()
        if all(f.completed for f in group)
    ]
    incast_ms = float(np.mean(finish_times)) / 1e6 if finish_times else None
    return bg_fct_ms, incast_ms, artifacts.summary.goodput_normalized


def trace_point(scale: ExperimentScale, system_kind: str, trace: str, load: float):
    """(mice FCT ms, goodput) for Fig 13b/c."""
    flows = workload_for(scale, load, trace=trace)
    if system_kind == "oblivious":
        artifacts = run_oblivious(scale, "thinclos", flows)
    else:
        artifacts = run_negotiator(scale, system_kind, flows)
    return fct_ms(artifacts.summary), artifacts.summary.goodput_normalized


def run(scale: ExperimentScale | None = None, loads=None) -> ExperimentResult:
    """Regenerate Fig 13 (all three panels) at selected loads."""
    scale = scale or current_scale()
    loads = loads if loads is not None else (0.5, 1.0)
    result = ExperimentResult(
        experiment="Fig 13",
        title="FCT and goodput under more workloads",
        headers=[
            "panel",
            "system",
            "load",
            "mice FCT (ms)",
            "incast finish (ms)",
            "goodput",
        ],
    )
    for load in loads:
        for label, kind in MIX_SYSTEMS:
            bg_fct, incast_ms, goodput = incast_mix_point(scale, kind, load)
            result.add_row(
                "a: hadoop+incast",
                label,
                f"{load:.0%}",
                bg_fct if bg_fct is not None else "n/a",
                incast_ms if incast_ms is not None else "n/a",
                goodput,
            )
    for panel, trace in (("b: websearch", "websearch"), ("c: google", "google")):
        for load in loads:
            for label, kind in MIX_SYSTEMS:
                fct, goodput = trace_point(scale, kind, trace, load)
                result.add_row(
                    panel,
                    label,
                    f"{load:.0%}",
                    fct if fct is not None else "n/a",
                    "",
                    goodput,
                )
    result.notes.append(
        "paper: same ordering as Fig 9 on every workload; incasts absorbed "
        "with minor background impact"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
