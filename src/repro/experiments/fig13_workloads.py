"""Fig 13 — performance under more workloads (same epoch settings).

(a) Hadoop mixed with random degree-20 incasts worth 2% of downlink
bandwidth: background mice FCT, average incast finish time, and goodput.
(b) The heavier DCTCP web-search workload.  (c) The lighter Google workload.

Expected shape: the advantages of Fig 9 persist without any parameter
retuning — incasts are absorbed by the piggyback path with minor impact on
background traffic, and both FCT and goodput ordering carry over to the
other traces.

Panel (a) declares ``mixed-incast`` scenario specs with the
``incast_mix_stats`` collector; panels (b)/(c) reuse the ``poisson``
scenario with the other traces.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_ms

MIX_SYSTEMS = (
    ("NT parallel", "parallel"),
    ("NT thin-clos", "thinclos"),
    ("oblivious", "oblivious"),
)


def mix_spec(scale: ExperimentScale, system_kind: str, load: float) -> RunSpec:
    """Declare one Fig 13a run (Hadoop background plus incasts)."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system_kind),
        scenario="mixed-incast",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed + 7,
        collect=("incast_mix_stats",),
    )


def trace_spec(
    scale: ExperimentScale, system_kind: str, trace: str, load: float
) -> RunSpec:
    """Declare one Fig 13b/c run (web-search or Google trace)."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system_kind),
        scenario="poisson",
        scenario_params={"trace": trace},
        load=load,
        seed=scale.seed,
    )


def incast_mix_point(
    scale: ExperimentScale,
    system_kind: str,
    load: float,
    runner: SweepRunner | None = None,
):
    """(bg mice FCT ms, mean incast finish ms, goodput) for Fig 13a."""
    runner = runner if runner is not None else SweepRunner()
    spec = mix_spec(scale, system_kind, load)
    summary = runner.run([spec])[spec.content_hash]
    stats = summary.extra["incast_mix_stats"]
    bg = stats["bg_mice_fct_p99_ns"]
    incast = stats["incast_mean_finish_ns"]
    return (
        bg / 1e6 if bg is not None else None,
        incast / 1e6 if incast is not None else None,
        summary.goodput_normalized,
    )


def trace_point(
    scale: ExperimentScale,
    system_kind: str,
    trace: str,
    load: float,
    runner: SweepRunner | None = None,
):
    """(mice FCT ms, goodput) for Fig 13b/c."""
    runner = runner if runner is not None else SweepRunner()
    spec = trace_spec(scale, system_kind, trace, load)
    summary = runner.run([spec])[spec.content_hash]
    return fct_ms(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 13 (all three panels) at selected loads."""
    scale = scale or current_scale()
    loads = loads if loads is not None else (0.5, 1.0)
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 13",
        title="FCT and goodput under more workloads",
        headers=[
            "panel",
            "system",
            "load",
            "mice FCT (ms)",
            "incast finish (ms)",
            "goodput",
        ],
    )
    # Batch-warm the runner so all three panels fan out together; the
    # per-point reads below are pure cache hits through the shared helpers.
    runner.run(
        [
            mix_spec(scale, kind, load)
            for load in loads
            for _label, kind in MIX_SYSTEMS
        ]
        + [
            trace_spec(scale, kind, trace, load)
            for trace in ("websearch", "google")
            for load in loads
            for _label, kind in MIX_SYSTEMS
        ]
    )
    for load in loads:
        for label, kind in MIX_SYSTEMS:
            bg_ms, incast_ms, gput = incast_mix_point(
                scale, kind, load, runner=runner
            )
            result.add_row(
                "a: hadoop+incast",
                label,
                f"{load:.0%}",
                bg_ms if bg_ms is not None else "n/a",
                incast_ms if incast_ms is not None else "n/a",
                gput,
            )
    for panel, trace in (("b: websearch", "websearch"), ("c: google", "google")):
        for load in loads:
            for label, kind in MIX_SYSTEMS:
                fct, gput = trace_point(
                    scale, kind, trace, load, runner=runner
                )
                result.add_row(
                    panel,
                    label,
                    f"{load:.0%}",
                    fct if fct is not None else "n/a",
                    "",
                    gput,
                )
    result.notes.append(
        "paper: same ordering as Fig 9 on every workload; incasts absorbed "
        "with minor background impact"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
