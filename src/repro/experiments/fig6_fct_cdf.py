"""Fig 6 — CDF of mice-flow FCT at 100% load (PB and PQ enabled).

Expected shape: the two topologies overlap for small FCTs (identical
predefined phases) and over 80% of mice flows finish within two epochs —
they bypassed the scheduling delay entirely.
"""

from __future__ import annotations

import numpy as np

from ..sim.flows import FlowTracker
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    run_negotiator,
    workload_for,
)


def mice_fct_cdf(scale: ExperimentScale, topology_kind: str):
    """(FCT values in us, cumulative fractions, epoch length in us)."""
    flows = workload_for(scale, load=1.0)
    artifacts = run_negotiator(scale, topology_kind, flows)
    sim = artifacts.simulator
    mice = sim.tracker.mice_flows(sim.config.mice_threshold_bytes)
    values_ns, fractions = FlowTracker.fct_cdf(mice)
    return values_ns / 1e3, fractions, sim.timing.epoch_ns / 1e3


def fraction_within_epochs(values_us, fractions, epoch_us, epochs: float) -> float:
    """Fraction of mice flows finishing within ``epochs`` epochs."""
    cutoff = epochs * epoch_us
    index = np.searchsorted(values_us, cutoff, side="right")
    if index == 0:
        return 0.0
    return float(fractions[index - 1])


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Fig 6 as quantiles plus the 2-epoch bypass fraction."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 6",
        title="CDF of mice flow FCT at 100% load",
        headers=[
            "topology",
            "p50 (us)",
            "p80 (us)",
            "p99 (us)",
            "within 1 epoch",
            "within 2 epochs",
        ],
    )
    for kind in ("parallel", "thinclos"):
        values, fractions, epoch_us = mice_fct_cdf(scale, kind)
        result.series[kind] = (values, fractions)
        result.add_row(
            kind,
            float(np.interp(0.50, fractions, values)),
            float(np.interp(0.80, fractions, values)),
            float(np.interp(0.99, fractions, values)),
            fraction_within_epochs(values, fractions, epoch_us, 1.0),
            fraction_within_epochs(values, fractions, epoch_us, 2.0),
        )
    result.notes.append(
        "paper: >80% of mice flows finish within 2 epochs on both topologies"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
