"""Fig 6 — CDF of mice-flow FCT at 100% load (PB and PQ enabled).

Expected shape: the two topologies overlap for small FCTs (identical
predefined phases) and over 80% of mice flows finish within two epochs —
they bypassed the scheduling delay entirely.

The two runs are declared as :class:`~repro.sweep.spec.RunSpec`\\ s with the
``mice_cdf`` collector, so they parallelize under ``repro run --jobs`` and
cache in a sweep store like any other sweep point.
"""

from __future__ import annotations

import numpy as np

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale

TOPOLOGIES = ("parallel", "thinclos")


def cdf_specs(scale: ExperimentScale) -> dict[str, RunSpec]:
    """Declare the Fig 6 runs: one per topology at 100% load."""
    return {
        kind: RunSpec(
            **scale_spec_fields(scale),
            topology=kind,
            scenario="poisson",
            scenario_params={"trace": "hadoop"},
            load=1.0,
            seed=scale.seed,
            collect=("mice_cdf",),
        )
        for kind in TOPOLOGIES
    }


def _unpack_cdf(summary) -> tuple[np.ndarray, np.ndarray, float]:
    cdf = summary.extra["mice_cdf"]
    return (
        np.array(cdf["values_us"]),
        np.array(cdf["fractions"]),
        cdf["epoch_us"],
    )


def mice_fct_cdf(
    scale: ExperimentScale,
    topology_kind: str,
    runner: SweepRunner | None = None,
):
    """(FCT values in us, cumulative fractions, epoch length in us)."""
    runner = runner if runner is not None else SweepRunner()
    spec = cdf_specs(scale)[topology_kind]
    return _unpack_cdf(runner.run([spec])[spec.content_hash])


def fraction_within_epochs(values_us, fractions, epoch_us, epochs: float) -> float:
    """Fraction of mice flows finishing within ``epochs`` epochs."""
    cutoff = epochs * epoch_us
    index = np.searchsorted(values_us, cutoff, side="right")
    if index == 0:
        return 0.0
    return float(fractions[index - 1])


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Fig 6 as quantiles plus the 2-epoch bypass fraction."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 6",
        title="CDF of mice flow FCT at 100% load",
        headers=[
            "topology",
            "p50 (us)",
            "p80 (us)",
            "p99 (us)",
            "within 1 epoch",
            "within 2 epochs",
        ],
    )
    specs = cdf_specs(scale)
    summaries = runner.run(specs.values())
    for kind in TOPOLOGIES:
        values, fractions, epoch_us = _unpack_cdf(
            summaries[specs[kind].content_hash]
        )
        result.series[kind] = (values, fractions)
        result.add_row(
            kind,
            float(np.interp(0.50, fractions, values)),
            float(np.interp(0.80, fractions, values)),
            float(np.interp(0.99, fractions, values)),
            fraction_within_epochs(values, fractions, epoch_us, 1.0),
            fraction_within_epochs(values, fractions, epoch_us, 2.0),
        )
    result.notes.append(
        "paper: >80% of mice flows finish within 2 epochs on both topologies"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
