"""Figs 17 & 18 / Appendix A.3 — receiver-bandwidth micro-observations.

Fig 17: a degree-15 incast — the traffic-oblivious destination stays silent
while cells detour via intermediates; NegotiaToR's destination starts
receiving piggybacked data almost immediately, on both topologies alike.

Fig 18: a 30 KB all-to-all — the oblivious receiver's bandwidth is split
between traffic destined to it and relayed traffic it must forward (the
light-grey dots of the paper's figure); every byte NegotiaToR's receiver
gets is wanted.
"""

from __future__ import annotations

import random

from ..sim.config import KB
from ..workloads.incast import all_to_all_workload, incast_workload
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    run_negotiator,
    run_oblivious,
)

INJECT_NS = 10_000.0
BIN_NS = 500.0


def incast_observation(scale: ExperimentScale, system: str, degree: int = 15):
    """(first byte arrival us after injection, rx series) for Fig 17."""
    degree = min(degree, scale.num_tors - 1)
    flows = incast_workload(
        scale.num_tors, degree, dst=0, flow_bytes=1 * KB,
        at_ns=INJECT_NS, rng=random.Random(3),
    )
    runner = run_oblivious if system == "oblivious" else run_negotiator
    kind = "thinclos" if system in ("oblivious", "thinclos") else "parallel"
    artifacts = runner(
        scale, kind, flows,
        until_complete=True, max_ns=50_000_000.0, bandwidth_bin_ns=BIN_NS,
    )
    times, gbps = artifacts.bandwidth.series_gbps(("rx", 0))
    first_byte_ns = None
    for t, v in zip(times, gbps):
        if v > 0 and t >= INJECT_NS - BIN_NS:
            first_byte_ns = t
            break
    return (first_byte_ns - INJECT_NS) / 1e3, (times, gbps)


def alltoall_observation(scale: ExperimentScale, system: str, flow_kb: int = 30):
    """(wanted Gbps, relayed Gbps at the receiver) for Fig 18."""
    flows = all_to_all_workload(
        scale.num_tors, flow_bytes=flow_kb * KB, at_ns=INJECT_NS
    )
    runner = run_oblivious if system == "oblivious" else run_negotiator
    kind = "thinclos" if system in ("oblivious", "thinclos") else "parallel"
    artifacts = runner(
        scale, kind, flows,
        until_complete=True, max_ns=200_000_000.0, bandwidth_bin_ns=BIN_NS,
    )
    sim = artifacts.simulator
    finish_ns = max(f.completed_ns for f in sim.tracker.flows)
    duration = finish_ns - INJECT_NS
    dst = 0
    wanted = artifacts.bandwidth.total_bytes(("rx", dst)) * 8.0 / duration
    relayed = artifacts.bandwidth.total_bytes(("relay", dst)) * 8.0 / duration
    return wanted, relayed


def run(scale: ExperimentScale | None = None) -> ExperimentResult:
    """Regenerate Figs 17 and 18 as summary statistics."""
    scale = scale or current_scale()
    result = ExperimentResult(
        experiment="Fig 17/18",
        title="receiver bandwidth micro-observations",
        headers=[
            "panel",
            "system",
            "first byte (us)",
            "wanted rx (Gbps)",
            "relayed rx (Gbps)",
        ],
    )
    for system in ("parallel", "thinclos", "oblivious"):
        first_byte_us, _series = incast_observation(scale, system)
        result.add_row("17: incast deg 15", system, first_byte_us, "", "")
    for system in ("parallel", "thinclos", "oblivious"):
        wanted, relayed = alltoall_observation(scale, system)
        result.add_row("18: all-to-all 30KB", system, "", wanted, relayed)
    result.notes.append(
        "paper: NegotiaToR's incast destination hears data within the first "
        "epoch on both topologies; the oblivious receiver wastes bandwidth "
        "on relayed (unwanted) traffic under all-to-all"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
