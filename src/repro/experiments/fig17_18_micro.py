"""Figs 17 & 18 / Appendix A.3 — receiver-bandwidth micro-observations.

Fig 17: a degree-15 incast — the traffic-oblivious destination stays silent
while cells detour via intermediates; NegotiaToR's destination starts
receiving piggybacked data almost immediately, on both topologies alike.

Fig 18: a 30 KB all-to-all — the oblivious receiver's bandwidth is split
between traffic destined to it and relayed traffic it must forward (the
light-grey dots of the paper's figure); every byte NegotiaToR's receiver
gets is wanted.

Each observation is declared as a :class:`~repro.sweep.spec.RunSpec` with a
binned :class:`~repro.sim.metrics.BandwidthRecorder` attached through
``instrument`` and read by the ``first_rx_byte_ns`` /
``rx_relay_split_gbps`` collectors.
"""

from __future__ import annotations

from ..sim.config import KB
from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale

INJECT_NS = 10_000.0
BIN_NS = 500.0
SYSTEMS = ("parallel", "thinclos", "oblivious")


def incast_spec(
    scale: ExperimentScale, system: str, degree: int = 15
) -> RunSpec:
    """Declare one Fig 17 incast observation (the paper uses seed 3)."""
    degree = min(degree, scale.num_tors - 1)
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system),
        scenario="incast",
        scenario_params={
            "degree": degree,
            "dst": 0,
            "flow_bytes": 1 * KB,
            "at_ns": INJECT_NS,
        },
        load=1.0,
        seed=3,
        until_complete=True,
        max_ns=50_000_000.0,
        instrument={"bandwidth_bin_ns": BIN_NS},
        collect=("first_rx_byte_ns",),
    )


def alltoall_spec(
    scale: ExperimentScale, system: str, flow_kb: int = 30
) -> RunSpec:
    """Declare one Fig 18 all-to-all observation."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields(system),
        scenario="alltoall",
        scenario_params={"flow_bytes": flow_kb * KB, "at_ns": INJECT_NS},
        load=1.0,
        seed=scale.seed,
        until_complete=True,
        max_ns=200_000_000.0,
        instrument={"bandwidth_bin_ns": BIN_NS},
        collect=("rx_relay_split_gbps",),
    )


def incast_observation(
    scale: ExperimentScale,
    system: str,
    degree: int = 15,
    runner: SweepRunner | None = None,
) -> float:
    """First byte arrival (us after injection) at the incast destination."""
    runner = runner if runner is not None else SweepRunner()
    spec = incast_spec(scale, system, degree)
    summary = runner.run([spec])[spec.content_hash]
    return (summary.extra["first_rx_byte_ns"] - INJECT_NS) / 1e3


def alltoall_observation(
    scale: ExperimentScale,
    system: str,
    flow_kb: int = 30,
    runner: SweepRunner | None = None,
):
    """(wanted Gbps, relayed Gbps at the receiver) for Fig 18."""
    runner = runner if runner is not None else SweepRunner()
    spec = alltoall_spec(scale, system, flow_kb)
    split = runner.run([spec])[spec.content_hash].extra["rx_relay_split_gbps"]
    return split["wanted"], split["relayed"]


def run(
    scale: ExperimentScale | None = None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Figs 17 and 18 as summary statistics."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 17/18",
        title="receiver bandwidth micro-observations",
        headers=[
            "panel",
            "system",
            "first byte (us)",
            "wanted rx (Gbps)",
            "relayed rx (Gbps)",
        ],
    )
    # Batch-warm the runner so both panels fan out together; the per-point
    # reads below are pure cache hits through the shared helpers.
    runner.run(
        [incast_spec(scale, s) for s in SYSTEMS]
        + [alltoall_spec(scale, s) for s in SYSTEMS]
    )
    for system in SYSTEMS:
        first_byte_us = incast_observation(scale, system, runner=runner)
        result.add_row("17: incast deg 15", system, first_byte_us, "", "")
    for system in SYSTEMS:
        wanted, relayed = alltoall_observation(scale, system, runner=runner)
        result.add_row("18: all-to-all 30KB", system, "", wanted, relayed)
    result.notes.append(
        "paper: NegotiaToR's incast destination hears data within the first "
        "epoch on both topologies; the oblivious receiver wastes bandwidth "
        "on relayed (unwanted) traffic under all-to-all"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
