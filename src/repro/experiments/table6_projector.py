"""Table 6 / Appendix A.2.5 — ProjecToR's scheduler on NegotiaToR's fabric.

ProjecToR requests at per-port granularity with waiting-delay priorities.
Expected shape: despite the extra complexity (delay logging, per-port
bundles), it loses to NegotiaToR Matching in both FCT and goodput — pinning
a request to a port before the negotiation forfeits the port flexibility
that lets binary ToR-level requests fill every port.

Each (variant, load) point is declared as a
:class:`~repro.sweep.spec.RunSpec` naming the scheduler variant.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_us

PAPER_REFERENCE = {
    0.10: ((15.3, 0.091), (16.3, 0.091)),
    0.25: ((15.4, 0.226), (21.6, 0.226)),
    0.50: ((15.6, 0.452), (40.8, 0.450)),
    0.75: ((16.3, 0.675), (52.2, 0.661)),
    1.00: ((22.0, 0.890), (54.4, 0.847)),
}

VARIANTS = ("base", "projector")


def variant_spec(
    scale: ExperimentScale, load: float, variant: str
) -> RunSpec:
    """Declare one base-or-projector run (parallel network)."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scheduler=variant,
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
    )


def run_point(
    scale: ExperimentScale,
    load: float,
    variant: str,
    runner: SweepRunner | None = None,
):
    """(99p mice FCT us, goodput) for base or projector scheduling."""
    runner = runner if runner is not None else SweepRunner()
    spec = variant_spec(scale, load, variant)
    summary = runner.run([spec])[spec.content_hash]
    return fct_us(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Table 6."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Table 6",
        title="ProjecToR-style scheduling: 99p mice FCT (us) / goodput",
        headers=[
            "load",
            "base FCT",
            "base gput",
            "projector FCT",
            "projector gput",
            "paper base",
            "paper projector",
        ],
    )
    specs = {
        (variant, load): variant_spec(scale, load, variant)
        for load in loads
        for variant in VARIANTS
    }
    summaries = runner.run(specs.values())
    for load in loads:
        base = summaries[specs[("base", load)].content_hash]
        projector = summaries[specs[("projector", load)].content_hash]
        base_fct, proj_fct = fct_us(base), fct_us(projector)
        reference = PAPER_REFERENCE.get(round(load, 2))
        result.add_row(
            f"{load:.0%}",
            base_fct if base_fct is not None else "n/a",
            base.goodput_normalized,
            proj_fct if proj_fct is not None else "n/a",
            projector.goodput_normalized,
            f"{reference[0][0]}/{reference[0][1]:.1%}" if reference else "-",
            f"{reference[1][0]}/{reference[1][1]:.1%}" if reference else "-",
        )
    result.notes.append(
        "paper: ProjecToR-style scheduling is worse in both FCT and goodput, "
        "especially at heavy load"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
