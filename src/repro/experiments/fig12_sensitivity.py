"""Fig 12 — sensitivity to the epoch parameters (parallel network, Hadoop).

(a) Predefined-phase timeslot duration 20-120 ns (including the 10 ns
guardband): the knob sets how much data can be piggybacked per pair per
epoch.  Too small starves the scheduling-delay bypass; too large lengthens
the epoch.  (b) Scheduled-phase length 10-500 timeslots: short phases
schedule often but waste a larger guardband share; long phases increase
scheduling delay and risk outdated matchings.

Expected shape: a shallow optimum around the defaults (60 ns / 30 slots) —
the paper's point is that performance is robust near the chosen values.

Each panel point is declared as a :class:`~repro.sweep.spec.RunSpec` whose
``epoch_params`` carry the overridden EpochConfig field.
"""

from __future__ import annotations

from ..sim.config import EpochConfig, transmit_ns
from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_us

PREDEFINED_SLOT_NS = (20.0, 30.0, 60.0, 90.0, 120.0)
SCHEDULED_SLOTS = (10, 30, 50, 100, 500)


def payload_for_predefined_slot(slot_ns: float) -> int:
    """The piggyback payload making a predefined slot last ``slot_ns``.

    The slot is guard + message + piggyback payload at 100 Gbps; we resize
    the payload to hit the requested duration (the paper varies exactly
    this).
    """
    base = EpochConfig()
    budget_ns = slot_ns - base.guard_ns - transmit_ns(
        base.scheduling_message_bytes, 100.0
    )
    payload = int(budget_ns * 100.0 / 8.0)
    if payload <= 0:
        raise ValueError(f"slot of {slot_ns} ns cannot fit any payload")
    return payload


def _point_spec(scale: ExperimentScale, load: float, **epoch_params) -> RunSpec:
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
        epoch_params=epoch_params,
    )


def sweep_predefined_slot(
    scale: ExperimentScale, load: float, runner: SweepRunner | None = None
):
    """FCT (us) per predefined slot duration at one load."""
    runner = runner if runner is not None else SweepRunner()
    specs = {
        slot_ns: _point_spec(
            scale,
            load,
            piggyback_payload_bytes=payload_for_predefined_slot(slot_ns),
        )
        for slot_ns in PREDEFINED_SLOT_NS
    }
    summaries = runner.run(specs.values())
    return [
        (slot_ns, fct_us(summaries[spec.content_hash]))
        for slot_ns, spec in specs.items()
    ]


def sweep_scheduled_slots(
    scale: ExperimentScale, load: float, runner: SweepRunner | None = None
):
    """(FCT us, goodput) per scheduled-phase length at one load."""
    runner = runner if runner is not None else SweepRunner()
    specs = {
        slots: _point_spec(scale, load, scheduled_slots=slots)
        for slots in SCHEDULED_SLOTS
    }
    summaries = runner.run(specs.values())
    return [
        (
            slots,
            fct_us(summaries[spec.content_hash]),
            summaries[spec.content_hash].goodput_normalized,
        )
        for slots, spec in specs.items()
    ]


def run(
    scale: ExperimentScale | None = None,
    load: float = 1.0,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate both panels of Fig 12 at one load (default 100%)."""
    scale = scale or current_scale()
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Fig 12",
        title=f"epoch parameter sensitivity at {load:.0%} load (parallel)",
        headers=["panel", "setting", "99p mice FCT (us)", "goodput"],
    )
    for slot_ns, fct in sweep_predefined_slot(scale, load, runner=runner):
        marker = " <- default" if slot_ns == 60.0 else ""
        result.add_row("a: predefined slot", f"{slot_ns:g} ns{marker}", fct, "")
    for slots, fct, goodput in sweep_scheduled_slots(scale, load, runner=runner):
        marker = " <- default" if slots == 30 else ""
        result.add_row("b: scheduled slots", f"{slots}{marker}", fct, goodput)
    result.notes.append(
        "paper: shallow optimum near the defaults; very long scheduled "
        "phases hurt FCT, very short ones hurt goodput"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
