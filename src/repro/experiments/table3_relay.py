"""Table 3 / Appendix A.2.2 — traffic-aware selective relay on thin-clos.

Base NegotiaToR versus the two-hop selective relay across loads.  Expected
shape: FCT barely moves (only lowest-band elephants are relayed) and goodput
improves marginally at best — at light loads the 2x speedup already delivers
near-optimal goodput, at heavy loads there are no idle links to exploit.
That null result is the paper's argument for "no data relay".

Each point is declared as a :class:`~repro.sweep.spec.RunSpec`; the relay
rows use the ``relay`` system (the
:class:`~repro.core.relay.SelectiveRelaySimulator` on thin-clos).
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields, system_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_us

PAPER_REFERENCE = {
    # load -> (base FCT us / goodput, relay FCT us / goodput)
    0.10: ((13.2, 0.091), (13.4, 0.091)),
    0.25: ((13.4, 0.225), (14.0, 0.226)),
    0.50: ((14.2, 0.446), (16.8, 0.451)),
    0.75: ((17.3, 0.660), (19.2, 0.669)),
    1.00: ((23.8, 0.856), (24.2, 0.868)),
}


def relay_spec(scale: ExperimentScale, load: float, relay: bool) -> RunSpec:
    """Declare one thin-clos run with or without selective relay."""
    return RunSpec(
        **scale_spec_fields(scale),
        **system_spec_fields("relay" if relay else "thinclos"),
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
    )


def run_point(
    scale: ExperimentScale,
    load: float,
    relay: bool,
    runner: SweepRunner | None = None,
):
    """(99p mice FCT us, goodput) on thin-clos with/without relay."""
    runner = runner if runner is not None else SweepRunner()
    spec = relay_spec(scale, load, relay)
    summary = runner.run([spec])[spec.content_hash]
    return fct_us(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Table 3."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Table 3",
        title="selective relay on thin-clos: 99p mice FCT (us) / goodput",
        headers=[
            "load",
            "base FCT",
            "base goodput",
            "relay FCT",
            "relay goodput",
            "paper base",
            "paper relay",
        ],
    )
    specs = {
        (relay, load): relay_spec(scale, load, relay)
        for load in loads
        for relay in (False, True)
    }
    summaries = runner.run(specs.values())
    for load in loads:
        base = summaries[specs[(False, load)].content_hash]
        relay = summaries[specs[(True, load)].content_hash]
        base_fct, relay_fct = fct_us(base), fct_us(relay)
        reference = PAPER_REFERENCE.get(round(load, 2))
        result.add_row(
            f"{load:.0%}",
            base_fct if base_fct is not None else "n/a",
            base.goodput_normalized,
            relay_fct if relay_fct is not None else "n/a",
            relay.goodput_normalized,
            f"{reference[0][0]}/{reference[0][1]:.1%}" if reference else "-",
            f"{reference[1][0]}/{reference[1][1]:.1%}" if reference else "-",
        )
    result.notes.append(
        "paper: relay changes FCT and goodput only marginally at every load"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
