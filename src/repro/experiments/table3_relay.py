"""Table 3 / Appendix A.2.2 — traffic-aware selective relay on thin-clos.

Base NegotiaToR versus the two-hop selective relay across loads.  Expected
shape: FCT barely moves (only lowest-band elephants are relayed) and goodput
improves marginally at best — at light loads the 2x speedup already delivers
near-optimal goodput, at heavy loads there are no idle links to exploit.
That null result is the paper's argument for "no data relay".
"""

from __future__ import annotations

from ..core.relay import RelayPolicy, SelectiveRelaySimulator
from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_us,
    make_topology,
    sim_config,
    workload_for,
)

PAPER_REFERENCE = {
    # load -> (base FCT us / goodput, relay FCT us / goodput)
    0.10: ((13.2, 0.091), (13.4, 0.091)),
    0.25: ((13.4, 0.225), (14.0, 0.226)),
    0.50: ((14.2, 0.446), (16.8, 0.451)),
    0.75: ((17.3, 0.660), (19.2, 0.669)),
    1.00: ((23.8, 0.856), (24.2, 0.868)),
}


def run_point(scale: ExperimentScale, load: float, relay: bool):
    """(99p mice FCT us, goodput) on thin-clos with/without relay."""
    config = sim_config(scale)
    topology = make_topology(scale, "thinclos")
    flows = workload_for(scale, load)
    if relay:
        sim = SelectiveRelaySimulator(
            config, topology, flows, relay_policy=RelayPolicy()
        )
    else:
        from ..sim.network import NegotiaToRSimulator

        sim = NegotiaToRSimulator(config, topology, flows)
    sim.run(scale.duration_ns)
    summary = sim.summary(scale.duration_ns)
    return fct_us(summary), summary.goodput_normalized


def run(scale: ExperimentScale | None = None, loads=None) -> ExperimentResult:
    """Regenerate Table 3."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    result = ExperimentResult(
        experiment="Table 3",
        title="selective relay on thin-clos: 99p mice FCT (us) / goodput",
        headers=[
            "load",
            "base FCT",
            "base goodput",
            "relay FCT",
            "relay goodput",
            "paper base",
            "paper relay",
        ],
    )
    for load in loads:
        base_fct, base_gput = run_point(scale, load, relay=False)
        relay_fct, relay_gput = run_point(scale, load, relay=True)
        reference = PAPER_REFERENCE.get(round(load, 2))
        result.add_row(
            f"{load:.0%}",
            base_fct if base_fct is not None else "n/a",
            base_gput,
            relay_fct if relay_fct is not None else "n/a",
            relay_gput,
            f"{reference[0][0]}/{reference[0][1]:.1%}" if reference else "-",
            f"{reference[1][0]}/{reference[1][1]:.1%}" if reference else "-",
        )
    result.notes.append(
        "paper: relay changes FCT and goodput only marginally at every load"
    )
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
