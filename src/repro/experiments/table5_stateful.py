"""Table 5 / Appendix A.2.4 — stateful versus stateless scheduling.

The stateful variant tracks per-source demand matrices at destinations to
avoid over-scheduling pairs whose data already left.  Expected shape: the
difference is negligible at every load — duplicate grants only waste links
that nothing else wanted (light load) or that are immediately refilled by
continuously arriving data (heavy load).  That is the paper's argument for
stateless scheduling.

Each (variant, load) point is declared as a
:class:`~repro.sweep.spec.RunSpec` naming the scheduler variant.
"""

from __future__ import annotations

from ..sweep import RunSpec, SweepRunner, scale_spec_fields
from .common import ExperimentResult, ExperimentScale, current_scale, fct_us

PAPER_REFERENCE = {
    0.10: ((15.3, 0.091), (13.5, 0.091)),
    0.25: ((15.4, 0.226), (13.7, 0.226)),
    0.50: ((15.6, 0.452), (13.9, 0.452)),
    0.75: ((16.3, 0.675), (16.3, 0.675)),
    1.00: ((22.0, 0.890), (23.2, 0.888)),
}


def variant_spec(
    scale: ExperimentScale, load: float, stateful: bool
) -> RunSpec:
    """Declare one run with or without demand matrices (parallel network)."""
    return RunSpec(
        **scale_spec_fields(scale),
        topology="parallel",
        scheduler="stateful" if stateful else "base",
        scenario="poisson",
        scenario_params={"trace": "hadoop"},
        load=load,
        seed=scale.seed,
    )


def run_point(
    scale: ExperimentScale,
    load: float,
    stateful: bool,
    runner: SweepRunner | None = None,
):
    """(99p mice FCT us, goodput) with or without demand matrices."""
    runner = runner if runner is not None else SweepRunner()
    spec = variant_spec(scale, load, stateful)
    summary = runner.run([spec])[spec.content_hash]
    return fct_us(summary), summary.goodput_normalized


def run(
    scale: ExperimentScale | None = None,
    loads=None,
    runner: SweepRunner | None = None,
) -> ExperimentResult:
    """Regenerate Table 5."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    runner = runner if runner is not None else SweepRunner()
    result = ExperimentResult(
        experiment="Table 5",
        title="stateful vs stateless scheduling: 99p mice FCT (us) / goodput",
        headers=[
            "load",
            "base FCT",
            "base gput",
            "stateful FCT",
            "stateful gput",
            "paper base",
            "paper stateful",
        ],
    )
    specs = {
        (stateful, load): variant_spec(scale, load, stateful)
        for load in loads
        for stateful in (False, True)
    }
    summaries = runner.run(specs.values())
    for load in loads:
        base = summaries[specs[(False, load)].content_hash]
        stateful = summaries[specs[(True, load)].content_hash]
        base_fct, stateful_fct = fct_us(base), fct_us(stateful)
        reference = PAPER_REFERENCE.get(round(load, 2))
        result.add_row(
            f"{load:.0%}",
            base_fct if base_fct is not None else "n/a",
            base.goodput_normalized,
            stateful_fct if stateful_fct is not None else "n/a",
            stateful.goodput_normalized,
            f"{reference[0][0]}/{reference[0][1]:.1%}" if reference else "-",
            f"{reference[1][0]}/{reference[1][1]:.1%}" if reference else "-",
        )
    result.notes.append("paper: stateful ~ stateless at every load")
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
