"""Table 5 / Appendix A.2.4 — stateful versus stateless scheduling.

The stateful variant tracks per-source demand matrices at destinations to
avoid over-scheduling pairs whose data already left.  Expected shape: the
difference is negligible at every load — duplicate grants only waste links
that nothing else wanted (light load) or that are immediately refilled by
continuously arriving data (heavy load).  That is the paper's argument for
stateless scheduling.
"""

from __future__ import annotations

from .common import (
    ExperimentResult,
    ExperimentScale,
    current_scale,
    fct_us,
    run_negotiator,
    workload_for,
)

PAPER_REFERENCE = {
    0.10: ((15.3, 0.091), (13.5, 0.091)),
    0.25: ((15.4, 0.226), (13.7, 0.226)),
    0.50: ((15.6, 0.452), (13.9, 0.452)),
    0.75: ((16.3, 0.675), (16.3, 0.675)),
    1.00: ((22.0, 0.890), (23.2, 0.888)),
}


def run_point(scale: ExperimentScale, load: float, stateful: bool):
    """(99p mice FCT us, goodput) with or without demand matrices."""
    flows = workload_for(scale, load)
    artifacts = run_negotiator(
        scale,
        "parallel",
        flows,
        scheduler_name="stateful" if stateful else "base",
    )
    summary = artifacts.summary
    return fct_us(summary), summary.goodput_normalized


def run(scale: ExperimentScale | None = None, loads=None) -> ExperimentResult:
    """Regenerate Table 5."""
    scale = scale or current_scale()
    loads = loads if loads is not None else scale.loads
    result = ExperimentResult(
        experiment="Table 5",
        title="stateful vs stateless scheduling: 99p mice FCT (us) / goodput",
        headers=[
            "load",
            "base FCT",
            "base gput",
            "stateful FCT",
            "stateful gput",
            "paper base",
            "paper stateful",
        ],
    )
    for load in loads:
        base_fct, base_gput = run_point(scale, load, stateful=False)
        stateful_fct, stateful_gput = run_point(scale, load, stateful=True)
        reference = PAPER_REFERENCE.get(round(load, 2))
        result.add_row(
            f"{load:.0%}",
            base_fct if base_fct is not None else "n/a",
            base_gput,
            stateful_fct if stateful_fct is not None else "n/a",
            stateful_gput,
            f"{reference[0][0]}/{reference[0][1]:.1%}" if reference else "-",
            f"{reference[1][0]}/{reference[1][1]:.1%}" if reference else "-",
        )
    result.notes.append("paper: stateful ~ stateless at every load")
    result.notes.append(f"scale={scale.name}")
    return result


if __name__ == "__main__":
    print(run().render())
