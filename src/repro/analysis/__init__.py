"""Result analysis: report generation and shape predicates."""

from .report import build_report, result_to_markdown, run_experiments
from .shapes import (
    crossover_load,
    improvement_factor,
    is_flat,
    is_monotonic_increasing,
    saturates,
)

__all__ = [
    "build_report",
    "crossover_load",
    "improvement_factor",
    "is_flat",
    "is_monotonic_increasing",
    "result_to_markdown",
    "run_experiments",
    "saturates",
]
