"""Reproduction report generation.

Runs any subset of the paper-reproduction experiments and renders a single
markdown report with one section per table/figure — the machinery behind
EXPERIMENTS.md.  No plotting dependencies: series data is summarized into
tables (this environment is offline; matplotlib is unavailable).
"""

from __future__ import annotations

import io
import time
from collections.abc import Iterable

from ..experiments import EXPERIMENT_MODULES, current_scale, load_experiment
from ..experiments.common import ExperimentResult, ExperimentScale


def run_experiments(
    names: Iterable[str] | None = None,
    scale: ExperimentScale | None = None,
    verbose: bool = False,
) -> dict[str, ExperimentResult]:
    """Run experiments by short name (default: all of them)."""
    scale = scale or current_scale()
    chosen = list(names) if names is not None else sorted(EXPERIMENT_MODULES)
    results: dict[str, ExperimentResult] = {}
    for name in chosen:
        module = load_experiment(name)
        started = time.monotonic()
        results[name] = module.run(scale)
        if verbose:
            elapsed = time.monotonic() - started
            print(f"[{name}] done in {elapsed:.1f}s")
    return results


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one ExperimentResult as a markdown section."""
    out = io.StringIO()
    out.write(f"### {result.experiment} — {result.title}\n\n")
    out.write("| " + " | ".join(result.headers) + " |\n")
    out.write("|" + "|".join("---" for _ in result.headers) + "|\n")
    for row in result.rows:
        cells = [_markdown_cell(value) for value in row]
        out.write("| " + " | ".join(cells) + " |\n")
    for note in result.notes:
        out.write(f"\n*{note}*\n")
    return out.getvalue()


def _markdown_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def build_report(
    results: dict[str, ExperimentResult],
    scale: ExperimentScale,
    title: str = "NegotiaToR reproduction report",
) -> str:
    """Assemble a full markdown report from experiment results."""
    out = io.StringIO()
    out.write(f"# {title}\n\n")
    out.write(
        f"Scale: `{scale.name}` — {scale.num_tors} ToRs x "
        f"{scale.ports_per_tor} ports, {scale.duration_ns / 1e6:g} ms "
        f"trace-driven runs, 2x uplink speedup.\n\n"
    )
    for name in sorted(results):
        out.write(result_to_markdown(results[name]))
        out.write("\n")
    return out.getvalue()
