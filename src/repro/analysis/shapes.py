"""Shape checks: the paper's qualitative claims as reusable predicates.

The reproduction's pass/fail criterion is not matching absolute numbers (the
substrate is a simulator at reduced scale) but matching *shapes*: who wins,
by roughly what factor, where crossovers fall.  The benchmark assertions and
EXPERIMENTS.md both lean on these helpers.
"""

from __future__ import annotations

from collections.abc import Sequence


def improvement_factor(worse: float, better: float) -> float:
    """How many times smaller ``better`` is than ``worse``."""
    if better <= 0:
        raise ValueError("metrics must be positive")
    return worse / better

def is_flat(values: Sequence[float], tolerance: float = 0.5) -> bool:
    """Whether a series varies by at most ``tolerance`` of its minimum.

    Used for Fig 7a's "incast finish time is flat in the degree".
    """
    values = list(values)
    if not values:
        raise ValueError("need at least one value")
    lo, hi = min(values), max(values)
    if lo <= 0:
        raise ValueError("values must be positive")
    return (hi - lo) / lo <= tolerance


def is_monotonic_increasing(
    values: Sequence[float], slack: float = 0.0
) -> bool:
    """Whether a series never drops by more than ``slack`` (relative)."""
    values = list(values)
    for previous, current in zip(values, values[1:]):
        if current < previous * (1.0 - slack):
            return False
    return True


def saturates(
    loads: Sequence[float], goodputs: Sequence[float], threshold: float = 0.9
) -> bool:
    """Whether goodput stops tracking offered load at heavy load.

    True when the heaviest point delivers less than ``threshold`` of its
    offered load while the lightest point tracks it — Fig 9b's baseline
    behaviour.
    """
    if len(loads) != len(goodputs) or len(loads) < 2:
        raise ValueError("need matching load/goodput series")
    first_ratio = goodputs[0] / loads[0]
    last_ratio = goodputs[-1] / loads[-1]
    return first_ratio >= threshold and last_ratio < threshold


def crossover_load(
    loads: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> float | None:
    """First load at which series_a exceeds series_b (None if never)."""
    for load, a, b in zip(loads, series_a, series_b):
        if a > b:
            return load
    return None
