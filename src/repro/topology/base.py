"""Interface shared by NegotiaToR-compatible flat topologies.

A flat topology connects ``num_tors`` ToRs, each with ``ports_per_tor`` uplink
ports, through one layer of passive AWGRs.  The topology answers three kinds
of questions for the simulator and the matching algorithm:

* **Predefined phase** — which peer does (tor, port) transmit to in timeslot
  ``slot`` of epoch ``epoch``, and conversely at which (slot, port) does an
  ordered pair (src, dst) meet?  Every ordered pair meets exactly once per
  epoch, and within a slot the connection pattern is a permutation, so the
  bufferless fabric never sees a collision.
* **Reachability** — which destinations can (tor, port) transmit to in the
  scheduled phase, and which sources can it receive from?  The parallel
  network is fully connected per port; thin-clos restricts each port to one
  W-ToR group, which is what forces per-port GRANT rings (Fig 3c).
* **Physical paths** — the AWGR/wavelength a transmission rides, for
  conflict validation and failure analysis.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from .awgr import OpticalPath


class FlatTopology(ABC):
    """Base class for one-layer AWGR fabrics."""

    def __init__(self, num_tors: int, ports_per_tor: int) -> None:
        if num_tors < 2:
            raise ValueError("topology needs at least two ToRs")
        if ports_per_tor < 1:
            raise ValueError("topology needs at least one port per ToR")
        self._num_tors = num_tors
        self._ports = ports_per_tor

    @property
    def num_tors(self) -> int:
        """Number of ToR switches."""
        return self._num_tors

    @property
    def ports_per_tor(self) -> int:
        """Uplink ports per ToR."""
        return self._ports

    @property
    @abstractmethod
    def name(self) -> str:
        """Short human-readable topology name."""

    @property
    @abstractmethod
    def predefined_slots(self) -> int:
        """Timeslots needed for one all-to-all round in the predefined phase."""

    @property
    @abstractmethod
    def num_awgrs(self) -> int:
        """Number of AWGR devices in the fabric."""

    @property
    @abstractmethod
    def awgr_ports(self) -> int:
        """Port count of each AWGR."""

    @abstractmethod
    def predefined_peer(
        self, tor: int, port: int, slot: int, epoch: int = 0
    ) -> int | None:
        """Peer that (tor, port) transmits to in predefined slot ``slot``.

        Returns None when the (slot, port) combination is idle (the rotation
        maps it onto the ToR itself).
        """

    @abstractmethod
    def predefined_assignment(
        self, src: int, dst: int, epoch: int = 0
    ) -> tuple[int, int]:
        """(slot, port) at which ``src`` transmits to ``dst`` in ``epoch``."""

    def assignment_for_epoch(self, epoch: int):
        """A fast ``(src, dst) -> (slot, port)`` lookup bound to one epoch.

        The engine calls :meth:`predefined_assignment` once per active pair
        per epoch, which makes it the hottest topology query by far.
        Subclasses override this to return a closure over a precomputed
        permutation table (one table per rotation cycle, built lazily and
        memoized), turning the per-pair cost into a single list index.  The
        returned callable may assume ``src != dst`` and in-range indices —
        validation stays in :meth:`predefined_assignment`.
        """
        return lambda src, dst: self.predefined_assignment(src, dst, epoch)

    @abstractmethod
    def data_port(self, src: int, dst: int) -> int | None:
        """Port ``src`` must use to reach ``dst`` in the scheduled phase.

        Returns the fixed port index for connection-limited topologies
        (thin-clos) and None when any port works (parallel network).
        """

    @abstractmethod
    def reachable_dsts(self, tor: int, port: int) -> tuple[int, ...]:
        """Destinations (tor, port) can transmit to in the scheduled phase."""

    @abstractmethod
    def reachable_srcs(self, tor: int, port: int) -> tuple[int, ...]:
        """Sources that can reach (tor, port) in the scheduled phase."""

    @abstractmethod
    def optical_path(self, src: int, dst: int, port: int) -> OpticalPath:
        """Physical lightpath of a ``src`` -> ``dst`` transmission on ``port``."""

    def check_pair(self, src: int, dst: int) -> None:
        """Validate an ordered ToR pair."""
        for tor in (src, dst):
            if not 0 <= tor < self._num_tors:
                raise ValueError(f"ToR {tor} out of range")
        if src == dst:
            raise ValueError("source and destination must differ")

    def check_port(self, port: int) -> None:
        """Validate a port index."""
        if not 0 <= port < self._ports:
            raise ValueError(f"port {port} out of range")

    def all_pairs(self):
        """Iterate over all ordered (src, dst) pairs."""
        for src in range(self._num_tors):
            for dst in range(self._num_tors):
                if src != dst:
                    yield src, dst
