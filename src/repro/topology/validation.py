"""Structural validators for flat topologies.

NegotiaToR only works if the fabric honors three contracts: the predefined
phase must connect every ordered pair exactly once per epoch without
receiver collisions, scheduled-phase reachability must be symmetric between
the TX and RX views, and simultaneous transmissions must never share an AWGR
input or output.  These validators check any :class:`FlatTopology`
implementation — including user-defined ones — and are what the test suite
runs against the two built-in fabrics.
"""

from __future__ import annotations

from .base import FlatTopology


class TopologyContractError(AssertionError):
    """A topology violated one of the NegotiaToR fabric contracts."""


def check_predefined_coverage(topology: FlatTopology, epoch: int = 0) -> None:
    """Every ordered pair meets exactly once in one predefined phase."""
    seen: dict[tuple[int, int], tuple[int, int]] = {}
    n = topology.num_tors
    for tor in range(n):
        for port in range(topology.ports_per_tor):
            for slot in range(topology.predefined_slots):
                peer = topology.predefined_peer(tor, port, slot, epoch)
                if peer is None:
                    continue
                if peer == tor:
                    raise TopologyContractError(
                        f"ToR {tor} connected to itself at slot {slot}, "
                        f"port {port}"
                    )
                pair = (tor, peer)
                if pair in seen:
                    raise TopologyContractError(
                        f"pair {pair} meets twice in epoch {epoch}: at "
                        f"{seen[pair]} and ({slot}, {port})"
                    )
                seen[pair] = (slot, port)
    expected = n * (n - 1)
    if len(seen) != expected:
        raise TopologyContractError(
            f"predefined phase covers {len(seen)} ordered pairs, "
            f"expected {expected}"
        )


def check_predefined_conflict_freedom(
    topology: FlatTopology, epoch: int = 0
) -> None:
    """Within each (slot, port), the transmit pattern is a permutation."""
    for slot in range(topology.predefined_slots):
        for port in range(topology.ports_per_tor):
            receivers: dict[int, int] = {}
            for tor in range(topology.num_tors):
                peer = topology.predefined_peer(tor, port, slot, epoch)
                if peer is None:
                    continue
                if peer in receivers:
                    raise TopologyContractError(
                        f"receivers collide at slot {slot}, port {port}: "
                        f"ToRs {receivers[peer]} and {tor} both reach {peer}"
                    )
                receivers[peer] = tor


def check_assignment_inverse(topology: FlatTopology, epoch: int = 0) -> None:
    """predefined_assignment is the inverse of predefined_peer."""
    for src, dst in topology.all_pairs():
        slot, port = topology.predefined_assignment(src, dst, epoch)
        peer = topology.predefined_peer(src, port, slot, epoch)
        if peer != dst:
            raise TopologyContractError(
                f"assignment of ({src}, {dst}) points at slot {slot}, port "
                f"{port}, but that connects to {peer}"
            )


def check_reachability_symmetry(topology: FlatTopology) -> None:
    """TX and RX reachability views agree, and data ports are consistent."""
    for tor in range(topology.num_tors):
        for port in range(topology.ports_per_tor):
            for dst in topology.reachable_dsts(tor, port):
                if tor not in topology.reachable_srcs(dst, port):
                    raise TopologyContractError(
                        f"{tor} reaches {dst} via port {port} but {dst} does "
                        f"not list {tor} as a source on that port"
                    )
    for src, dst in topology.all_pairs():
        port = topology.data_port(src, dst)
        if port is None:
            continue
        if dst not in topology.reachable_dsts(src, port):
            raise TopologyContractError(
                f"data_port({src}, {dst}) = {port} but {dst} is not "
                f"reachable through it"
            )


def check_optical_conflict_freedom(topology: FlatTopology) -> None:
    """Simultaneous transmissions on distinct pairs never share AWGR ports.

    Checks all pairs that could be matched on the same port index: their
    lightpaths must not collide on an AWGR input or output.
    """
    for port in range(topology.ports_per_tor):
        inputs: dict[tuple[int, int], tuple[int, int]] = {}
        outputs: dict[tuple[int, int], tuple[int, int]] = {}
        for src in range(topology.num_tors):
            for dst in topology.reachable_dsts(src, port):
                required = topology.data_port(src, dst)
                if required is not None and required != port:
                    continue
                path = topology.optical_path(src, dst, port)
                in_key = (path.awgr_id, path.input_port)
                if in_key in inputs and inputs[in_key] != (src, port):
                    raise TopologyContractError(
                        f"AWGR input {in_key} shared by ToRs "
                        f"{inputs[in_key]} and {(src, port)}"
                    )
                inputs[in_key] = (src, port)
                out_key = (path.awgr_id, path.output_port)
                owner = outputs.get(out_key)
                if owner is not None and owner != (dst, port):
                    raise TopologyContractError(
                        f"AWGR output {out_key} owned by both {owner} and "
                        f"{(dst, port)}"
                    )
                outputs[out_key] = (dst, port)


def validate_topology(topology: FlatTopology, epochs: int = 3) -> None:
    """Run every contract check over several epochs of the rotation."""
    for epoch in range(epochs):
        check_predefined_coverage(topology, epoch)
        check_predefined_conflict_freedom(topology, epoch)
        check_assignment_inverse(topology, epoch)
    check_reachability_symmetry(topology)
    check_optical_conflict_freedom(topology)
