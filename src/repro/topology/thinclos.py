"""The thin-clos topology (Fig 1b): many low-port-count AWGRs.

With W-port AWGRs (W < N), a single port cannot reach every ToR.  The classic
thin-clos construction (Proietti/Yin et al., refs [40, 52] in the paper)
divides the N ToRs into G = N/W groups of W ToRs.  TX port ``k`` of a ToR in
group ``g`` feeds the W-port AWGR ``(g, k)`` whose outputs fan out to the W
ToRs of group ``(g + k) mod G`` — so port ``k`` reaches exactly one group, and
all S ports together reach the whole network.  Reaching everyone requires
S * W >= N; we implement the balanced case N = S * W used throughout the
paper (128 ToRs = 8 ports x 16-port AWGRs; the Fig 3 example is 8 = 4 x 2).

Consequences the rest of the system inherits:

* An ordered pair (src, dst) is connected by a *single* port-to-port path:
  TX port ``(group(dst) - group(src)) mod G`` at the source, and the
  same-index RX port at the destination.
* A destination's RX port ``k`` only hears the W sources of group
  ``(group(dst) - k) mod G`` — hence per-port GRANT rings (Fig 3c) and the
  higher matching efficiency at n = W in the paper's analysis (section 3.2.2).

Predefined phase
----------------
W timeslots: in slot ``t``, TX port ``k`` of the ToR with in-group index ``v``
targets the group member with index ``(v + t) mod W``.  Per (slot, port) this
is a permutation, and a pair meets exactly once per epoch at slot
``(index(dst) - index(src)) mod W`` on its fixed port.
"""

from __future__ import annotations

from .awgr import AWGR, OpticalPath
from .base import FlatTopology


class ThinClos(FlatTopology):
    """Balanced thin-clos fabric with ``num_tors = ports_per_tor * awgr_ports``."""

    def __init__(self, num_tors: int, ports_per_tor: int, awgr_ports: int) -> None:
        super().__init__(num_tors, ports_per_tor)
        if awgr_ports < 2:
            raise ValueError("thin-clos AWGRs need at least two ports")
        if num_tors != ports_per_tor * awgr_ports:
            raise ValueError(
                "balanced thin-clos requires num_tors == ports_per_tor * "
                f"awgr_ports, got {num_tors} != {ports_per_tor} * {awgr_ports}"
            )
        self._w = awgr_ports
        self._groups = num_tors // awgr_ports
        self._awgr = AWGR(awgr_ports)
        # Flat [src * N + dst] -> (slot, port) table; the thin-clos schedule
        # does not rotate, so one table serves every epoch.  Built lazily.
        self._assignment_table: list[tuple[int, int] | None] | None = None

    @property
    def name(self) -> str:
        return "thin-clos"

    @property
    def predefined_slots(self) -> int:
        return self._w

    @property
    def num_awgrs(self) -> int:
        return self._groups * self._ports

    @property
    def awgr_ports(self) -> int:
        return self._w

    @property
    def num_groups(self) -> int:
        """Number of W-ToR groups (equals ports_per_tor in the balanced case)."""
        return self._groups

    def group(self, tor: int) -> int:
        """Group a ToR belongs to."""
        return tor // self._w

    def index_in_group(self, tor: int) -> int:
        """Position of a ToR within its group."""
        return tor % self._w

    def tor_at(self, group: int, index: int) -> int:
        """ToR id of group member ``index``."""
        return (group % self._groups) * self._w + index % self._w

    def predefined_peer(
        self, tor: int, port: int, slot: int, epoch: int = 0
    ) -> int | None:
        self.check_port(port)
        if not 0 <= slot < self._w:
            raise ValueError(f"slot {slot} out of range")
        target_group = (self.group(tor) + port) % self._groups
        peer = self.tor_at(target_group, (self.index_in_group(tor) + slot) % self._w)
        if peer == tor:
            return None
        return peer

    def _pair_table(self) -> list[tuple[int, int] | None]:
        table = self._assignment_table
        if table is None:
            n = self._num_tors
            table = [None] * (n * n)
            for src in range(n):
                for dst in range(n):
                    if src == dst:
                        continue
                    port = (self.group(dst) - self.group(src)) % self._groups
                    slot = (
                        self.index_in_group(dst) - self.index_in_group(src)
                    ) % self._w
                    table[src * n + dst] = (slot, port)
            self._assignment_table = table
        return table

    def predefined_assignment(
        self, src: int, dst: int, epoch: int = 0
    ) -> tuple[int, int]:
        self.check_pair(src, dst)
        return self._pair_table()[src * self._num_tors + dst]

    def assignment_for_epoch(self, epoch: int):
        table = self._pair_table()
        n = self._num_tors

        def assign(src: int, dst: int) -> tuple[int, int]:
            return table[src * n + dst]

        return assign

    def data_port(self, src: int, dst: int) -> int | None:
        self.check_pair(src, dst)
        return (self.group(dst) - self.group(src)) % self._groups

    def reachable_dsts(self, tor: int, port: int) -> tuple[int, ...]:
        self.check_port(port)
        target_group = (self.group(tor) + port) % self._groups
        return tuple(
            self.tor_at(target_group, i)
            for i in range(self._w)
            if self.tor_at(target_group, i) != tor
        )

    def reachable_srcs(self, tor: int, port: int) -> tuple[int, ...]:
        self.check_port(port)
        source_group = (self.group(tor) - port) % self._groups
        return tuple(
            self.tor_at(source_group, i)
            for i in range(self._w)
            if self.tor_at(source_group, i) != tor
        )

    def optical_path(self, src: int, dst: int, port: int) -> OpticalPath:
        self.check_pair(src, dst)
        self.check_port(port)
        required = self.data_port(src, dst)
        if port != required:
            raise ValueError(
                f"pair ({src}, {dst}) can only communicate on port {required}, "
                f"not {port}"
            )
        input_port = self.index_in_group(src)
        output_port = self.index_in_group(dst)
        return OpticalPath(
            awgr_id=self.group(src) * self._ports + port,
            input_port=input_port,
            wavelength=self._awgr.wavelength_for(input_port, output_port),
            output_port=output_port,
        )
