"""Flat AWGR topologies: the parallel network and thin-clos (Fig 1)."""

from .awgr import AWGR, OpticalPath
from .base import FlatTopology
from .parallel import ParallelNetwork
from .thinclos import ThinClos
from .validation import TopologyContractError, validate_topology

__all__ = [
    "AWGR",
    "FlatTopology",
    "OpticalPath",
    "ParallelNetwork",
    "ThinClos",
    "TopologyContractError",
    "validate_topology",
]
