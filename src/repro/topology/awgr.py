"""Arrayed waveguide grating router (AWGR) wavelength-routing model.

An AWGR is a fully passive NxN optical device: light entering input port ``a``
on wavelength ``w`` exits output port ``(a + w) mod N``.  Because routing is a
pure function of (input, wavelength) there is no switching state — the sender
selects the path by tuning its laser, which is why AWGR fabrics suit
distributed scheduling (section 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


class AWGR:
    """A cyclic NxN wavelength router."""

    __slots__ = ("_num_ports",)

    def __init__(self, num_ports: int) -> None:
        if num_ports < 1:
            raise ValueError("AWGR needs at least one port")
        self._num_ports = num_ports

    @property
    def num_ports(self) -> int:
        """Number of input (and output) ports."""
        return self._num_ports

    def output_for(self, input_port: int, wavelength: int) -> int:
        """Output port reached from ``input_port`` on ``wavelength``."""
        self._check_port(input_port)
        self._check_wavelength(wavelength)
        return (input_port + wavelength) % self._num_ports

    def wavelength_for(self, input_port: int, output_port: int) -> int:
        """Wavelength a sender on ``input_port`` tunes to reach ``output_port``."""
        self._check_port(input_port)
        self._check_port(output_port)
        return (output_port - input_port) % self._num_ports

    def _check_port(self, port: int) -> None:
        if not 0 <= port < self._num_ports:
            raise ValueError(
                f"port {port} out of range for {self._num_ports}-port AWGR"
            )

    def _check_wavelength(self, wavelength: int) -> None:
        if not 0 <= wavelength < self._num_ports:
            raise ValueError(
                f"wavelength {wavelength} out of range for "
                f"{self._num_ports}-port AWGR"
            )


@dataclass(frozen=True)
class OpticalPath:
    """A concrete one-hop lightpath through the fabric.

    Identifies the AWGR, its input/output ports, and the wavelength the
    source's tunable laser selects.  Used to validate conflict-freedom (two
    simultaneous transmissions must never share an AWGR input or output) and
    to reason about which physical fiber a connection rides.
    """

    awgr_id: int
    input_port: int
    wavelength: int
    output_port: int
