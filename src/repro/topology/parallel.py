"""The parallel network topology (Fig 1a): S high-port-count AWGRs.

Each ToR contributes its port ``k`` to AWGR ``k``, so every AWGR is an NxN
device interconnecting all N ToRs.  Any port can therefore reach any other
ToR — the source just tunes its wavelength — which is why a destination runs
a single shared GRANT ring across its ports (Fig 3b).

Predefined phase
----------------
One all-to-all round needs ceil((N-1)/S) timeslots.  We enumerate the N-1
non-zero "offsets" (dst - src) mod N in (slot, port) order: in slot ``t``,
port ``k`` of every ToR transmits to offset ``1 + rot(t*S + k)`` where ``rot``
is an epoch-dependent rotation modulo N-1.  Because every ToR applies the same
offset in a given (slot, port), the connection pattern is a permutation —
conflict-free — and the rotation makes a given ToR pair ride different
physical (port, wavelength) links in different epochs, the paper's
fault-tolerance trick (section 3.6.1).  When slots*S exceeds N-1 the trailing
(slot, port) combinations are idle.
"""

from __future__ import annotations

import math

from .awgr import AWGR, OpticalPath
from .base import FlatTopology


class ParallelNetwork(FlatTopology):
    """Flat topology of ``ports_per_tor`` AWGRs with ``num_tors`` ports each."""

    def __init__(
        self, num_tors: int, ports_per_tor: int, rotate_per_epoch: bool = True
    ) -> None:
        super().__init__(num_tors, ports_per_tor)
        self._rotate = rotate_per_epoch
        self._slots = math.ceil((num_tors - 1) / ports_per_tor)
        self._awgr = AWGR(num_tors)
        self._offsets = num_tors - 1
        # rotation -> offset-indexed (slot, port) table, built lazily; the
        # rotation cycle has N-1 values, so the cache is bounded by N^2.
        self._assignment_tables: dict[int, list[tuple[int, int] | None]] = {}

    @property
    def name(self) -> str:
        return "parallel"

    @property
    def predefined_slots(self) -> int:
        return self._slots

    @property
    def num_awgrs(self) -> int:
        return self._ports

    @property
    def awgr_ports(self) -> int:
        return self._num_tors

    @property
    def rotates_per_epoch(self) -> bool:
        """Whether the predefined round-robin rule rotates across epochs."""
        return self._rotate

    def _rotation(self, epoch: int) -> int:
        return epoch % self._offsets if self._rotate else 0

    def predefined_peer(
        self, tor: int, port: int, slot: int, epoch: int = 0
    ) -> int | None:
        self.check_port(port)
        if not 0 <= slot < self._slots:
            raise ValueError(f"slot {slot} out of range")
        index = slot * self._ports + port
        if index >= self._offsets:
            return None
        offset = 1 + (index + self._rotation(epoch)) % self._offsets
        return (tor + offset) % self._num_tors

    def _assignment_table(self, rotation: int) -> list[tuple[int, int] | None]:
        table = self._assignment_tables.get(rotation)
        if table is None:
            ports = self._ports
            offsets = self._offsets
            table = [None]  # offset 0 would be the ToR itself
            for offset in range(1, self._num_tors):
                index = (offset - 1 - rotation) % offsets
                table.append((index // ports, index % ports))
            self._assignment_tables[rotation] = table
        return table

    def predefined_assignment(
        self, src: int, dst: int, epoch: int = 0
    ) -> tuple[int, int]:
        self.check_pair(src, dst)
        table = self._assignment_table(self._rotation(epoch))
        return table[(dst - src) % self._num_tors]

    def assignment_for_epoch(self, epoch: int):
        table = self._assignment_table(self._rotation(epoch))
        n = self._num_tors

        def assign(src: int, dst: int) -> tuple[int, int]:
            return table[(dst - src) % n]

        return assign

    def data_port(self, src: int, dst: int) -> int | None:
        self.check_pair(src, dst)
        return None

    def reachable_dsts(self, tor: int, port: int) -> tuple[int, ...]:
        self.check_port(port)
        return tuple(t for t in range(self._num_tors) if t != tor)

    def reachable_srcs(self, tor: int, port: int) -> tuple[int, ...]:
        self.check_port(port)
        return tuple(t for t in range(self._num_tors) if t != tor)

    def optical_path(self, src: int, dst: int, port: int) -> OpticalPath:
        self.check_pair(src, dst)
        self.check_port(port)
        wavelength = self._awgr.wavelength_for(src, dst)
        return OpticalPath(
            awgr_id=port,
            input_port=src,
            wavelength=wavelength,
            output_port=dst,
        )
