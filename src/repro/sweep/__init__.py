"""Sweep orchestration: declare runs as specs, fan out, cache results.

The layer between the fast engine and the experiments (DESIGN.md §8):

* :mod:`~repro.sweep.spec` — :class:`RunSpec`, a frozen, content-hashed
  description of one simulation run.
* :mod:`~repro.sweep.scenarios` — the registry of named traffic patterns a
  spec can reference (the paper's workloads plus hotspot, permutation,
  bursty, and ML-collective patterns).
* :mod:`~repro.sweep.runner` — :func:`execute_spec` and
  :class:`SweepRunner`, the serial/parallel executor with deterministic
  per-spec seeding.
* :mod:`~repro.sweep.store` — :class:`ResultStore`, the JSONL store keyed
  by spec hash that makes sweeps resumable.
"""

from .runner import (
    COLLECTORS,
    SweepRunner,
    execute_spec,
    resolve_epoch,
    resolve_failures,
    resolve_scale,
    scale_spec_fields,
)
from .scenarios import SCENARIOS, Scenario, build_workload, build_workload_iter
from .spec import SPEC_VERSION, RunSpec, freeze_params, system_spec_fields
from .store import ResultStore, StoreError

__all__ = [
    "COLLECTORS",
    "ResultStore",
    "RunSpec",
    "SCENARIOS",
    "SPEC_VERSION",
    "Scenario",
    "StoreError",
    "SweepRunner",
    "build_workload",
    "build_workload_iter",
    "execute_spec",
    "freeze_params",
    "resolve_epoch",
    "resolve_failures",
    "resolve_scale",
    "scale_spec_fields",
    "system_spec_fields",
]
