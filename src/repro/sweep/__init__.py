"""Sweep orchestration: declare runs as specs, fan out, cache results.

The layer between the fast engine and the experiments (DESIGN.md §8):

* :mod:`~repro.sweep.spec` — :class:`RunSpec`, a frozen, content-hashed
  description of one simulation run.
* :mod:`~repro.sweep.scenarios` — the registry of named traffic patterns a
  spec can reference (the paper's workloads plus hotspot, permutation,
  bursty, and ML-collective patterns).
* :mod:`~repro.sweep.runner` — :func:`execute_spec` and
  :class:`SweepRunner`, the serial/parallel executor with deterministic
  per-spec seeding.
* :mod:`~repro.sweep.store` — :class:`ResultStore`, the store keyed by
  spec hash that makes sweeps resumable, with per-row checksums and
  atomic compaction, over pluggable byte backends
  (:mod:`~repro.sweep.backends`: single-file JSONL, sharded JSONL,
  SQLite).
* :mod:`~repro.sweep.campaign` — :func:`run_campaign`, the work-queue
  lease mode that lets N independent workers drain one grid into one
  store (DESIGN.md §17).
* :mod:`~repro.sweep.resilience` — :class:`RetryPolicy`,
  :class:`SpecOutcome`, the crash-safe :class:`WorkerPool`, and the
  :class:`QuarantineLog` sidecar (fault-tolerant execution, DESIGN.md
  §13).
* :mod:`~repro.sweep.chaos` — deterministic, environment-keyed fault
  injection for testing all of the above.
"""

from .backends import (
    BACKENDS,
    detect_backend_kind,
    make_backend,
    sidecar_path,
)
from .campaign import (
    CampaignReport,
    campaign_status,
    default_worker_id,
    run_campaign,
)
from .chaos import ChaosError, ChaosPlan, Fault
from .resilience import (
    NO_RETRY,
    QuarantineLog,
    RetryPolicy,
    SpecOutcome,
    SweepExecutionError,
    WorkerPool,
    default_quarantine_path,
    run_with_retries,
)
from .runner import (
    COLLECTORS,
    SweepRunner,
    execute_spec,
    resolve_epoch,
    resolve_failures,
    resolve_scale,
    scale_spec_fields,
)
from .scenarios import SCENARIOS, Scenario, build_workload, build_workload_iter
from .spec import SPEC_VERSION, RunSpec, freeze_params, system_spec_fields
from .store import ResultStore, StoreError, StoreReport

__all__ = [
    "BACKENDS",
    "COLLECTORS",
    "CampaignReport",
    "ChaosError",
    "ChaosPlan",
    "Fault",
    "NO_RETRY",
    "QuarantineLog",
    "ResultStore",
    "RetryPolicy",
    "RunSpec",
    "SCENARIOS",
    "SPEC_VERSION",
    "Scenario",
    "SpecOutcome",
    "StoreError",
    "StoreReport",
    "SweepExecutionError",
    "SweepRunner",
    "WorkerPool",
    "build_workload",
    "build_workload_iter",
    "campaign_status",
    "default_quarantine_path",
    "default_worker_id",
    "detect_backend_kind",
    "execute_spec",
    "freeze_params",
    "make_backend",
    "run_campaign",
    "sidecar_path",
    "resolve_epoch",
    "resolve_failures",
    "resolve_scale",
    "run_with_retries",
    "scale_spec_fields",
    "system_spec_fields",
]
