"""The scenario registry: named, parameterized workload builders.

A *scenario* turns ``(scale, load, duration, rng, **params)`` into flows.
Scenarios are the workload half of a :class:`~repro.sweep.spec.RunSpec`
— the spec names one plus its parameter overrides, and the runner resolves
it here.  The registry spans the paper's own workloads (``poisson``,
``incast``, ``alltoall``) and the extended patterns of
:mod:`repro.workloads.patterns` (hotspot, permutation, bursty, and the ML
collectives), so sweeps can range over traffic shapes the paper never
evaluated without touching experiment code.

A builder may return a list (most do) or a lazy arrival-ordered generator
(``heavy-poisson``): :meth:`Scenario.build_list` and
:meth:`Scenario.build_iter` normalize either shape, so every scenario runs
in both the materialized and the streaming execution mode, and both modes
see the exact same flows.

Builders must draw randomness only from the ``rng`` argument; the runner
seeds it from the spec, which is what makes parallel sweeps bit-identical
to serial ones.
"""

from __future__ import annotations

import itertools
import random
from collections.abc import Callable, Iterator, Mapping
from dataclasses import dataclass, field

from ..experiments.common import sized_distribution, workload_for
from ..sim.config import KB
from ..sim.flows import Flow
from ..workloads.distributions import FixedSize
from ..workloads.generators import (
    network_arrival_rate_per_ns,
    single_pair_stream,
    uniform_pair,
)
from ..workloads.streams import heavy_poisson_stream
from ..workloads.incast import (
    all_to_all_workload,
    incast_workload,
    mixed_incast_workload,
)
from ..workloads.patterns import (
    bursty_workload,
    hotspot_workload,
    permutation_workload,
    ring_allreduce_workload,
    shuffle_workload,
)

Builder = Callable[..., list[Flow]]


@dataclass(frozen=True)
class Scenario:
    """One registered traffic pattern."""

    name: str
    description: str
    build: Builder
    defaults: dict = field(default_factory=dict)
    synchronous: bool = False
    """Synchronous scenarios inject at fixed instants and ignore ``load``."""

    def resolve_params(self, overrides: Mapping[str, object]) -> dict:
        """Defaults merged with spec-provided overrides (validated)."""
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; available: {sorted(self.defaults)}"
            )
        params = dict(self.defaults)
        params.update(overrides)
        return params

    def build_list(self, *args, **params) -> list[Flow]:
        """The workload as a materialized list (the classic shape)."""
        flows = self.build(*args, **params)
        return flows if isinstance(flows, list) else list(flows)

    def build_iter(self, *args, **params) -> Iterator[Flow]:
        """The workload as a lazy iterator for streaming execution.

        Generator-backed scenarios stay lazy end to end; list-backed ones
        are materialized and then iterated — same flows, no memory win.
        """
        flows = self.build(*args, **params)
        return iter(flows)


SCENARIOS: dict[str, Scenario] = {}


def register(
    name: str,
    description: str,
    *,
    synchronous: bool = False,
    **defaults,
):
    """Decorator registering a builder under ``name`` with its defaults."""

    def wrap(build: Builder) -> Builder:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = Scenario(
            name=name,
            description=description,
            build=build,
            defaults=defaults,
            synchronous=synchronous,
        )
        return build

    return wrap


def get(name: str) -> Scenario:
    """Look up one scenario by name."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIOS)}"
        ) from None


def build_workload(spec, scale, params: dict | None = None) -> list[Flow]:
    """Generate the flow list for one spec at its resolved scale.

    The rng is freshly seeded from the spec, so the result depends only on
    the spec's content — never on which process or in which order it runs.
    ``params`` takes already-resolved scenario parameters (the runner
    resolves them once for its collectors) and defaults to resolving here.
    """
    scenario = get(spec.scenario)
    if params is None:
        params = scenario.resolve_params(dict(spec.scenario_params))
    duration = spec.duration_ns if spec.duration_ns else scale.duration_ns
    rng = random.Random(spec.seed)
    return scenario.build_list(scale, spec.load, duration, rng, **params)


def build_workload_iter(spec, scale, params: dict | None = None) -> Iterator[Flow]:
    """Lazy counterpart of :func:`build_workload` for streaming specs.

    Seeding is identical, so the iterator yields exactly the flows the
    materialized build would return — which is what makes a streaming
    re-run of a materialized spec comparable field by field.
    """
    scenario = get(spec.scenario)
    if params is None:
        params = scenario.resolve_params(dict(spec.scenario_params))
    duration = spec.duration_ns if spec.duration_ns else scale.duration_ns
    rng = random.Random(spec.seed)
    return scenario.build_iter(scale, spec.load, duration, rng, **params)


# ---------------------------------------------------------------------------
# the paper's workloads
# ---------------------------------------------------------------------------


@register(
    "poisson",
    "uniform Poisson arrivals from a flow-size trace (section 4.1)",
    trace="hadoop",
)
def _poisson(scale, load, duration_ns, rng, *, trace):
    # Same implementation as the non-migrated experiments' direct path.
    return workload_for(
        scale, load, trace=trace, duration_ns=duration_ns, rng=rng
    )


@register(
    "incast",
    "degree sources synchronously hit one destination (Fig 7a)",
    synchronous=True,
    degree=10,
    dst=0,
    flow_bytes=1 * KB,
    at_ns=10_000.0,
)
def _incast(scale, load, duration_ns, rng, *, degree, dst, flow_bytes, at_ns):
    return incast_workload(
        scale.num_tors,
        degree,
        dst,
        flow_bytes=flow_bytes,
        at_ns=at_ns,
        rng=rng,
    )


@register(
    "alltoall",
    "every ToR sends one equal-sized flow to every other ToR (Fig 7b)",
    synchronous=True,
    flow_bytes=30 * KB,
    at_ns=10_000.0,
)
def _alltoall(scale, load, duration_ns, rng, *, flow_bytes, at_ns):
    return all_to_all_workload(scale.num_tors, flow_bytes, at_ns=at_ns)


@register(
    "mixed-incast",
    "Poisson background traffic with synchronized incasts mixed in (Fig 13a)",
    trace="hadoop",
    incast_degree=20,
    incast_flow_bytes=1 * KB,
    incast_bandwidth_fraction=0.02,
)
def _mixed_incast(
    scale,
    load,
    duration_ns,
    rng,
    *,
    trace,
    incast_degree,
    incast_flow_bytes,
    incast_bandwidth_fraction,
):
    return mixed_incast_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
        incast_degree=incast_degree,
        incast_flow_bytes=incast_flow_bytes,
        incast_bandwidth_fraction=incast_bandwidth_fraction,
    )


@register(
    "single-pair",
    "one ToR pair streams continuously (Fig 19's failure microscope)",
    synchronous=True,
    src=0,
    dst=1,
    total_bytes=10**9,
    at_ns=0.0,
)
def _single_pair(scale, load, duration_ns, rng, *, src, dst, total_bytes, at_ns):
    return single_pair_stream(src, dst, total_bytes, start_ns=at_ns)


@register(
    "heavy-poisson",
    "Poisson arrivals sized by a target flow count (streaming scale runs)",
    num_flows=1_000_000,
    flow_bytes=1000,
    trace="",
)
def _heavy_poisson(scale, load, duration_ns, rng, *, num_flows, flow_bytes, trace):
    # Sized by count, not duration: the workload for "how fast can the
    # engine chew through N flows" benchmarks.  Returns a lazy generator —
    # with stream=True the trace never materializes.  The default fixed
    # 1000-byte mice keep per-flow slot waste low so moderate loads stay
    # stable (bounded in-flight backlog); pass a trace name for realistic
    # size mixes instead.
    dist = sized_distribution(scale, trace) if trace else FixedSize(flow_bytes)
    return heavy_poisson_stream(
        dist,
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        num_flows,
        rng,
    )


# ---------------------------------------------------------------------------
# the rotor comparison family (fig9_rotor_baseline and rotor sweeps)
# ---------------------------------------------------------------------------


@register(
    "rotor-uniform",
    "uniform Poisson arrivals of equal-sized bulk flows (rotor's sweet spot)",
    flow_bytes=50 * KB,
)
def _rotor_uniform(scale, load, duration_ns, rng, *, flow_bytes):
    # A round-robin rotor serves a uniform all-to-all matrix at full duty
    # cycle; demand-aware fabrics gain nothing here beyond lower latency.
    # Equal-sized bulk flows keep the comparison about the schedule, not
    # the size mix.
    from ..workloads.generators import poisson_workload

    return poisson_workload(
        FixedSize(flow_bytes),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
    )


@register(
    "rotor-skewed",
    "heavily skewed matrix from a size trace (rotor's worst case)",
    trace="hadoop",
    hot_fraction=0.125,
    hot_weight=0.9,
)
def _rotor_skewed(scale, load, duration_ns, rng, *, trace, hot_fraction, hot_weight):
    # The adversarial counterpart: most bytes concentrate on a few ToR
    # pairs, so an oblivious round-robin wastes all but a sliver of its
    # cycle while on-demand matchings track the skew (the adaptive-vs-
    # oblivious axis of the D3 / Avin-Schmid taxonomy).
    return hotspot_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
        hot_fraction=hot_fraction,
        hot_weight=hot_weight,
    )


# ---------------------------------------------------------------------------
# the adaptive comparison family (fig9_adaptive_baseline and adaptive sweeps)
# ---------------------------------------------------------------------------


@register(
    "adaptive-shifting",
    "hotspot whose hot ToR set is re-drawn every phase (tracker stress)",
    trace="hadoop",
    phases=4,
    hot_fraction=0.25,
    hot_weight=0.9,
)
def _adaptive_shifting(
    scale, load, duration_ns, rng, *, trace, phases, hot_fraction, hot_weight
):
    # The demand tracker's re-convergence test: the skew is steady (a small
    # hot set carries most bytes) but the hot set is re-drawn at every phase
    # boundary, so a schedule tuned to the old matrix goes stale at once.
    # A static matching would decay to residual coverage; the EWMA
    # estimator should re-aim within a few recompute intervals.
    if phases < 1:
        raise ValueError("phases must be at least 1")
    size_dist = sized_distribution(scale, trace)
    num_tors = scale.num_tors
    num_hot = min(num_tors, max(2, round(hot_fraction * num_tors)))
    hot_sets = [rng.sample(range(num_tors), num_hot) for _ in range(phases)]
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, scale.host_aggregate_gbps
    )
    phase_ns = duration_ns / phases
    fids = itertools.count()
    flows = []
    t = rng.expovariate(rate)
    while t < duration_ns:
        hot = hot_sets[min(int(t // phase_ns), phases - 1)]
        if rng.random() < hot_weight:
            src, dst = rng.sample(hot, 2)
        else:
            src, dst = uniform_pair(num_tors, rng)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=size_dist.sample(rng),
                arrival_ns=t,
                tag="shifting",
            )
        )
        t += rng.expovariate(rate)
    return flows


@register(
    "adaptive-elephants",
    "few persistent elephant pairs over a light uniform mesh",
    trace="hadoop",
    num_elephants=2,
    elephant_weight=0.8,
)
def _adaptive_elephants(
    scale, load, duration_ns, rng, *, trace, num_elephants, elephant_weight
):
    # Steady-state sweet spot for demand-aware circuits: a handful of
    # fixed ordered pairs carry most bytes, so a matching that pins those
    # pairs beats any oblivious rotation, while the uniform remainder
    # keeps the residual-coverage path honest.
    if num_elephants < 1:
        raise ValueError("num_elephants must be at least 1")
    if not 0 <= elephant_weight <= 1:
        raise ValueError("elephant_weight must be in [0, 1]")
    size_dist = sized_distribution(scale, trace)
    num_tors = scale.num_tors
    pairs = sorted(
        (src, dst)
        for src in range(num_tors)
        for dst in range(num_tors)
        if src != dst
    )
    elephants = rng.sample(pairs, min(num_elephants, len(pairs)))
    rate = network_arrival_rate_per_ns(
        load, size_dist.mean(), num_tors, scale.host_aggregate_gbps
    )
    fids = itertools.count()
    flows = []
    t = rng.expovariate(rate)
    while t < duration_ns:
        if rng.random() < elephant_weight:
            src, dst = elephants[rng.randrange(len(elephants))]
        else:
            src, dst = uniform_pair(num_tors, rng)
        flows.append(
            Flow(
                fid=next(fids),
                src=src,
                dst=dst,
                size_bytes=size_dist.sample(rng),
                arrival_ns=t,
                tag="elephants",
            )
        )
        t += rng.expovariate(rate)
    return flows


# ---------------------------------------------------------------------------
# extended patterns (beyond the paper)
# ---------------------------------------------------------------------------


@register(
    "hotspot",
    "skewed matrix: a hot ToR set carries most of the traffic",
    trace="hadoop",
    hot_fraction=0.125,
    hot_weight=0.75,
)
def _hotspot(scale, load, duration_ns, rng, *, trace, hot_fraction, hot_weight):
    return hotspot_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
        hot_fraction=hot_fraction,
        hot_weight=hot_weight,
    )


@register(
    "permutation",
    "each ToR sends to one fixed partner (demand-aware best case)",
    trace="hadoop",
)
def _permutation(scale, load, duration_ns, rng, *, trace):
    return permutation_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
    )


@register(
    "bursty",
    "on/off modulated Poisson arrivals at the same average load",
    trace="hadoop",
    mean_on_ns=100_000.0,
    mean_off_ns=300_000.0,
)
def _bursty(scale, load, duration_ns, rng, *, trace, mean_on_ns, mean_off_ns):
    return bursty_workload(
        sized_distribution(scale, trace),
        load,
        scale.num_tors,
        scale.host_aggregate_gbps,
        duration_ns,
        rng,
        mean_on_ns=mean_on_ns,
        mean_off_ns=mean_off_ns,
    )


@register(
    "ring-allreduce",
    "2(N-1)-phase ring all-reduce collective (data-parallel training)",
    synchronous=True,
    data_bytes=256 * KB,
    at_ns=10_000.0,
    phase_gap_ns="auto",
)
def _ring_allreduce(
    scale, load, duration_ns, rng, *, data_bytes, at_ns, phase_gap_ns
):
    # "auto" paces phases at the chunk's host-NIC serialization time
    # (resolved inside the generator); an explicit gap must be positive.
    return ring_allreduce_workload(
        scale.num_tors,
        data_bytes,
        at_ns=at_ns,
        phase_gap_ns=None if phase_gap_ns == "auto" else phase_gap_ns,
        host_aggregate_gbps=scale.host_aggregate_gbps,
    )


@register(
    "shuffle",
    "repeated synchronous all-to-all rounds (MoE / map-reduce shuffle)",
    synchronous=True,
    chunk_bytes=10 * KB,
    rounds=2,
    at_ns=10_000.0,
    round_gap_ns=100_000.0,
)
def _shuffle(
    scale, load, duration_ns, rng, *, chunk_bytes, rounds, at_ns, round_gap_ns
):
    return shuffle_workload(
        scale.num_tors,
        chunk_bytes,
        rounds=rounds,
        at_ns=at_ns,
        round_gap_ns=round_gap_ns,
    )
