"""Fleet campaigns: N independent workers draining one spec grid.

``repro campaign run --store X`` can be launched any number of times, on
one host or many sharing a filesystem, and every launch converges on the
same store state: each worker *leases* a batch of pending specs, runs
them through the ordinary :class:`~repro.sweep.runner.SweepRunner`, and
loops until nothing in the grid is missing.  Three properties make this
safe without a coordinator (DESIGN.md §17):

* **Leases are advisory and expiring.**  A lease is a row ``(spec_hash,
  owner, expires_at)``; claiming skips specs whose lease is live and
  held by someone else.  The runner's liveness callbacks renew the lease
  while a spec executes, so a healthy worker never loses one — and a
  crashed worker's leases simply expire, letting a peer take over.
* **Completion is idempotent.**  Results are keyed by spec content hash
  and ``content_digest()`` folds to the last row per hash, so the worst
  case of a lost lease race — two workers executing the same spec — is
  a redundant row, not a divergent store.
* **The store is the only ground truth.**  Workers re-read
  ``completed_hashes()`` every round; a spec finished by anyone, ever
  (including a prior campaign imported via ``cache_from``), is work no
  one repeats.

Lease state lives next to the results: in the ``leases`` table of a
SQLite store, or in a ``leases.jsonl`` sidecar (guarded by an
``flock``-ed lock file) for JSONL and sharded stores.
"""

from __future__ import annotations

import contextlib
import json
import os
import socket
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from .backends import SqliteBackend, _append_bytes, sidecar_path
from .runner import SweepRunner
from .spec import RunSpec
from .store import ResultStore

try:  # POSIX file locking for the sidecar lease log; absent on some
    import fcntl  # platforms, where lease claims degrade to best-effort.
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

DEFAULT_LEASE_TTL_S = 60.0
DEFAULT_LEASE_BATCH = 8

LEASES_NAME = "leases.jsonl"
LEASES_LOCK_NAME = "leases.lock"


def default_worker_id() -> str:
    """``host-pid``: unique per process, readable in manifests."""
    return f"{socket.gethostname()}-{os.getpid()}"


class LeaseStore:
    """The lease protocol both implementations satisfy.

    All methods take ``owner`` explicitly so one lease store can be
    probed on behalf of any worker (the status command does exactly
    that).  ``claim`` is the only operation that must be atomic across
    workers; ``renew`` and ``release`` only ever touch rows the owner
    already holds, so a lost race there is harmless.
    """

    def claim(
        self, hashes: Sequence[str], owner: str, ttl_s: float, limit: int
    ) -> list[str]:
        raise NotImplementedError

    def renew(self, spec_hash: str, owner: str, ttl_s: float) -> None:
        raise NotImplementedError

    def release(self, hashes: Sequence[str], owner: str) -> None:
        raise NotImplementedError

    def snapshot(self) -> dict[str, tuple[str, float]]:
        """{spec_hash: (owner, expires_at)} for every recorded lease."""
        raise NotImplementedError


class SqliteLeases(LeaseStore):
    """Leases in the SQLite store itself — one transaction, no lock file."""

    def __init__(self, backend: SqliteBackend, clock=time.time) -> None:
        self.backend = backend
        self._clock = clock

    def claim(
        self, hashes: Sequence[str], owner: str, ttl_s: float, limit: int
    ) -> list[str]:
        conn = self.backend.connection()
        now = self._clock()
        claimed: list[str] = []
        # BEGIN IMMEDIATE takes the write lock up front, so two workers
        # claiming concurrently serialize and each sees the other's rows.
        conn.execute("BEGIN IMMEDIATE")
        try:
            for spec_hash in hashes:
                if len(claimed) >= limit:
                    break
                row = conn.execute(
                    "SELECT owner, expires_at FROM leases WHERE spec_hash = ?",
                    (spec_hash,),
                ).fetchone()
                if row is not None and row[0] != owner and row[1] > now:
                    continue  # live lease held by a peer
                conn.execute(
                    "INSERT INTO leases (spec_hash, owner, expires_at) "
                    "VALUES (?, ?, ?) ON CONFLICT(spec_hash) DO UPDATE SET "
                    "owner = excluded.owner, expires_at = excluded.expires_at",
                    (spec_hash, owner, now + ttl_s),
                )
                claimed.append(spec_hash)
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise
        return claimed

    def renew(self, spec_hash: str, owner: str, ttl_s: float) -> None:
        self.backend.connection().execute(
            "UPDATE leases SET expires_at = ? "
            "WHERE spec_hash = ? AND owner = ?",
            (self._clock() + ttl_s, spec_hash, owner),
        )

    def release(self, hashes: Sequence[str], owner: str) -> None:
        conn = self.backend.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            for spec_hash in hashes:
                conn.execute(
                    "DELETE FROM leases WHERE spec_hash = ? AND owner = ?",
                    (spec_hash, owner),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def snapshot(self) -> dict[str, tuple[str, float]]:
        rows = self.backend.connection().execute(
            "SELECT spec_hash, owner, expires_at FROM leases"
        )
        return {h: (owner, expires) for h, owner, expires in rows}


class FileLeases(LeaseStore):
    """Leases as an append-only JSONL sidecar, serialized by ``flock``.

    The log folds last-row-per-hash (the result-store idiom), so claim,
    renew, and release are all single O_APPEND writes; a release is a
    row with ``expires_at`` 0.  Claims hold an exclusive ``flock`` on a
    lock file across the read-fold-append sequence so two workers cannot
    claim the same spec; where ``fcntl`` is unavailable the lock is a
    no-op and the content-hash idempotence of the store bounds the
    damage at redundant execution.
    """

    def __init__(
        self,
        store_path,
        kind: str | None = None,
        clock=time.time,
    ) -> None:
        self.path = sidecar_path(store_path, LEASES_NAME, kind)
        self.lock_path = sidecar_path(store_path, LEASES_LOCK_NAME, kind)
        self._clock = clock

    @contextlib.contextmanager
    def _locked(self):
        self.lock_path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.lock_path, os.O_WRONLY | os.O_CREAT, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            yield
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def _table(self) -> dict[str, tuple[str, float]]:
        table: dict[str, tuple[str, float]] = {}
        try:
            handle = self.path.open()
        except FileNotFoundError:
            return table
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn trailing line from a crashed writer
                table[row["spec_hash"]] = (row["owner"], row["expires_at"])
        return table

    def _append(self, rows: Iterable[tuple[str, str, float]]) -> None:
        data = "".join(
            json.dumps(
                {"spec_hash": h, "owner": owner, "expires_at": expires},
                sort_keys=True,
            )
            + "\n"
            for h, owner, expires in rows
        )
        if data:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            _append_bytes(self.path, data.encode())

    def claim(
        self, hashes: Sequence[str], owner: str, ttl_s: float, limit: int
    ) -> list[str]:
        with self._locked():
            table = self._table()
            now = self._clock()
            claimed: list[str] = []
            for spec_hash in hashes:
                if len(claimed) >= limit:
                    break
                held = table.get(spec_hash)
                if held is not None and held[0] != owner and held[1] > now:
                    continue
                claimed.append(spec_hash)
            self._append((h, owner, now + ttl_s) for h in claimed)
            return claimed

    def renew(self, spec_hash: str, owner: str, ttl_s: float) -> None:
        with self._locked():
            held = self._table().get(spec_hash)
            if held is None or held[0] != owner:
                return  # lease expired and was taken over; don't steal back
            self._append([(spec_hash, owner, self._clock() + ttl_s)])

    def release(self, hashes: Sequence[str], owner: str) -> None:
        with self._locked():
            table = self._table()
            self._append(
                (h, owner, 0.0)
                for h in hashes
                if table.get(h, ("", 0.0))[0] == owner
            )

    def snapshot(self) -> dict[str, tuple[str, float]]:
        with self._locked():
            return self._table()


def make_lease_store(store: ResultStore) -> LeaseStore:
    """The lease store matching a result store's backend."""
    if isinstance(store.backend, SqliteBackend):
        return SqliteLeases(store.backend)
    return FileLeases(store.path, kind=store.backend_kind)


@dataclass
class CampaignReport:
    """What one ``run_campaign`` call did, in convergence terms.

    ``executed + cached + done_elsewhere + failed`` covers the grid:
    every spec was either simulated here, already complete when this
    worker started (including rows imported from ``cache_from``),
    finished by a peer while this worker ran, or failed everywhere it
    was tried.
    """

    worker: str
    total: int
    executed: int
    cached: int
    imported: int
    done_elsewhere: int
    failed: int
    rounds: int
    elapsed_s: float
    manifest_path: str | None = None

    def to_dict(self) -> dict:
        return {
            "worker": self.worker,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "imported": self.imported,
            "done_elsewhere": self.done_elsewhere,
            "failed": self.failed,
            "rounds": self.rounds,
            "elapsed_s": round(self.elapsed_s, 6),
            "manifest_path": self.manifest_path,
        }


def run_campaign(
    specs: Iterable[RunSpec],
    store: ResultStore,
    *,
    worker: str | None = None,
    lease_ttl_s: float = DEFAULT_LEASE_TTL_S,
    lease_batch: int = DEFAULT_LEASE_BATCH,
    cache_from: Sequence[ResultStore] = (),
    poll_s: float | None = None,
    sleep: Callable[[float], None] = time.sleep,
    **runner_kwargs,
) -> CampaignReport:
    """Drain a spec grid as one worker of a possibly-concurrent fleet.

    Launched N times against the same store (serially or concurrently),
    the store converges to the same ``content_digest()`` as a single
    serial sweep of the grid.  ``cache_from`` stores (any backend) are
    consulted first: rows for grid specs this store lacks are imported
    verbatim, so a superset campaign re-executes only what is genuinely
    new.  ``runner_kwargs`` pass through to :class:`SweepRunner`
    (``jobs``, ``retry``, ``on_error``, ``telemetry``, ...).
    """
    if lease_ttl_s <= 0:
        raise ValueError("lease_ttl_s must be positive")
    if lease_batch < 1:
        raise ValueError("lease_batch must be at least 1")
    if worker is None:
        worker = default_worker_id()
    if poll_s is None:
        # Sleep long enough not to hammer the store, short enough to
        # notice a peer's expired lease promptly.
        poll_s = max(0.05, min(2.0, lease_ttl_s / 4.0))

    grid: dict[str, RunSpec] = {}
    for spec in specs:
        grid.setdefault(spec.content_hash, spec)

    started = time.time()
    imported = (
        store.merge(cache_from, only_hashes=set(grid)) if cache_from else 0
    )
    completed_at_start = store.completed_hashes() & set(grid)

    leases = make_lease_store(store)
    runner = SweepRunner(
        store=store,
        resume=False,  # the campaign loop does its own completion check
        worker=worker,
        on_worker_heartbeat=(
            lambda spec_hash: leases.renew(spec_hash, worker, lease_ttl_s)
        ),
        **runner_kwargs,
    )

    failed_here: set[str] = set()
    rounds = 0
    while True:
        completed = store.completed_hashes()
        pending = [
            h for h in grid if h not in completed and h not in failed_here
        ]
        if not pending:
            break
        claimed = leases.claim(pending, worker, lease_ttl_s, lease_batch)
        if not claimed:
            # Everything pending is leased by live peers: wait for their
            # results to land, or their leases to expire for takeover.
            sleep(poll_s)
            continue
        # Re-check completion now that the leases are ours: a peer may
        # have finished and released one of these specs between our
        # pending snapshot and the claim.  Workers store a result before
        # releasing its lease, so anything released-by-completion is
        # visible here — this is what makes "each spec executes exactly
        # once" hold under concurrency, not just "the digest converges".
        completed = store.completed_hashes()
        todo = [h for h in claimed if h not in completed]
        if not todo:
            leases.release(claimed, worker)
            continue
        rounds += 1
        try:
            runner.run([grid[h] for h in todo])
        finally:
            leases.release(claimed, worker)
        failed_here |= runner.failed_hashes()

    manifest_path = None
    if runner.telemetry_path is not None:
        # One manifest per worker (keyed by worker id), because N
        # concurrent workers sharing the store's default manifest
        # sidecar would silently overwrite each other's attempt
        # histories.
        from ..telemetry.manifest import write_manifest

        manifest_path = store.sidecar(f"manifest-{worker}.json")
        write_manifest(manifest_path, runner.build_manifest())

    completed_final = store.completed_hashes() & set(grid)
    newly_done = len(completed_final) - len(completed_at_start)
    return CampaignReport(
        worker=worker,
        total=len(grid),
        executed=runner.executed,
        cached=len(completed_at_start),
        imported=imported,
        done_elsewhere=max(0, newly_done - runner.executed),
        failed=len(failed_here - completed_final),
        rounds=rounds,
        elapsed_s=time.time() - started,
        manifest_path=str(manifest_path) if manifest_path is not None else None,
    )


def campaign_status(
    store: ResultStore, specs: Iterable[RunSpec] | None = None
) -> dict:
    """A point-in-time view of a campaign store for ``repro campaign
    status``: completion counts, the convergence digest, and live leases.
    """
    now = time.time()
    completed = store.completed_hashes()
    leases = make_lease_store(store)
    active = {
        h: {"owner": owner, "expires_in_s": round(expires - now, 3)}
        for h, (owner, expires) in sorted(leases.snapshot().items())
        if expires > now and h not in completed
    }
    status: dict = {
        "store": str(store.path),
        "backend": store.backend_kind,
        "completed": len(completed),
        "active_leases": active,
        "content_digest": store.content_digest() if completed else None,
    }
    if specs is not None:
        grid = {spec.content_hash for spec in specs}
        status["total"] = len(grid)
        status["pending"] = len(grid - completed)
    return status
