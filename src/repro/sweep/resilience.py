"""Fault-tolerant spec execution: retries, timeouts, crash-safe workers.

The machinery that lets a sweep over thousands of specs survive the
failures an unattended campaign actually hits (DESIGN.md §13):

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  *deterministic* jitter derived from the spec hash, so two runs of the
  same poisoned grid produce the same retry schedule.
* :class:`SpecOutcome` — the per-spec verdict (``ok`` / ``failed`` /
  ``timed-out`` / ``crashed``) with per-attempt elapsed times and the last
  error + traceback, recorded for every spec a runner executes.
* :class:`WorkerPool` — a small process pool built directly on
  ``multiprocessing`` pipes instead of ``ProcessPoolExecutor``, because
  fault tolerance needs exactly what the executor hides: *which* worker
  runs *which* spec.  A hung worker is killed (per-spec ``timeout_s``) and
  only its spec is retried; a crashed worker (segfault, ``os._exit``, OOM
  kill) is detected through its process sentinel and respawned, and again
  only the in-flight spec is requeued.  Healthy workers never notice.
* :func:`run_with_retries` — the scheduling loop tying the above together
  for :class:`~repro.sweep.runner.SweepRunner`.
* :class:`QuarantineLog` — the append-only JSONL sidecar where specs that
  exhaust their retries land (full spec + outcome + traceback), so the
  rest of the grid completes and the poisoned points stay diagnosable and
  re-runnable.

Workers receive ``(spec dict, attempt)`` and reply with either
``("ok", summary dict, elapsed)`` or ``("error", type, message,
traceback, elapsed)`` — plain JSON-able payloads, so a protocol message
can never fail to unpickle.  Chaos faults (:mod:`repro.sweep.chaos`) are
injected inside the worker via the shared execution helper, which is how
the chaos tests crash, hang, and fail real workers on demand.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import traceback as traceback_module
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_connections
from pathlib import Path

from .backends import sidecar_path
from .spec import RunSpec

OK = "ok"
FAILED = "failed"
TIMED_OUT = "timed-out"
CRASHED = "crashed"

#: Pipe-message/pool-event tag for a worker liveness report — never a
#: terminal attempt status (DESIGN.md §14).
HEARTBEAT = "heartbeat"

STATUSES = (OK, FAILED, TIMED_OUT, CRASHED)

ON_ERROR_MODES = ("fail", "skip", "quarantine")

QUARANTINE_VERSION = 1


class SweepExecutionError(RuntimeError):
    """A spec exhausted its attempts under ``on_error="fail"``.

    Carries the spec and its :class:`SpecOutcome` so callers can report
    the failing point without parsing the message.
    """

    def __init__(self, spec: RunSpec, outcome: "SpecOutcome") -> None:
        self.spec = spec
        self.outcome = outcome
        detail = f": {outcome.error}" if outcome.error else ""
        super().__init__(
            f"spec {spec.short_hash} ({spec.label()}) {outcome.status} "
            f"after {outcome.attempts} attempt(s){detail}"
        )


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempts with exponential backoff and deterministic jitter.

    The delay after failed attempt *k* (1-based) is::

        min(max_backoff_s, backoff_base_s * backoff_factor**(k-1))
            * (1 + jitter_frac * u)

    where ``u`` in [0, 1) is derived from SHA-256 of ``"{spec_hash}:{k}"``
    — per-spec, per-attempt, and fully reproducible.  Jitter exists so a
    fleet retrying a correlated failure (say, a briefly unavailable shared
    resource) fans back in staggered rather than as a thundering herd;
    deriving it from the spec hash keeps the whole retry schedule a pure
    function of the grid.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.1
    backoff_factor: float = 2.0
    max_backoff_s: float = 30.0
    jitter_frac: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be non-negative")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be at least 1")
        if self.max_backoff_s < 0:
            raise ValueError("max_backoff_s must be non-negative")
        if self.jitter_frac < 0:
            raise ValueError("jitter_frac must be non-negative")

    def delay_s(self, attempt: int, spec_hash: str) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        base = min(
            self.max_backoff_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        digest = hashlib.sha256(f"{spec_hash}:{attempt}".encode()).digest()
        unit = int.from_bytes(digest[:8], "big") / 2**64  # [0, 1)
        return base * (1.0 + self.jitter_frac * unit)


NO_RETRY = RetryPolicy(max_attempts=1)
"""The default: one attempt, no backoff — plain fail-fast execution."""


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------


@dataclass
class Attempt:
    """One execution attempt of one spec."""

    status: str
    elapsed_s: float
    error: str | None = None
    traceback: str | None = None


@dataclass
class SpecOutcome:
    """The final verdict for one spec across all its attempts."""

    spec_hash: str
    status: str
    attempts: int
    elapsed_s: tuple[float, ...]
    attempt_statuses: tuple[str, ...]
    error: str | None = None
    traceback: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK

    @classmethod
    def from_attempts(
        cls, spec_hash: str, history: Sequence[Attempt]
    ) -> "SpecOutcome":
        last = history[-1]
        return cls(
            spec_hash=spec_hash,
            status=last.status,
            attempts=len(history),
            elapsed_s=tuple(a.elapsed_s for a in history),
            attempt_statuses=tuple(a.status for a in history),
            error=last.error,
            traceback=last.traceback,
        )

    def to_dict(self) -> dict:
        return {
            "spec_hash": self.spec_hash,
            "status": self.status,
            "attempts": self.attempts,
            "elapsed_s": list(self.elapsed_s),
            "attempt_statuses": list(self.attempt_statuses),
            "error": self.error,
            "traceback": self.traceback,
        }


# ---------------------------------------------------------------------------
# the quarantine sidecar
# ---------------------------------------------------------------------------


class QuarantineLog:
    """Append-only JSONL sidecar for specs that exhausted their retries.

    Each row carries the full spec (so a quarantined point can be re-run
    or re-gridded without the original command line), the outcome, and
    the last error + traceback.  Appends are single O_APPEND writes like
    the result store's, so a crashing sweep can at worst tear its own
    last line.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def put(self, spec: RunSpec, outcome: SpecOutcome) -> None:
        row = {
            "quarantine_version": QUARANTINE_VERSION,
            "spec": spec.to_dict(),
            **outcome.to_dict(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(row, sort_keys=True) + "\n").encode()
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def rows(self) -> list[dict]:
        """All valid quarantine rows (torn lines skipped, like the store)."""
        if not self.path.exists():
            return []
        rows = []
        with self.path.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(row, dict) and "spec_hash" in row:
                    rows.append(row)
        return rows

    def hashes(self) -> set[str]:
        return {row["spec_hash"] for row in self.rows()}


def default_quarantine_path(store_path: str | Path) -> Path:
    """The quarantine sidecar for a store, whatever its backend.

    ``sweep.jsonl -> sweep.quarantine.jsonl`` (the legacy derivation),
    but a SQLite store keeps its suffix (``camp.db ->
    camp.db.quarantine.jsonl``) and a sharded directory holds the
    sidecar inside itself — the old ``.jsonl`` suffix-swap silently
    mangled both.
    """
    return sidecar_path(store_path, "quarantine.jsonl")


# ---------------------------------------------------------------------------
# the crash-safe worker pool
# ---------------------------------------------------------------------------


def _heartbeat_loop(
    conn, send_lock, spec_hash, attempt, started, interval_s, stop
) -> None:
    """Worker-side heartbeat timer: one liveness report per interval.

    Runs as a daemon thread for the duration of one spec.  Sends share
    the result pipe, serialized by ``send_lock`` so a heartbeat can never
    interleave bytes with the final result message.
    """
    from ..telemetry.heartbeat import heartbeat_payload

    while not stop.wait(interval_s):
        payload = heartbeat_payload(
            spec_hash, attempt, time.perf_counter() - started
        )
        try:
            with send_lock:
                if stop.is_set():
                    return
                conn.send((HEARTBEAT, payload))
        except (BrokenPipeError, OSError):
            return


def _worker_main(conn, heartbeat_s: float | None = None) -> None:
    """One worker process: receive (spec dict, attempt), reply with results.

    SIGINT is ignored so a terminal Ctrl-C delivered to the process group
    interrupts only the parent, which then shuts workers down explicitly —
    workers must never die mid-protocol for a reason the parent can't see.

    With ``heartbeat_s`` set, a per-spec timer thread sends
    ``(HEARTBEAT, payload)`` reports over the same pipe while the spec
    executes; the thread is stopped and joined before the final result is
    sent, so a result is always the last message of its spec.
    """
    import signal
    import threading

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    # Imported lazily: the runner imports this module at load time.
    from .runner import _timed_execute

    send_lock = threading.Lock()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            return
        spec_dict, attempt = message
        started = time.perf_counter()
        stop = None
        beat = None
        try:
            spec = RunSpec.from_dict(spec_dict)
            if heartbeat_s is not None:
                stop = threading.Event()
                beat = threading.Thread(
                    target=_heartbeat_loop,
                    args=(
                        conn,
                        send_lock,
                        spec.content_hash,
                        attempt,
                        started,
                        heartbeat_s,
                        stop,
                    ),
                    daemon=True,
                )
                beat.start()
            _, summary, elapsed = _timed_execute(spec, attempt=attempt)
            payload = (OK, summary.to_dict(), elapsed)
        except BaseException as exc:  # noqa: BLE001 — report, don't die
            payload = (
                FAILED,
                f"{type(exc).__name__}: {exc}",
                traceback_module.format_exc(),
                time.perf_counter() - started,
            )
        finally:
            if stop is not None:
                stop.set()
                beat.join()
        try:
            with send_lock:
                conn.send(payload)
        except (BrokenPipeError, OSError):
            return


@dataclass
class PoolEvent:
    """One event reported by :meth:`WorkerPool.wait`.

    Either a resolved execution attempt (``ok`` / ``failed`` /
    ``timed-out`` / ``crashed``) or a ``heartbeat`` liveness report from
    a still-busy worker (``heartbeat`` payload set, spec unresolved).
    """

    kind: str  # ok / failed / timed-out / crashed / heartbeat
    spec: RunSpec
    attempt: int
    elapsed_s: float
    summary_dict: dict | None = None
    error: str | None = None
    traceback: str | None = None
    heartbeat: dict | None = None


class _Worker:
    __slots__ = ("process", "conn", "spec", "attempt", "started", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.spec: RunSpec | None = None
        self.attempt = 0
        self.started = 0.0
        self.deadline: float | None = None


class WorkerPool:
    """A fixed-size pool of single-spec workers the parent can kill.

    Unlike ``ProcessPoolExecutor``, task-to-worker assignment is explicit,
    which is what makes per-spec timeouts (kill exactly the hung worker)
    and crash containment (requeue exactly the in-flight spec) possible.
    Dead workers — killed by us or by the OS — are replaced immediately,
    so the pool is always at full strength.
    """

    def __init__(
        self, workers: int, *, heartbeat_s: float | None = None
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        self._heartbeat_s = heartbeat_s
        self._ctx = get_context()
        self._workers = [self._spawn() for _ in range(workers)]
        self.respawned = 0
        """Workers replaced after a crash or timeout kill (observability)."""

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._heartbeat_s),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _Worker(process, parent_conn)

    # -- bookkeeping ----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._workers)

    def idle_count(self) -> int:
        return sum(1 for w in self._workers if w.spec is None)

    def busy_count(self) -> int:
        return sum(1 for w in self._workers if w.spec is not None)

    def next_deadline(self) -> float | None:
        deadlines = [
            w.deadline
            for w in self._workers
            if w.spec is not None and w.deadline is not None
        ]
        return min(deadlines) if deadlines else None

    # -- task lifecycle -------------------------------------------------

    def assign(
        self, spec: RunSpec, attempt: int, timeout_s: float | None
    ) -> None:
        """Hand one spec to an idle worker (caller checks ``idle_count``)."""
        for worker in self._workers:
            if worker.spec is None:
                break
        else:
            raise RuntimeError("assign() called with no idle worker")
        worker.spec = spec
        worker.attempt = attempt
        worker.started = time.monotonic()
        worker.deadline = (
            worker.started + timeout_s if timeout_s is not None else None
        )
        worker.conn.send((spec.to_dict(), attempt))

    def wait(self, timeout: float | None) -> list[PoolEvent]:
        """Block until events arrive (or ``timeout``); resolve them all.

        An event is a completed attempt, a reported error, a detected
        worker crash, or an expired per-spec deadline.  Crashed and
        timed-out workers are respawned before this returns.
        """
        busy = [w for w in self._workers if w.spec is not None]
        if not busy:
            return []
        handles: dict[object, _Worker] = {}
        for worker in busy:
            handles[worker.conn] = worker
            # The process sentinel fires the instant the worker dies, even
            # when it never got to send anything (os._exit, SIGKILL, OOM).
            handles[worker.process.sentinel] = worker
        ready = _wait_connections(list(handles), timeout)
        events: list[PoolEvent] = []
        resolved: set[int] = set()
        for handle in ready:
            worker = handles[handle]
            if id(worker) in resolved:
                continue
            resolved.add(id(worker))
            events.extend(self._resolve(worker))
        now = time.monotonic()
        for worker in busy:
            if (
                id(worker) not in resolved
                and worker.deadline is not None
                and now >= worker.deadline
            ):
                events.append(self._expire(worker))
        return events

    def _resolve(self, worker: _Worker) -> list[PoolEvent]:
        """Turn one signalled worker into events (messages or a crash).

        Drains the pipe completely: heartbeats precede the spec's final
        result (the worker joins its heartbeat thread before sending it),
        so the drain yields zero or more heartbeat events optionally
        followed by one terminal event.  A worker whose pipe holds only
        heartbeats stays busy.
        """
        spec, attempt = worker.spec, worker.attempt
        elapsed = time.monotonic() - worker.started
        events: list[PoolEvent] = []
        while True:
            message = None
            try:
                # A worker that sent its result and *then* died still
                # counts as a completed attempt — drain the pipe before
                # checking the process.
                if worker.conn.poll(0):
                    message = worker.conn.recv()
            except (EOFError, OSError):
                message = None
            if message is None:
                break
            if message[0] == HEARTBEAT:
                events.append(
                    PoolEvent(
                        HEARTBEAT,
                        spec,
                        attempt,
                        time.monotonic() - worker.started,
                        heartbeat=message[1],
                    )
                )
                continue
            worker.spec = None
            worker.deadline = None
            if message[0] == OK:
                _, summary_dict, worker_elapsed = message
                events.append(
                    PoolEvent(
                        OK,
                        spec,
                        attempt,
                        worker_elapsed,
                        summary_dict=summary_dict,
                    )
                )
            else:
                _, error, tb, worker_elapsed = message
                events.append(
                    PoolEvent(
                        FAILED,
                        spec,
                        attempt,
                        worker_elapsed,
                        error=error,
                        traceback=tb,
                    )
                )
            return events
        if worker.process.is_alive():
            # Only heartbeats were pending; the spec is still running.
            return events
        # No final message and the worker is gone: it died mid-spec.
        exitcode = self._reap(worker)
        events.append(
            PoolEvent(
                CRASHED,
                spec,
                attempt,
                elapsed,
                error=f"worker crashed (exit code {exitcode})",
            )
        )
        return events

    def _expire(self, worker: _Worker) -> PoolEvent:
        """Kill a worker that blew its per-spec deadline."""
        spec, attempt = worker.spec, worker.attempt
        elapsed = time.monotonic() - worker.started
        timeout_s = (
            worker.deadline - worker.started
            if worker.deadline is not None
            else 0.0
        )
        self._reap(worker, kill=True)
        return PoolEvent(
            TIMED_OUT,
            spec,
            attempt,
            elapsed,
            error=f"timed out after {timeout_s:g}s (worker killed)",
        )

    def _reap(self, worker: _Worker, kill: bool = False) -> int | None:
        """Retire one worker (killing it first if asked) and respawn."""
        if kill and worker.process.is_alive():
            worker.process.kill()
        worker.process.join()
        worker.conn.close()
        exitcode = worker.process.exitcode
        self._workers[self._workers.index(worker)] = self._spawn()
        self.respawned += 1
        return exitcode

    def shutdown(self) -> None:
        """Stop every worker: polite to idle ones, kill to busy ones."""
        for worker in self._workers:
            if worker.spec is None:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            else:
                # Busy workers may be hung — never wait on them.
                worker.process.kill()
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            worker.conn.close()
        self._workers = []


# ---------------------------------------------------------------------------
# the scheduling loop
# ---------------------------------------------------------------------------


def run_with_retries(
    specs: Sequence[RunSpec],
    *,
    jobs: int,
    policy: RetryPolicy,
    timeout_s: float | None,
    on_error: str,
    on_ok: Callable[[RunSpec, dict, SpecOutcome], None],
    on_exhausted: Callable[[RunSpec, SpecOutcome], None] | None = None,
    outcomes: dict[str, SpecOutcome] | None = None,
    on_heartbeat: Callable[[RunSpec, dict], None] | None = None,
    heartbeat_s: float | None = None,
) -> dict[str, SpecOutcome]:
    """Run specs through a :class:`WorkerPool` under a retry policy.

    ``on_ok(spec, summary_dict, outcome)`` fires as each spec completes;
    ``on_exhausted(spec, outcome)`` fires when a spec runs out of attempts
    under ``on_error`` "skip"/"quarantine".  Under ``on_error="fail"`` the
    first exhausted spec raises :class:`SweepExecutionError` (after the
    pool is torn down); every outcome resolved so far — including the
    failing one — is recorded in ``outcomes``, which is returned.

    With ``heartbeat_s`` set, workers report liveness every interval and
    ``on_heartbeat(spec, payload)`` fires per report; heartbeats never
    count as attempts.

    Backoff between attempts is wall-clock but scheduling never busy-waits:
    the loop sleeps until the earliest of (next per-spec deadline, next
    retry eligibility, next worker message).
    """
    if on_error not in ON_ERROR_MODES:
        raise ValueError(
            f"unknown on_error mode {on_error!r}; choose from {ON_ERROR_MODES}"
        )
    outcomes = outcomes if outcomes is not None else {}
    if not specs:
        return outcomes
    histories: dict[str, list[Attempt]] = {
        spec.content_hash: [] for spec in specs
    }
    ready: deque[tuple[RunSpec, int]] = deque((spec, 1) for spec in specs)
    waiting: list[tuple[float, int, RunSpec, int]] = []  # (eligible_at, seq)
    sequence = itertools.count()
    unresolved = len(histories)
    pool = WorkerPool(min(jobs, len(histories)), heartbeat_s=heartbeat_s)
    try:
        while unresolved:
            now = time.monotonic()
            while waiting and waiting[0][0] <= now:
                _, _, spec, attempt = heappop(waiting)
                ready.append((spec, attempt))
            while ready and pool.idle_count():
                spec, attempt = ready.popleft()
                pool.assign(spec, attempt, timeout_s)
            if not pool.busy_count():
                # Nothing running: everything unresolved is backing off.
                assert waiting, "scheduler stalled with unresolved specs"
                time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue
            wakeups = [
                t
                for t in (
                    pool.next_deadline(),
                    waiting[0][0] if waiting else None,
                )
                if t is not None
            ]
            timeout = (
                max(0.0, min(wakeups) - time.monotonic()) if wakeups else None
            )
            for event in pool.wait(timeout):
                if event.kind == HEARTBEAT:
                    if on_heartbeat is not None:
                        on_heartbeat(event.spec, event.heartbeat)
                    continue
                spec_hash = event.spec.content_hash
                history = histories[spec_hash]
                history.append(
                    Attempt(
                        event.kind,
                        event.elapsed_s,
                        event.error,
                        event.traceback,
                    )
                )
                if event.kind == OK:
                    outcome = SpecOutcome.from_attempts(spec_hash, history)
                    outcomes[spec_hash] = outcome
                    unresolved -= 1
                    on_ok(event.spec, event.summary_dict, outcome)
                elif event.attempt < policy.max_attempts:
                    delay = policy.delay_s(event.attempt, spec_hash)
                    heappush(
                        waiting,
                        (
                            time.monotonic() + delay,
                            next(sequence),
                            event.spec,
                            event.attempt + 1,
                        ),
                    )
                else:
                    outcome = SpecOutcome.from_attempts(spec_hash, history)
                    outcomes[spec_hash] = outcome
                    unresolved -= 1
                    if on_error == "fail":
                        raise SweepExecutionError(event.spec, outcome)
                    if on_exhausted is not None:
                        on_exhausted(event.spec, outcome)
    finally:
        pool.shutdown()
    return outcomes
