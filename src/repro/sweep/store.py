"""Content-addressed JSONL result store with resume support.

One line per completed run::

    {"spec_hash": "...", "spec": {...}, "summary": {...},
     "elapsed_s": 1.23, "store_version": 1}

Appending a line is the only write operation, so concurrent sweeps against
the same store at worst duplicate a run — they never corrupt each other
(the last line for a hash wins on load).  The hash is the spec's canonical
content hash (:meth:`repro.sweep.spec.RunSpec.content_hash`), so a store
entry is valid for exactly the run it describes: change any spec field and
the lookup misses, change the spec schema and ``SPEC_VERSION`` rolls every
hash over.

Float fidelity: summaries round-trip bit-exactly because ``json`` emits
CPython's shortest round-trip ``repr`` for floats.  The determinism
regression in tests/test_sweep.py leans on this.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..sim.metrics import RunSummary
from .spec import RunSpec

STORE_VERSION = 1


class StoreError(ValueError):
    """A store file exists but cannot be parsed."""


class ResultStore:
    """Append-only JSONL store keyed by spec content hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.skipped_rows = 0

    def exists(self) -> bool:
        """Whether the backing file exists."""
        return self.path.exists()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def rows(self, strict: bool = False) -> list[dict]:
        """All valid rows in file order (empty when the file is absent).

        Torn lines — a sweep killed mid-append, or interleaved writes from
        concurrent sweeps — are skipped (counted in ``skipped_rows``) so an
        interrupted sweep stays resumable; the affected runs simply re-run.
        ``strict=True`` raises :class:`StoreError` on the first bad line
        instead, for integrity checks.
        """
        self.skipped_rows = 0
        if not self.path.exists():
            return []
        rows = []
        with self.path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as exc:
                    if strict:
                        raise StoreError(
                            f"{self.path}:{line_number}: not valid JSON "
                            f"({exc})"
                        ) from None
                    self.skipped_rows += 1
                    continue
                if not isinstance(row, dict) or "spec_hash" not in row:
                    if strict:
                        raise StoreError(
                            f"{self.path}:{line_number}: row has no spec_hash"
                        )
                    self.skipped_rows += 1
                    continue
                rows.append(row)
        return rows

    def load(self) -> dict[str, RunSummary]:
        """{spec_hash: summary} with the last line winning per hash."""
        results: dict[str, RunSummary] = {}
        for row in self.rows():
            results[row["spec_hash"]] = RunSummary.from_dict(row["summary"])
        return results

    def load_specs(self) -> dict[str, RunSpec]:
        """{spec_hash: spec} for every stored row carrying a spec."""
        specs: dict[str, RunSpec] = {}
        for row in self.rows():
            if "spec" in row:
                specs[row["spec_hash"]] = RunSpec.from_dict(row["spec"])
        return specs

    def completed_hashes(self) -> set[str]:
        """Hashes with at least one stored summary."""
        return {row["spec_hash"] for row in self.rows()}

    def get(self, spec: RunSpec) -> RunSummary | None:
        """The stored summary for one spec, if any."""
        return self.load().get(spec.content_hash)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def put(
        self,
        spec: RunSpec,
        summary: RunSummary,
        elapsed_s: float | None = None,
    ) -> None:
        """Append one completed run."""
        row = {
            "spec_hash": spec.content_hash,
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
            "elapsed_s": elapsed_s,
            "store_version": STORE_VERSION,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(row, sort_keys=True) + "\n").encode()
        # One O_APPEND write(2) per row: concurrent sweeps append whole
        # lines rather than interleaving buffered fragments.
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)

    def compact(self) -> int:
        """Rewrite the file keeping only the last row per hash.

        Returns the number of rows dropped.  Useful after repeated
        re-sweeps of the same grid.
        """
        rows = self.rows()
        latest: dict[str, dict] = {}
        for row in rows:
            latest[row["spec_hash"]] = row
        dropped = len(rows) - len(latest)
        if dropped:
            with self.path.open("w") as handle:
                for row in latest.values():
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
        return dropped
