"""Content-addressed JSONL result store with resume support.

One line per completed run::

    {"spec_hash": "...", "spec": {...}, "summary": {...},
     "elapsed_s": 1.23, "store_version": 1, "row_sha256": "..."}

Appending a line is the only write operation, so concurrent sweeps against
the same store at worst duplicate a run — they never corrupt each other
(the last line for a hash wins on load).  The hash is the spec's canonical
content hash (:meth:`repro.sweep.spec.RunSpec.content_hash`), so a store
entry is valid for exactly the run it describes: change any spec field and
the lookup misses, change the spec schema and ``SPEC_VERSION`` rolls every
hash over.

Integrity (DESIGN.md §13): every row written carries ``row_sha256``, a
SHA-256 over the row's canonical JSON without that field.  Reads verify
it; a mismatch — a torn append, a partial ``compact()``, disk corruption —
is treated exactly like an unparseable line: skipped in the lenient path
(the run re-executes on resume), raised with the line number in strict
mode.  Rows written before checksums existed still load (counted as
``legacy``).  ``compact()`` is atomic: the survivors are written to a
sibling temp file, fsynced, and ``os.replace``d over the original, so a
crash mid-compact leaves either the old file or the new one — never a
half-written store.  Compaction also canonicalizes: last row per hash,
sorted by hash, checksums (re)computed, torn lines dropped.

Float fidelity: summaries round-trip bit-exactly because ``json`` emits
CPython's shortest round-trip ``repr`` for floats.  The determinism
regression in tests/test_sweep.py leans on this.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.metrics import RunSummary
from .spec import RunSpec

STORE_VERSION = 1

CHECKSUM_FIELD = "row_sha256"


class StoreError(ValueError):
    """A store file exists but cannot be parsed."""


def row_checksum(row: dict) -> str:
    """SHA-256 over a row's canonical JSON, excluding the checksum field."""
    payload = {k: v for k, v in row.items() if k != CHECKSUM_FIELD}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class StoreReport:
    """What :meth:`ResultStore.verify` found in one pass over the file."""

    lines: int = 0
    rows: int = 0
    legacy_rows: int = 0  # valid rows predating checksums
    torn_lines: int = 0  # unparseable JSON or rows without a spec_hash
    checksum_mismatches: int = 0
    unique_hashes: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.torn_lines == 0 and self.checksum_mismatches == 0


class ResultStore:
    """Append-only JSONL store keyed by spec content hash."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.skipped_rows = 0
        self._cache_sig: tuple | None = None
        self._cache: dict[str, RunSummary] = {}

    def exists(self) -> bool:
        """Whether the backing file exists."""
        return self.path.exists()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _decode_line(self, line: str) -> tuple[dict | None, str | None]:
        """(row, problem) for one stripped line; row is None when bad.

        A row that parses but fails its checksum is returned as
        ``(None, reason)`` too: a corrupted row must never be served, only
        re-run.  Legacy rows (no checksum field) pass with ``problem``
        None — :meth:`verify` counts them separately via the field test.
        """
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            return None, f"not valid JSON ({exc})"
        if not isinstance(row, dict) or "spec_hash" not in row:
            return None, "row has no spec_hash"
        stored = row.get(CHECKSUM_FIELD)
        if stored is not None and stored != row_checksum(row):
            return None, "row checksum mismatch (torn or corrupted row)"
        return row, None

    def rows(self, strict: bool = False) -> list[dict]:
        """All valid rows in file order (empty when the file is absent).

        Torn lines — a sweep killed mid-append, interleaved writes from
        concurrent sweeps, or rows whose checksum no longer matches — are
        skipped (counted in ``skipped_rows``) so an interrupted sweep
        stays resumable; the affected runs simply re-run.  ``strict=True``
        raises :class:`StoreError` on the first bad line instead, for
        integrity checks.
        """
        self.skipped_rows = 0
        if not self.path.exists():
            return []
        rows = []
        with self.path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                row, problem = self._decode_line(line)
                if row is None:
                    if strict:
                        raise StoreError(
                            f"{self.path}:{line_number}: {problem}"
                        )
                    self.skipped_rows += 1
                    continue
                rows.append(row)
        return rows

    def verify(self) -> StoreReport:
        """One full integrity pass: per-line verdicts, never raises.

        The report distinguishes torn lines (unparseable) from checksum
        mismatches (parseable but corrupted) from legacy rows (valid,
        written before checksums existed), with ``path:line`` locations
        for everything wrong — the engine behind ``repro store verify``.
        """
        report = StoreReport()
        if not self.path.exists():
            return report
        hashes: set[str] = set()
        with self.path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                report.lines += 1
                row, problem = self._decode_line(line)
                if row is None:
                    if "checksum" in (problem or ""):
                        report.checksum_mismatches += 1
                    else:
                        report.torn_lines += 1
                    report.problems.append(
                        f"{self.path}:{line_number}: {problem}"
                    )
                    continue
                report.rows += 1
                if CHECKSUM_FIELD not in row:
                    report.legacy_rows += 1
                hashes.add(row["spec_hash"])
        report.unique_hashes = len(hashes)
        return report

    def content_digest(self) -> str:
        """SHA-256 over the store's *logical* content.

        Last row per hash, sorted by hash, with the volatile fields
        (``elapsed_s`` wall-clock, the checksum that covers it) excluded —
        so two stores that hold the same results digest identically no
        matter what order the rows landed in, how many superseded
        duplicates remain, or how long each run took.  This is the
        equality the chaos-convergence contract is stated in: a crashed,
        retried, resumed sweep must reach the same digest as an
        undisturbed serial run.
        """
        latest: dict[str, dict] = {}
        for row in self.rows():
            latest[row["spec_hash"]] = row
        digest = hashlib.sha256()
        for spec_hash in sorted(latest):
            row = {
                k: v
                for k, v in latest[spec_hash].items()
                if k not in ("elapsed_s", CHECKSUM_FIELD)
            }
            digest.update(json.dumps(row, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def _stat_sig(self) -> tuple | None:
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def _summaries(self) -> dict[str, RunSummary]:
        """The {hash: summary} index, parsed at most once per file state.

        Cached against the file's (mtime, size, inode) signature:
        repeated :meth:`get` calls cost one :meth:`rows` pass total, while
        an append from another process changes the signature and triggers
        a reparse.  :meth:`put` and :meth:`compact` invalidate explicitly.
        """
        sig = self._stat_sig()
        if sig is None:
            self._cache_sig = None
            self._cache = {}
            return self._cache
        if sig != self._cache_sig:
            self._cache = {
                row["spec_hash"]: RunSummary.from_dict(row["summary"])
                for row in self.rows()
            }
            self._cache_sig = sig
        return self._cache

    def _invalidate(self) -> None:
        self._cache_sig = None
        self._cache = {}

    def load(self) -> dict[str, RunSummary]:
        """{spec_hash: summary} with the last line winning per hash."""
        return dict(self._summaries())

    def load_specs(self) -> dict[str, RunSpec]:
        """{spec_hash: spec} for every stored row carrying a spec."""
        specs: dict[str, RunSpec] = {}
        for row in self.rows():
            if "spec" in row:
                specs[row["spec_hash"]] = RunSpec.from_dict(row["spec"])
        return specs

    def completed_hashes(self) -> set[str]:
        """Hashes with at least one stored summary."""
        return set(self._summaries())

    def get(self, spec: RunSpec) -> RunSummary | None:
        """The stored summary for one spec, if any (cached single pass)."""
        return self._summaries().get(spec.content_hash)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def put(
        self,
        spec: RunSpec,
        summary: RunSummary,
        elapsed_s: float | None = None,
    ) -> None:
        """Append one completed run (checksummed)."""
        row = {
            "spec_hash": spec.content_hash,
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
            "elapsed_s": elapsed_s,
            "store_version": STORE_VERSION,
        }
        row[CHECKSUM_FIELD] = row_checksum(row)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        data = (json.dumps(row, sort_keys=True) + "\n").encode()
        # One O_APPEND write(2) per row: concurrent sweeps append whole
        # lines rather than interleaving buffered fragments.
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self._invalidate()

    def compact(self) -> int:
        """Atomically rewrite the file in canonical form.

        Canonical form: the last row per hash, sorted by hash, every row
        checksummed (legacy rows are upgraded), torn lines dropped.
        Returns the number of rows dropped (superseded duplicates plus
        torn lines).  The rewrite goes through a sibling temp file, fsync,
        and ``os.replace`` — a crash at any instant leaves either the
        original file or the finished replacement, never a torn store
        (the crash-simulation test in tests/test_sweep.py interrupts the
        write and checks exactly this).
        """
        rows = self.rows()
        torn = self.skipped_rows
        latest: dict[str, dict] = {}
        needs_rewrite = torn > 0
        for row in rows:
            latest[row["spec_hash"]] = row
            if CHECKSUM_FIELD not in row:
                needs_rewrite = True
        dropped = len(rows) - len(latest) + torn
        ordered_hashes = sorted(latest)
        if list(latest) != ordered_hashes:
            needs_rewrite = True
        if dropped or needs_rewrite:
            tmp_path = self.path.with_suffix(".tmp")
            with tmp_path.open("w") as handle:
                for spec_hash in ordered_hashes:
                    row = dict(latest[spec_hash])
                    row[CHECKSUM_FIELD] = row_checksum(row)
                    handle.write(json.dumps(row, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
            self._invalidate()
        return dropped
