"""Content-addressed result store with resume support and pluggable backends.

One logical row per completed run::

    {"spec_hash": "...", "spec": {...}, "summary": {...},
     "elapsed_s": 1.23, "store_version": 1, "row_sha256": "..."}

:class:`ResultStore` owns the row semantics — canonical JSON encoding,
per-row checksums, torn-line tolerance, last-row-per-hash resolution,
and the :meth:`~ResultStore.content_digest` convergence contract — while
a :class:`~repro.sweep.backends.ResultStoreBackend` owns the bytes.
Three backends share this facade (DESIGN.md §17):

* ``jsonl`` (default) — the original single-file append-only JSONL,
  byte-identical to the pre-backend format.  Appending a line is the
  only write, so concurrent sweeps at worst duplicate a run — they never
  corrupt each other (the last row per hash wins on load).
* ``sharded`` — a directory of hash-sharded JSONL files with per-shard
  checksums, for grids too large for one file.
* ``sqlite`` — one row per hash in a WAL-mode SQLite file, safe for many
  concurrent campaign workers.

The hash is the spec's canonical content hash
(:meth:`repro.sweep.spec.RunSpec.content_hash`), so a store entry is
valid for exactly the run it describes: change any spec field and the
lookup misses, change the spec schema and ``SPEC_VERSION`` rolls every
hash over.

Integrity (DESIGN.md §13): every row written carries ``row_sha256``, a
SHA-256 over the row's canonical JSON without that field.  Reads verify
it; a mismatch — a torn append, a partial ``compact()``, disk corruption
— is treated exactly like an unparseable line: skipped in the lenient
path (the run re-executes on resume), raised with the line number in
strict mode.  Rows written before checksums existed still load (counted
as ``legacy``).  ``compact()`` is atomic per backend (tmp + fsync +
``os.replace`` for file backends, one transaction for SQLite), so a
crash mid-compact never leaves a half-written store.  Compaction also
canonicalizes: last row per hash, canonically ordered, checksums
(re)computed, torn lines dropped.  ``merge()`` pulls absent rows in from
other stores of any backend — the cross-campaign cache-reuse primitive.

Float fidelity: summaries round-trip bit-exactly because ``json`` emits
CPython's shortest round-trip ``repr`` for floats.  The determinism
regression in tests/test_sweep.py leans on this.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..sim.metrics import RunSummary
from .backends import ResultStoreBackend, make_backend, sidecar_path
from .spec import RunSpec

STORE_VERSION = 1

CHECKSUM_FIELD = "row_sha256"


class StoreError(ValueError):
    """A store file exists but cannot be parsed."""


def row_checksum(row: dict) -> str:
    """SHA-256 over a row's canonical JSON, excluding the checksum field."""
    payload = {k: v for k, v in row.items() if k != CHECKSUM_FIELD}
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


@dataclass
class StoreReport:
    """What :meth:`ResultStore.verify` found in one pass over the store."""

    lines: int = 0
    rows: int = 0
    legacy_rows: int = 0  # valid rows predating checksums
    torn_lines: int = 0  # unparseable JSON or rows without a spec_hash
    checksum_mismatches: int = 0
    unique_hashes: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.torn_lines == 0 and self.checksum_mismatches == 0


class ResultStore:
    """Append-only result store keyed by spec content hash."""

    def __init__(
        self,
        path: str | Path,
        backend: str | ResultStoreBackend | None = None,
        shards: int | None = None,
    ) -> None:
        self.path = Path(path)
        if isinstance(backend, ResultStoreBackend):
            self.backend = backend
        else:
            self.backend = make_backend(self.path, kind=backend, shards=shards)
        self.skipped_rows = 0
        self._cache_sig: tuple | None = None
        self._cache: dict[str, RunSummary] = {}

    @property
    def backend_kind(self) -> str:
        return self.backend.kind

    def exists(self) -> bool:
        """Whether the backing file/directory/database exists."""
        return self.backend.exists()

    def sidecar(self, name: str) -> Path:
        """This store's sidecar path (quarantine, manifest, leases)."""
        return sidecar_path(self.path, name, kind=self.backend.kind)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _decode_line(self, line: str) -> tuple[dict | None, str | None]:
        """(row, problem) for one stripped line; row is None when bad.

        A row that parses but fails its checksum is returned as
        ``(None, reason)`` too: a corrupted row must never be served, only
        re-run.  Legacy rows (no checksum field) pass with ``problem``
        None — :meth:`verify` counts them separately via the field test.
        """
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            return None, f"not valid JSON ({exc})"
        if not isinstance(row, dict) or "spec_hash" not in row:
            return None, "row has no spec_hash"
        stored = row.get(CHECKSUM_FIELD)
        if stored is not None and stored != row_checksum(row):
            return None, "row checksum mismatch (torn or corrupted row)"
        return row, None

    def rows(self, strict: bool = False) -> list[dict]:
        """All valid rows in backend order (empty when the store is absent).

        Torn lines — a sweep killed mid-append, interleaved writes from
        concurrent sweeps, or rows whose checksum no longer matches — are
        skipped (counted in ``skipped_rows``) so an interrupted sweep
        stays resumable; the affected runs simply re-run.  ``strict=True``
        raises :class:`StoreError` on the first bad line instead, for
        integrity checks.
        """
        self.skipped_rows = 0
        rows = []
        for location, line_number, line in self.backend.iter_lines():
            line = line.strip()
            if not line:
                continue
            row, problem = self._decode_line(line)
            if row is None:
                if strict:
                    raise StoreError(f"{location}:{line_number}: {problem}")
                self.skipped_rows += 1
                continue
            rows.append(row)
        return rows

    def verify(self) -> StoreReport:
        """One full integrity pass: per-line verdicts, never raises.

        The report distinguishes torn lines (unparseable) from checksum
        mismatches (parseable but corrupted) from legacy rows (valid,
        written before checksums existed), with ``location:line``
        positions for everything wrong, plus any backend-level corruption
        (shard digests, SQLite quick_check) — the engine behind ``repro
        store verify``.
        """
        report = StoreReport()
        if not self.backend.exists():
            return report
        hashes: set[str] = set()
        for location, line_number, line in self.backend.iter_lines():
            line = line.strip()
            if not line:
                continue
            report.lines += 1
            row, problem = self._decode_line(line)
            if row is None:
                if "checksum" in (problem or ""):
                    report.checksum_mismatches += 1
                else:
                    report.torn_lines += 1
                report.problems.append(f"{location}:{line_number}: {problem}")
                continue
            report.rows += 1
            if CHECKSUM_FIELD not in row:
                report.legacy_rows += 1
            hashes.add(row["spec_hash"])
        for problem in self.backend.integrity_problems():
            report.checksum_mismatches += 1
            report.problems.append(problem)
        report.unique_hashes = len(hashes)
        return report

    def content_digest(self) -> str:
        """SHA-256 over the store's *logical* content.

        Last row per hash, sorted by hash, with the volatile fields
        (``elapsed_s`` wall-clock, the checksum that covers it) excluded —
        so two stores that hold the same results digest identically no
        matter what order the rows landed in, how many superseded
        duplicates remain, how long each run took, or *which backend
        holds them*.  This is the equality the chaos-convergence and
        campaign-convergence contracts are stated in: a crashed, retried,
        resumed, or N-worker sweep must reach the same digest as an
        undisturbed serial run.
        """
        latest: dict[str, dict] = {}
        for row in self.rows():
            latest[row["spec_hash"]] = row
        digest = hashlib.sha256()
        for spec_hash in sorted(latest):
            row = {
                k: v
                for k, v in latest[spec_hash].items()
                if k not in ("elapsed_s", CHECKSUM_FIELD)
            }
            digest.update(json.dumps(row, sort_keys=True).encode())
            digest.update(b"\n")
        return digest.hexdigest()

    def _summaries(self) -> dict[str, RunSummary]:
        """The {hash: summary} index, parsed at most once per store state.

        Cached against the backend's signature (file stat, shard stats,
        or SQLite data_version): repeated :meth:`get` calls cost one
        :meth:`rows` pass total, while a write from another process
        changes the signature and triggers a reparse.  :meth:`put` and
        :meth:`compact` invalidate explicitly.
        """
        sig = self.backend.signature()
        if sig is None:
            self._cache_sig = None
            self._cache = {}
            return self._cache
        if sig != self._cache_sig:
            self._cache = {
                row["spec_hash"]: RunSummary.from_dict(row["summary"])
                for row in self.rows()
            }
            self._cache_sig = sig
        return self._cache

    def _invalidate(self) -> None:
        self._cache_sig = None
        self._cache = {}

    def load(self) -> dict[str, RunSummary]:
        """{spec_hash: summary} with the last row winning per hash."""
        return dict(self._summaries())

    def load_specs(self) -> dict[str, RunSpec]:
        """{spec_hash: spec} for every stored row carrying a spec."""
        specs: dict[str, RunSpec] = {}
        for row in self.rows():
            if "spec" in row:
                specs[row["spec_hash"]] = RunSpec.from_dict(row["spec"])
        return specs

    def completed_hashes(self) -> set[str]:
        """Hashes with at least one stored summary."""
        return set(self._summaries())

    def get(self, spec: RunSpec) -> RunSummary | None:
        """The stored summary for one spec, if any (cached single pass)."""
        return self._summaries().get(spec.content_hash)

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------

    def put(
        self,
        spec: RunSpec,
        summary: RunSummary,
        elapsed_s: float | None = None,
    ) -> None:
        """Append one completed run (checksummed)."""
        row = {
            "spec_hash": spec.content_hash,
            "spec": spec.to_dict(),
            "summary": summary.to_dict(),
            "elapsed_s": elapsed_s,
            "store_version": STORE_VERSION,
        }
        row[CHECKSUM_FIELD] = row_checksum(row)
        line = json.dumps(row, sort_keys=True) + "\n"
        self.backend.append_line(row["spec_hash"], line)
        self._invalidate()

    def compact(self) -> int:
        """Atomically rewrite the store in canonical form.

        Canonical form: the last row per hash, canonically ordered for
        the backend (sorted by hash for JSONL, by (shard, hash) for
        sharded, the primary key for SQLite), every row checksummed
        (legacy rows are upgraded), torn lines dropped.  Returns the
        number of rows dropped (superseded duplicates plus torn lines).
        The rewrite is atomic per backend — a crash at any instant leaves
        either the original store or the finished replacement, never a
        torn one (the crash-simulation tests in tests/test_sweep.py
        interrupt the write and check exactly this).
        """
        rows = self.rows()
        torn = self.skipped_rows
        latest: dict[str, dict] = {}
        needs_rewrite = torn > 0
        for row in rows:
            latest[row["spec_hash"]] = row
            if CHECKSUM_FIELD not in row:
                needs_rewrite = True
        dropped = len(rows) - len(latest) + torn
        if self.backend.stale_order([row["spec_hash"] for row in rows]):
            needs_rewrite = True
        if dropped or needs_rewrite:
            ordered = []
            for spec_hash in sorted(latest):
                row = dict(latest[spec_hash])
                row[CHECKSUM_FIELD] = row_checksum(row)
                ordered.append(
                    (spec_hash, json.dumps(row, sort_keys=True) + "\n")
                )
            self.backend.rewrite(ordered)
            self._invalidate()
        return dropped

    def merge(
        self,
        sources: Iterable["ResultStore"],
        only_hashes: set[str] | None = None,
    ) -> int:
        """Pull rows this store lacks from other stores (any backend).

        For every hash absent here, the first source holding it wins and
        its latest row is appended verbatim — existing rows are never
        overwritten, so merging is idempotent and the merged digest is
        the digest of the union with self-precedence.  ``only_hashes``
        restricts the pull to a grid (the ``--cache-from`` read-through
        path).  Returns the number of rows appended.
        """
        have = {row["spec_hash"] for row in self.rows()}
        appended = 0
        for source in sources:
            latest: dict[str, dict] = {}
            for row in source.rows():
                latest[row["spec_hash"]] = row
            for spec_hash in sorted(latest):
                if spec_hash in have:
                    continue
                if only_hashes is not None and spec_hash not in only_hashes:
                    continue
                self.backend.append_line(
                    spec_hash,
                    json.dumps(latest[spec_hash], sort_keys=True) + "\n",
                )
                have.add(spec_hash)
                appended += 1
        if appended:
            self._invalidate()
        return appended
