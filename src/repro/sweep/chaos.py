"""Deterministic chaos injection for sweep workers.

A :class:`ChaosPlan` is a declarative list of faults keyed by spec content
hash (prefix match) and attempt number.  The plan travels through the
environment variable :data:`CHAOS_ENV` as JSON, so it reaches worker
*processes* — including freshly respawned ones — without any code path
knowing it exists: :func:`maybe_inject` is called once per execution
attempt, right before the simulation runs, and does nothing when the
environment is clean.

Faults are deterministic by construction: whether a given (spec, attempt)
pair is poisoned depends only on the plan, the spec's content hash, and
the attempt counter — never on wall-clock time or randomness — so a chaos
run is exactly reproducible and a resumed run converges to the undisturbed
result once the environment is cleared (or the poisoned attempts are
exhausted).

Fault kinds:

``raise``
    Raise :class:`ChaosError` inside the worker — models a spec whose
    execution fails (bad config discovered late, assertion, OOM-killed
    library call that surfaces as an exception).

``hang``
    Sleep for ``hang_s`` (default: effectively forever) — models a
    deadlocked or livelocked worker.  Only a per-spec ``timeout_s`` (which
    kills the worker process) recovers from this.

``exit``
    ``os._exit(exit_code)`` — models a segfault or OOM kill: the worker
    process dies without unwinding, flushing, or reporting anything.

Plan JSON shape::

    {"faults": [
        {"match": "3fa9c1", "kind": "raise"},
        {"match": "77b2",   "kind": "exit", "attempts": [1]},
        {"match": "c0ffee", "kind": "hang", "hang_s": 30.0}
    ]}

``match`` is a hex prefix of the spec content hash; ``attempts`` (1-based)
restricts the fault to specific attempts — ``[1]`` makes a spec crash once
and then succeed on retry, the canonical transient fault.  Omitted,
the fault fires on every attempt (a permanently poisoned spec).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

CHAOS_ENV = "REPRO_CHAOS_PLAN"
"""Environment variable carrying the JSON chaos plan into workers."""

FAULT_KINDS = ("raise", "hang", "exit")

DEFAULT_HANG_S = 3600.0
"""A "forever" hang: far beyond any sane per-spec timeout."""

DEFAULT_EXIT_CODE = 77
"""Distinctive worker death code, telling chaos kills apart from real ones."""


class ChaosError(RuntimeError):
    """The injected failure raised by ``raise`` faults."""


@dataclass(frozen=True)
class Fault:
    """One injected fault: which specs, which attempts, what happens."""

    match: str
    kind: str
    attempts: tuple[int, ...] = ()  # empty: every attempt
    hang_s: float = DEFAULT_HANG_S
    exit_code: int = DEFAULT_EXIT_CODE

    def __post_init__(self) -> None:
        if not self.match:
            raise ValueError("fault 'match' must be a non-empty hash prefix")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )

    def applies(self, spec_hash: str, attempt: int) -> bool:
        if not spec_hash.startswith(self.match):
            return False
        return not self.attempts or attempt in self.attempts


@dataclass(frozen=True)
class ChaosPlan:
    """A deterministic set of faults, usually parsed from the environment."""

    faults: tuple[Fault, ...] = ()

    @classmethod
    def from_faults(cls, faults) -> "ChaosPlan":
        return cls(faults=tuple(faults))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"chaos plan is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or "faults" not in payload:
            raise ValueError("chaos plan JSON needs a top-level 'faults' list")
        faults = []
        for entry in payload["faults"]:
            unknown = set(entry) - {
                "match", "kind", "attempts", "hang_s", "exit_code",
            }
            if unknown:
                raise ValueError(
                    f"unknown chaos fault key(s): {sorted(unknown)}"
                )
            faults.append(
                Fault(
                    match=entry["match"],
                    kind=entry["kind"],
                    attempts=tuple(entry.get("attempts", ())),
                    hang_s=entry.get("hang_s", DEFAULT_HANG_S),
                    exit_code=entry.get("exit_code", DEFAULT_EXIT_CODE),
                )
            )
        return cls(faults=tuple(faults))

    def to_json(self) -> str:
        """The env-var payload :meth:`from_json` round-trips."""
        return json.dumps(
            {
                "faults": [
                    {
                        "match": f.match,
                        "kind": f.kind,
                        **({"attempts": list(f.attempts)} if f.attempts else {}),
                        **(
                            {"hang_s": f.hang_s}
                            if f.hang_s != DEFAULT_HANG_S
                            else {}
                        ),
                        **(
                            {"exit_code": f.exit_code}
                            if f.exit_code != DEFAULT_EXIT_CODE
                            else {}
                        ),
                    }
                    for f in self.faults
                ]
            },
            sort_keys=True,
        )

    def fault_for(self, spec_hash: str, attempt: int) -> Fault | None:
        """The first fault matching this (spec, attempt), if any."""
        for fault in self.faults:
            if fault.applies(spec_hash, attempt):
                return fault
        return None

    def inject(self, spec_hash: str, attempt: int) -> None:
        """Fire the matching fault, if any (called inside the worker)."""
        fault = self.fault_for(spec_hash, attempt)
        if fault is None:
            return
        if fault.kind == "raise":
            raise ChaosError(
                f"chaos: injected failure for {spec_hash[:12]} "
                f"(attempt {attempt})"
            )
        if fault.kind == "hang":
            time.sleep(fault.hang_s)
            return
        # "exit": die the way a segfault does — no unwinding, no report.
        os._exit(fault.exit_code)


_EMPTY = ChaosPlan()
_cached: tuple[str, ChaosPlan] = ("", _EMPTY)


def active_plan() -> ChaosPlan:
    """The plan the environment currently declares (cached per value)."""
    global _cached
    raw = os.environ.get(CHAOS_ENV, "")
    if not raw:
        return _EMPTY
    if _cached[0] != raw:
        _cached = (raw, ChaosPlan.from_json(raw))
    return _cached[1]


def maybe_inject(spec_hash: str, attempt: int) -> None:
    """Inject the environment-declared fault for this execution, if any.

    The single hook every execution path (serial and worker) calls; a
    clean environment makes this a no-op dictionary miss.
    """
    raw = os.environ.get(CHAOS_ENV, "")
    if raw:
        active_plan().inject(spec_hash, attempt)
