"""Spec execution and parallel sweep fan-out.

:func:`execute_spec` turns one :class:`~repro.sweep.spec.RunSpec` into a
:class:`~repro.sim.metrics.RunSummary` — generate the workload from the
spec's seed, build the configured simulator, run, summarize, and compute
any requested ``collect`` metrics into ``summary.extra``.

:class:`SweepRunner` maps that over many specs, optionally across a
``ProcessPoolExecutor`` (``jobs > 1``) and optionally against a
:class:`~repro.sweep.store.ResultStore` (``resume=True`` skips specs whose
hash already has a stored summary).  Because a spec fully determines its
run and workers share no mutable state, the parallel fan-out is
bit-identical to the serial loop — the determinism regression in
tests/test_sweep.py asserts exactly that.
"""

from __future__ import annotations

import dataclasses
import os
import random
import sys
import time
import traceback as traceback_module
from collections.abc import Callable, Iterable
from pathlib import Path

from ..experiments.common import (
    SCALES,
    ExperimentScale,
    make_topology,
    run_adaptive,
    run_negotiator,
    run_oblivious,
    run_relay,
    run_rotor,
    sim_config,
)
from ..sim.config import (
    AdaptiveConfig,
    EpochConfig,
    RotorConfig,
    epoch_config_for_reconfiguration_delay,
    epoch_config_without_piggyback,
)
from ..sim.failures import (
    Direction,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
    random_failure_plan,
)
from ..sim.flows import FlowTracker
from ..sim.metrics import RunSummary
from ..telemetry import events as telemetry_events
from ..telemetry import runtime as telemetry_runtime
from ..telemetry.engine import DEFAULT_CADENCE_NS
from ..telemetry.heartbeat import HeartbeatAggregator
from ..telemetry.progress import ProgressReporter
from . import chaos, scenarios
from .resilience import (
    NO_RETRY,
    ON_ERROR_MODES,
    Attempt,
    QuarantineLog,
    RetryPolicy,
    SpecOutcome,
    default_quarantine_path,
    run_with_retries,
)
from .spec import SYSTEMS, RunSpec, unknown_name_message
from .store import ResultStore


def scale_spec_fields(scale: ExperimentScale) -> dict:
    """RunSpec constructor kwargs pinning one scale.

    Registered scales are referenced by name; ad-hoc scales (test fixtures,
    custom fabrics) additionally embed their fabric shape so the spec is
    self-contained and its content hash covers the real geometry.
    """
    if SCALES.get(scale.name) == scale:
        return {"scale": scale.name}
    return {
        "scale": scale.name,
        "scale_params": {
            "name": scale.name,
            "num_tors": scale.num_tors,
            "ports_per_tor": scale.ports_per_tor,
            "awgr_ports": scale.awgr_ports,
            "duration_ns": scale.duration_ns,
            "max_flow_bytes": scale.max_flow_bytes,
            "seed": scale.seed,
        },
    }


def resolve_scale(spec: RunSpec) -> ExperimentScale:
    """The scale a spec runs at (inline shape beats the name registry)."""
    if spec.scale_params:
        return ExperimentScale(**dict(spec.scale_params))
    try:
        return SCALES[spec.scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {spec.scale!r}; choose from {sorted(SCALES)} "
            "or embed scale_params (see scale_spec_fields)"
        ) from None


UPLINK_GBPS = 100.0
"""Every scale runs 100 Gbps uplinks (sim_config pins the same value)."""


def resolve_epoch(
    spec: RunSpec, scale: ExperimentScale
) -> EpochConfig | None:
    """The epoch configuration a spec's ``epoch_params`` describe.

    Plain keys replace :class:`EpochConfig` fields directly; the derived
    knobs ``reconfiguration_delay_ns`` (Fig 8) and ``piggyback=False``
    (Table 2) need the fabric's predefined-phase length and are applied on
    top, in that order.  Returns None when the spec has no overrides.
    """
    params = dict(spec.epoch_params)
    if not params:
        return None
    piggyback = params.pop("piggyback", True)
    reconfiguration_ns = params.pop("reconfiguration_delay_ns", None)
    unknown = set(params) - {
        f.name for f in dataclasses.fields(EpochConfig)
    }
    if unknown:
        raise ValueError(
            f"unknown epoch_params key(s): {sorted(unknown)}"
        )
    epoch = dataclasses.replace(EpochConfig(), **params)
    if reconfiguration_ns is not None or not piggyback:
        slots = make_topology(scale, spec.topology).predefined_slots
        if reconfiguration_ns is not None:
            epoch = epoch_config_for_reconfiguration_delay(
                epoch, reconfiguration_ns, UPLINK_GBPS, slots
            )
        if not piggyback:
            epoch = epoch_config_without_piggyback(epoch, UPLINK_GBPS, slots)
    return epoch


def resolve_rotor(spec: RunSpec) -> RotorConfig | None:
    """The rotor configuration a spec's ``rotor_params`` describe.

    Keys map to :class:`~repro.sim.config.RotorConfig` fields.  Returns
    None (engine defaults) when the spec has no overrides.
    """
    params = dict(spec.rotor_params)
    if not params:
        return None
    unknown = set(params) - {f.name for f in dataclasses.fields(RotorConfig)}
    if unknown:
        raise ValueError(f"unknown rotor_params key(s): {sorted(unknown)}")
    return RotorConfig(**params)


def resolve_adaptive(spec: RunSpec) -> AdaptiveConfig | None:
    """The adaptive configuration a spec's ``adaptive_params`` describe.

    Keys map to :class:`~repro.sim.config.AdaptiveConfig` fields.  Returns
    None (engine defaults) when the spec has no overrides.
    """
    params = dict(spec.adaptive_params)
    if not params:
        return None
    unknown = set(params) - {
        f.name for f in dataclasses.fields(AdaptiveConfig)
    }
    if unknown:
        raise ValueError(f"unknown adaptive_params key(s): {sorted(unknown)}")
    return AdaptiveConfig(**params)


def resolve_failures(
    spec: RunSpec, scale: ExperimentScale
) -> tuple[LinkFailureModel | None, FailurePlan | None]:
    """(failure model, failure plan) from a spec's ``failure_params``.

    ``plan="random"`` fails a fraction of all directed fibers at one instant
    and repairs them later (Fig 10); ``plan="egress-ports"`` kills the first
    ``ports`` egress fibers of one ToR (Fig 19).  ``detect_epochs`` sets the
    model's detection lag.
    """
    params = dict(spec.failure_params)
    if not params:
        return None, None
    try:
        kind = params.pop("plan")
    except KeyError:
        raise ValueError("failure_params needs a 'plan' key") from None
    model = LinkFailureModel(
        scale.num_tors,
        scale.ports_per_tor,
        detect_epochs=params.pop("detect_epochs", 3),
    )
    if kind == "random":
        required = {"ratio", "fail_at_ns", "repair_at_ns"}
        unknown = set(params) - required - {"seed"}
        if unknown:
            raise ValueError(
                f"unknown failure_params key(s) for 'random': "
                f"{sorted(unknown)}"
            )
        missing = required - set(params)
        if missing:
            raise ValueError(
                f"failure_params plan 'random' needs {sorted(missing)}"
            )
        plan, _failed = random_failure_plan(
            scale.num_tors,
            scale.ports_per_tor,
            params["ratio"],
            params["fail_at_ns"],
            params["repair_at_ns"],
            random.Random(params.get("seed", 0)),
        )
    elif kind == "egress-ports":
        unknown = set(params) - {"tor", "ports", "at_ns"}
        if unknown:
            raise ValueError(
                f"unknown failure_params key(s) for 'egress-ports': "
                f"{sorted(unknown)}"
            )
        if "ports" not in params:
            raise ValueError("failure_params plan 'egress-ports' needs 'ports'")
        plan = FailurePlan()
        tor = params.get("tor", 0)
        for port in range(params["ports"]):
            plan.add_failure(
                params.get("at_ns", 0.0), LinkRef(tor, port, Direction.EGRESS)
            )
    else:
        raise ValueError(
            f"unknown failure plan {kind!r}; choose 'random' or 'egress-ports'"
        )
    return model, plan


# ---------------------------------------------------------------------------
# collectors: extra metrics computed from the finished run's artifacts
# ---------------------------------------------------------------------------

Collector = Callable[..., object]

COLLECTORS: dict[str, Collector] = {}


def collector(name: str):
    """Register a ``collect`` metric: (artifacts, spec, scale, params) -> JSONable."""

    def wrap(fn: Collector) -> Collector:
        if name in COLLECTORS:
            raise ValueError(f"collector {name!r} already registered")
        COLLECTORS[name] = fn
        return fn

    return wrap


@collector("mice_cdf")
def _collect_mice_cdf(artifacts, spec, scale, params) -> dict:
    """The Fig 6 observable: empirical mice-FCT CDF plus the epoch length."""
    sim = artifacts.simulator
    mice = sim.tracker.mice_flows(sim.config.mice_threshold_bytes)
    values_ns, fractions = FlowTracker.fct_cdf(mice)
    return {
        "values_us": [float(v) / 1e3 for v in values_ns],
        "fractions": [float(f) for f in fractions],
        "epoch_us": sim.timing.epoch_ns / 1e3,
    }


@collector("incast_finish_ns")
def _collect_incast_finish(artifacts, spec, scale, params) -> float:
    """The Fig 7a observable: last incast flow completion minus injection."""
    from ..workloads.incast import incast_finish_time_ns

    return float(
        incast_finish_time_ns(artifacts.simulator.tracker.flows, params["at_ns"])
    )


@collector("alltoall_goodput_gbps")
def _collect_alltoall_goodput(artifacts, spec, scale, params) -> float:
    """The Fig 7b observable: per-ToR received goodput over the transfer."""
    sim = artifacts.simulator
    if not sim.tracker.all_complete:
        raise RuntimeError("all-to-all transfer did not finish")
    finish_ns = max(f.completed_ns for f in sim.tracker.flows)
    duration = finish_ns - params["at_ns"]
    return sim.tracker.delivered_bytes * 8.0 / duration / scale.num_tors


@collector("tag_finish_ns")
def _collect_tag_finish(artifacts, spec, scale, params) -> dict:
    """Per-tag last completion time — collective phase/round finish times."""
    finish: dict[str, float] = {}
    for flow in artifacts.simulator.tracker.flows:
        if flow.completed:
            tag = flow.tag or "untagged"
            finish[tag] = max(finish.get(tag, 0.0), flow.completed_ns)
    return finish


@collector("fault_bw_ratios")
def _collect_fault_bw_ratios(artifacts, spec, scale, params) -> dict:
    """The Fig 10 observables: bandwidth through failure and recovery.

    Windowed delivered bytes per ns around the spec's failure plan:
    ``drop`` = during-failure / pre-failure, ``recovery`` = during-failure /
    post-recovery.  ``margin_ns`` (instrument) trims the transients around
    each transition.
    """
    recorder = artifacts.bandwidth
    failure = dict(spec.failure_params)
    margin = dict(spec.instrument)["margin_ns"]
    fail_at = failure["fail_at_ns"]
    repair_at = failure["repair_at_ns"]
    duration = spec.duration_ns

    def window(start: float, end: float) -> float:
        return sum(
            recorder.window_bytes(("rx", dst), start, end)
            for dst in range(scale.num_tors)
        ) / (end - start)

    pre = window(margin, fail_at)
    during = window(fail_at + margin, repair_at)
    post = window(repair_at + margin, duration - margin)
    return {"drop": during / pre, "recovery": during / post}


@collector("match_ratio_series")
def _collect_match_ratio_series(artifacts, spec, scale, params) -> dict:
    """The Fig 14 observable: per-epoch match ratios (finite) plus the mean."""
    recorder = artifacts.match_recorder
    ratios = recorder.ratios()
    import numpy as np

    finite = ratios[~np.isnan(ratios)]
    return {
        "ratios": [float(r) for r in finite],
        "mean": recorder.mean_ratio(),
    }


@collector("first_rx_byte_ns")
def _collect_first_rx_byte(artifacts, spec, scale, params) -> float | None:
    """The Fig 17 observable: when the destination first hears payload."""
    dst = params.get("dst", 0)
    at_ns = params["at_ns"]
    bin_ns = dict(spec.instrument)["bandwidth_bin_ns"]
    times, gbps = artifacts.bandwidth.series_gbps(("rx", dst))
    for t, v in zip(times, gbps):
        if v > 0 and t >= at_ns - bin_ns:
            return float(t)
    return None


@collector("rx_relay_split_gbps")
def _collect_rx_relay_split(artifacts, spec, scale, params) -> dict:
    """The Fig 18 observable: wanted vs relayed Gbps at receiver ToR 0."""
    sim = artifacts.simulator
    finish_ns = max(f.completed_ns for f in sim.tracker.flows)
    duration = finish_ns - params["at_ns"]
    dst = 0
    recorder = artifacts.bandwidth
    return {
        "wanted": recorder.total_bytes(("rx", dst)) * 8.0 / duration,
        "relayed": recorder.total_bytes(("relay", dst)) * 8.0 / duration,
    }


@collector("pair_gbps_series")
def _collect_pair_gbps_series(artifacts, spec, scale, params) -> list[float]:
    """The Fig 19 observable: one pair's per-bin bandwidth occupation."""
    _times, gbps = artifacts.bandwidth.series_gbps(
        ("pair", params["src"], params["dst"]), until_ns=spec.duration_ns
    )
    return [float(v) for v in gbps]


@collector("incast_mix_stats")
def _collect_incast_mix_stats(artifacts, spec, scale, params) -> dict:
    """The Fig 13a observables: background mice FCT and incast finish times."""
    from collections import defaultdict

    import numpy as np

    from ..workloads.incast import BACKGROUND_TAG, INCAST_TAG

    sim = artifacts.simulator
    tracker = sim.tracker
    background_mice = tracker.mice_flows(
        sim.config.mice_threshold_bytes, tag=BACKGROUND_TAG
    )
    bg_p99_ns = (
        float(FlowTracker.fct_percentile_ns(background_mice, 99))
        if background_mice
        else None
    )
    events = defaultdict(list)
    for flow in tracker.flows_with_tag(INCAST_TAG):
        events[flow.arrival_ns].append(flow)
    finish_times = [
        max(f.completed_ns for f in group) - at
        for at, group in events.items()
        if all(f.completed for f in group)
    ]
    mean_finish_ns = float(np.mean(finish_times)) if finish_times else None
    return {
        "bg_mice_fct_p99_ns": bg_p99_ns,
        "incast_mean_finish_ns": mean_finish_ns,
    }


# ---------------------------------------------------------------------------
# single-spec execution
# ---------------------------------------------------------------------------


INSTRUMENT_KEYS = {
    "bandwidth_bin_ns",
    "pair_bandwidth",
    "match_ratio",
    "margin_ns",
}
"""Valid ``instrument`` keys: recorder attachments plus measurement knobs
(``margin_ns``) that collectors read back from the spec."""


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion and return its summary.

    Delegates the actual run to the experiments' reference helpers
    (``run_negotiator``/``run_oblivious``/``run_rotor``/``run_relay``), so
    sweep results can never diverge from a directly-run experiment.
    Module-level (and argument-picklable) so a process pool can ship it to
    workers unchanged.

    When the ``REPRO_TELEMETRY`` environment channel is active (DESIGN.md
    §14) an engine tracer is attached to the run — the env var is how the
    setting reaches both this process and forked pool workers identically.
    Telemetry is runtime configuration, never spec content: hashes and
    summaries are unchanged by it.
    """
    tracer = telemetry_runtime.engine_tracer(spec.content_hash, spec.system)
    scale = resolve_scale(spec)
    scenario = scenarios.get(spec.scenario)
    params = scenario.resolve_params(dict(spec.scenario_params))
    for name in spec.collect:
        if name not in COLLECTORS:
            raise ValueError(
                f"unknown collect metric {name!r}; "
                f"choose from {sorted(COLLECTORS)}"
            )
    instrument = dict(spec.instrument)
    unknown = set(instrument) - INSTRUMENT_KEYS
    if unknown:
        raise ValueError(
            f"unknown instrument key(s): {sorted(unknown)}; "
            f"choose from {sorted(INSTRUMENT_KEYS)}"
        )
    if spec.stream:
        # Collectors and instrumentation read retained per-flow state,
        # which the bounded-memory tracker evicts by design.
        if spec.collect:
            raise ValueError(
                "streaming specs compute headline summaries only; "
                f"drop collect={sorted(spec.collect)} or run materialized"
            )
        if instrument:
            raise ValueError(
                "instrumentation is not supported with stream=True; "
                f"drop instrument key(s) {sorted(instrument)}"
            )
        if spec.system == "relay":
            raise ValueError("the relay system does not support stream=True")

    flows = (
        scenarios.build_workload_iter(spec, scale, params)
        if spec.stream
        else scenarios.build_workload(spec, scale, params)
    )
    epoch = resolve_epoch(spec, scale)
    overrides: dict = {"priority_queue_enabled": spec.priority_queue}
    if epoch is not None:
        overrides["epoch"] = epoch
    config = sim_config(scale, **overrides)
    if spec.without_speedup:
        config = config.without_speedup()
    duration = spec.duration_ns if spec.duration_ns else scale.duration_ns
    failure_model, failure_plan = resolve_failures(spec, scale)

    if spec.system != "negotiator":
        if spec.scheduler != "base":
            raise ValueError(
                "scheduler variants apply to the negotiator system only"
            )
        if failure_model is not None and spec.system not in (
            "rotor",
            "adaptive",
        ):
            raise ValueError(
                "failure plans apply to the negotiator, rotor, and "
                "adaptive systems only"
            )
        if instrument.get("pair_bandwidth") or instrument.get("match_ratio"):
            raise ValueError(
                "pair_bandwidth/match_ratio instrumentation applies to the "
                "negotiator system only"
            )
    if spec.rotor_params and spec.system != "rotor":
        raise ValueError("rotor_params apply to the rotor system only")
    if spec.adaptive_params and spec.system != "adaptive":
        raise ValueError("adaptive_params apply to the adaptive system only")

    if spec.system == "oblivious":
        if spec.scheduler_params:
            raise ValueError(
                "scheduler variants apply to the negotiator system only"
            )
        artifacts = run_oblivious(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            bandwidth_bin_ns=instrument.get("bandwidth_bin_ns"),
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
            stream=spec.stream,
            tracer=tracer,
        )
    elif spec.system == "rotor":
        if spec.scheduler_params:
            raise ValueError(
                "scheduler variants apply to the negotiator system only"
            )
        artifacts = run_rotor(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            rotor=resolve_rotor(spec),
            bandwidth_bin_ns=instrument.get("bandwidth_bin_ns"),
            failure_model=failure_model,
            failure_plan=failure_plan,
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
            stream=spec.stream,
            tracer=tracer,
        )
    elif spec.system == "adaptive":
        if spec.scheduler_params:
            raise ValueError(
                "scheduler variants apply to the negotiator system only"
            )
        artifacts = run_adaptive(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            adaptive=resolve_adaptive(spec),
            bandwidth_bin_ns=instrument.get("bandwidth_bin_ns"),
            failure_model=failure_model,
            failure_plan=failure_plan,
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
            stream=spec.stream,
            tracer=tracer,
        )
    elif spec.system == "relay":
        from ..core.relay import RelayPolicy

        if spec.topology != "thinclos":
            raise ValueError("the relay system runs on thin-clos only")
        if instrument.get("bandwidth_bin_ns") is not None:
            raise ValueError("the relay system supports no instrumentation")
        policy = (
            RelayPolicy(**dict(spec.scheduler_params))
            if spec.scheduler_params
            else None
        )
        artifacts = run_relay(
            scale,
            flows,
            duration_ns=duration,
            config=config,
            relay_policy=policy,
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
            tracer=tracer,
        )
    elif spec.system == "negotiator":
        artifacts = run_negotiator(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            scheduler_name=spec.scheduler,
            scheduler_kwargs=dict(spec.scheduler_params),
            record_match_ratio=bool(instrument.get("match_ratio")),
            bandwidth_bin_ns=instrument.get("bandwidth_bin_ns"),
            record_pair_bandwidth=bool(instrument.get("pair_bandwidth")),
            failure_model=failure_model,
            failure_plan=failure_plan,
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
            stream=spec.stream,
            tracer=tracer,
        )
    else:
        # RunSpec validation makes this unreachable, but the dispatch is
        # kept exhaustive so a registry/dispatch drift fails loudly with
        # the same message shape as every other entry point.
        raise ValueError(
            unknown_name_message("system", [spec.system], SYSTEMS)
        )

    summary = artifacts.summary
    # Which core actually ran is observability, not spec content: it
    # lands in ``extra`` (never in the engine's own summary()) so the
    # cross-core parity suites can keep comparing summaries verbatim.
    summary.extra["core_used"] = artifacts.simulator.core_used
    if tracer is not None:
        tracer.finish(int(artifacts.simulator.now_ns))
    for name in spec.collect:
        summary.extra[name] = COLLECTORS[name](artifacts, spec, scale, params)
    return summary


def _timed_execute(
    spec: RunSpec, attempt: int = 1
) -> tuple[str, RunSummary, float]:
    """Execute one spec attempt, timed — the single execution funnel.

    Both the serial loop and the resilient worker pool come through here,
    which is where chaos faults (:mod:`repro.sweep.chaos`) are injected:
    a fault plan in the environment poisons chosen (spec, attempt) pairs
    identically whichever path runs them.
    """
    started = time.perf_counter()
    chaos.maybe_inject(spec.content_hash, attempt)
    summary = execute_spec(spec)
    return spec.content_hash, summary, time.perf_counter() - started


# ---------------------------------------------------------------------------
# the sweep runner
# ---------------------------------------------------------------------------


class SweepRunner:
    """Executes spec batches with optional parallelism, caching, and resume.

    ``jobs=1`` (the default) runs serially in-process — the reference
    behavior.  With ``jobs > 1`` pending specs fan out over a process pool.
    A ``store`` persists every computed summary; with ``resume=True``,
    specs whose content hash is already stored are served from the store
    without running a simulation.

    Every result this runner computes or fetches is also memoized
    in-process, so a spec shared by several experiments (``repro run
    --all`` hands one runner to every experiment) executes exactly once
    even without a store.

    After (any number of) :meth:`run` calls, ``executed`` counts the
    simulations actually performed and ``cached`` the store/memo hits —
    the observability the "--resume executes zero simulations" contract is
    tested against.  ``requested`` holds every hash this runner was asked
    for; :meth:`stale_stored_hashes` diffs the store against it to surface
    rows stranded by spec changes.

    Fault tolerance (DESIGN.md §13).  ``retry`` is a
    :class:`~repro.sweep.resilience.RetryPolicy` (default: one attempt);
    ``timeout_s`` is a per-spec wall-clock deadline, enforced by killing
    the worker process — so setting it routes execution through the
    resilient worker pool even at ``jobs=1``.  ``on_error`` decides what
    happens when a spec exhausts its attempts:

    * ``"fail"`` (default) — raise; serial single-attempt execution
      re-raises the original exception, the pool raises
      :class:`~repro.sweep.resilience.SweepExecutionError`.
    * ``"skip"`` — record the :class:`SpecOutcome` and keep going; the
      spec is absent from the returned results.
    * ``"quarantine"`` — like skip, and additionally append the spec,
      outcome, and traceback to the quarantine sidecar JSONL
      (``quarantine`` path, defaulting to the store's
      ``*.quarantine.jsonl`` sibling).

    ``outcomes`` maps every executed spec hash to its
    :class:`SpecOutcome`; :meth:`failed_hashes` filters the failures.
    Worker crashes and timeouts never abort the sweep: the pool respawns
    the dead worker and requeues only the in-flight spec.

    Telemetry (DESIGN.md §14).  ``telemetry`` is a JSONL path: engine
    tracers (activated through the environment so forked workers see
    them), worker heartbeats, and campaign/spec lifecycle events all
    append to it.  ``progress=True`` renders the live stderr
    progress/ETA line.  Both are off by default and purely
    observational — results and spec hashes are bit-identical either
    way.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | None = None,
        resume: bool = False,
        verbose: bool = False,
        timeout_s: float | None = None,
        retry: RetryPolicy | None = None,
        on_error: str = "fail",
        quarantine: str | QuarantineLog | None = None,
        telemetry: str | Path | None = None,
        telemetry_cadence_ns: int = DEFAULT_CADENCE_NS,
        progress: bool = False,
        heartbeat_s: float = 1.0,
        worker: str | None = None,
        on_worker_heartbeat: Callable[[str], None] | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if resume and store is None:
            raise ValueError("resume requires a result store")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        if on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {on_error!r}; "
                f"choose from {ON_ERROR_MODES}"
            )
        self.jobs = jobs
        self.store = store
        self.resume = resume
        self.verbose = verbose
        self.timeout_s = timeout_s
        self.retry = retry if retry is not None else NO_RETRY
        self.on_error = on_error
        if on_error == "quarantine":
            if isinstance(quarantine, QuarantineLog):
                self.quarantine: QuarantineLog | None = quarantine
            elif quarantine is not None:
                self.quarantine = QuarantineLog(quarantine)
            elif store is not None:
                self.quarantine = QuarantineLog(
                    default_quarantine_path(store.path)
                )
            else:
                raise ValueError(
                    "on_error='quarantine' needs a quarantine path "
                    "(or a store to derive one from)"
                )
        else:
            self.quarantine = (
                QuarantineLog(quarantine)
                if isinstance(quarantine, str)
                else quarantine
            )
        if heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")
        if telemetry_cadence_ns <= 0:
            raise ValueError("telemetry_cadence_ns must be positive")
        self.telemetry_path = Path(telemetry) if telemetry is not None else None
        self.telemetry_cadence_ns = telemetry_cadence_ns
        self.progress = progress
        self.heartbeat_s = heartbeat_s
        self._writer = (
            telemetry_events.TelemetryWriter(self.telemetry_path)
            if self.telemetry_path is not None
            else None
        )
        self._reporter: ProgressReporter | None = None
        self._aggregator: HeartbeatAggregator | None = None
        # Campaign lease mode (DESIGN.md §17): ``worker`` names this
        # runner in heartbeats, telemetry, and the manifest, and
        # ``on_worker_heartbeat(spec_hash)`` fires on every liveness
        # signal so the campaign layer can renew its lease on the spec.
        self.worker = worker
        self.on_worker_heartbeat = on_worker_heartbeat
        self.campaign_id = f"{int(time.time()):x}-{os.getpid():x}"
        self.started_at = time.time()
        self.executed = 0
        self.cached = 0
        self.requested: set[str] = set()
        self.specs: dict[str, RunSpec] = {}
        self.cached_hashes: set[str] = set()
        self.outcomes: dict[str, SpecOutcome] = {}
        self._memo: dict[str, RunSummary] = {}
        self._stored: dict[str, RunSummary] | None = None

    def run(self, specs: Iterable[RunSpec]) -> dict[str, RunSummary]:
        """Run (or fetch) every spec; returns {content_hash: summary}.

        Duplicate specs collapse to one run.  Results are keyed by hash so
        callers recover per-spec summaries regardless of execution order.
        """
        ordered: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            if spec.content_hash not in seen:
                seen.add(spec.content_hash)
                ordered.append(spec)
                self.specs.setdefault(spec.content_hash, spec)
        self.requested.update(seen)

        telemetry_on = self._writer is not None
        # Activate the env channel so engine tracers attach in-process
        # *and* in forked pool workers; restored on the way out so a
        # runner never leaks configuration into its host process.
        env_previous = (
            telemetry_runtime.activate(
                self.telemetry_path, cadence_ns=self.telemetry_cadence_ns
            )
            if telemetry_on
            else None
        )
        if self.progress:
            self._reporter = ProgressReporter(len(ordered))
        if self.progress or telemetry_on:
            self._aggregator = HeartbeatAggregator()
        run_started = time.time()
        if self._writer is not None:
            worker_field = (
                {"worker": self.worker} if self.worker is not None else {}
            )
            self._writer.emit(telemetry_events.make_event(
                telemetry_events.CAMPAIGN_START,
                campaign=self.campaign_id,
                total_specs=len(ordered),
                jobs=self.jobs,
                **worker_field,
            ))

        results: dict[str, RunSummary] = {}
        try:
            pending: list[RunSpec] = []
            # The store is parsed once per runner, not once per run() call —
            # `repro run --all` issues one call per experiment against a store
            # that only this runner appends to (appends land in the memo, which
            # is consulted first, so the snapshot never goes stale).
            if self.resume and self._stored is None:
                self._stored = self.store.load()
            stored = self._stored if self.resume else {}
            for spec in ordered:
                hit = self._memo.get(spec.content_hash)
                if hit is None:
                    hit = stored.get(spec.content_hash)
                if hit is not None:
                    results[spec.content_hash] = hit
                    self._memo[spec.content_hash] = hit
                    self.cached += 1
                    self.cached_hashes.add(spec.content_hash)
                    self._log(spec, "cached")
                    if self._reporter is not None:
                        self._reporter.spec_cached()
                    self._emit_spec_end(spec, "cached", 0, 0.0, cached=True)
                else:
                    pending.append(spec)

            # A per-spec timeout can only be enforced by killing the worker
            # process, so it forces pool execution even at jobs=1; otherwise
            # a single pending spec (or jobs=1) runs serially in-process, the
            # reference behavior.
            use_pool = bool(pending) and (
                self.timeout_s is not None
                or (self.jobs > 1 and len(pending) > 1)
            )
            if use_pool:
                self._run_pool(pending, results)
            else:
                for spec in pending:
                    summary = self._run_one(spec)
                    if summary is not None:
                        results[spec.content_hash] = summary
        finally:
            if telemetry_on:
                telemetry_runtime.deactivate(env_previous)
            if self._writer is not None:
                retried = sum(
                    1 for o in self.outcomes.values() if o.attempts > 1
                )
                worker_field = (
                    {"worker": self.worker} if self.worker is not None else {}
                )
                self._writer.emit(telemetry_events.make_event(
                    telemetry_events.CAMPAIGN_END,
                    campaign=self.campaign_id,
                    executed=self.executed,
                    cached=self.cached,
                    failed=len(self.failed_hashes()),
                    retried=retried,
                    quarantined=len(self.quarantined_hashes()),
                    elapsed_s=time.time() - run_started,
                    **worker_field,
                ))
            if self._reporter is not None:
                self._reporter.close()
                self._reporter = None
            self._aggregator = None
        return results

    def stale_stored_hashes(self) -> set[str]:
        """Stored hashes no :meth:`run` call ever requested.

        After a resumed sweep, these are rows stranded by changed scenario
        parameters (or schema bumps) — they can never be served again by
        the grid that was just run, so callers should report them rather
        than let the re-runs pass silently.
        """
        if self.store is None:
            return set()
        return self.store.completed_hashes() - self.requested

    def failed_hashes(self) -> set[str]:
        """Hashes whose final outcome was not ok (skipped/quarantined)."""
        return {
            spec_hash
            for spec_hash, outcome in self.outcomes.items()
            if not outcome.ok
        }

    def quarantined_hashes(self) -> set[str]:
        """Failed hashes that were written to the quarantine sidecar."""
        return self.failed_hashes() if self.quarantine is not None else set()

    def build_manifest(self, ended_at: float | None = None) -> dict:
        """The campaign manifest for everything this runner has run."""
        from ..telemetry.manifest import build_manifest

        return build_manifest(
            campaign=self.campaign_id,
            started_at=self.started_at,
            ended_at=ended_at if ended_at is not None else time.time(),
            specs=self.specs,
            outcomes=self.outcomes,
            cached_hashes=self.cached_hashes,
            quarantined_hashes=self.quarantined_hashes(),
            jobs=self.jobs,
            store_path=str(self.store.path) if self.store is not None else None,
            worker=self.worker,
        )

    def _emit_spec_end(
        self,
        spec: RunSpec,
        status: str,
        attempts: int,
        elapsed: float,
        *,
        cached: bool,
    ) -> None:
        if self._writer is None:
            return
        self._writer.emit(telemetry_events.make_event(
            telemetry_events.SPEC_END,
            spec=spec.content_hash,
            label=spec.label(),
            status=status,
            attempts=attempts,
            elapsed_s=elapsed,
            cached=cached,
        ))

    def _record_ok(
        self, spec: RunSpec, summary: RunSummary, elapsed: float
    ) -> None:
        """Common bookkeeping for one successfully executed spec."""
        self._memo[spec.content_hash] = summary
        self.executed += 1
        if self.store is not None:
            self.store.put(spec, summary, elapsed_s=elapsed)
        self._log(spec, f"ran in {elapsed:.2f}s")
        outcome = self.outcomes.get(spec.content_hash)
        attempts = outcome.attempts if outcome is not None else 1
        if self._aggregator is not None:
            self._aggregator.forget(spec.content_hash)
        if self._reporter is not None:
            self._reporter.spec_finished(attempts=attempts)
        self._emit_spec_end(spec, "ok", attempts, elapsed, cached=False)

    def _record_failure(self, spec: RunSpec, outcome: SpecOutcome) -> None:
        """A spec exhausted its attempts under skip/quarantine."""
        quarantined = self.quarantine is not None
        self._log(
            spec,
            f"{outcome.status} after {outcome.attempts} attempt(s)"
            + (" -> quarantined" if quarantined else ""),
        )
        if quarantined:
            self.quarantine.put(spec, outcome)
        if self._aggregator is not None:
            self._aggregator.forget(spec.content_hash)
        if self._reporter is not None:
            self._reporter.spec_finished(
                attempts=outcome.attempts,
                status="quarantined" if quarantined else outcome.status,
            )
        self._emit_spec_end(
            spec,
            outcome.status,
            outcome.attempts,
            sum(outcome.elapsed_s),
            cached=False,
        )

    def _signal_liveness(self, spec_hash: str) -> None:
        """Tell the campaign layer this spec is alive (lease renewal).

        A renewal failure (a briefly locked lease table, a vanished
        sidecar) must never kill the sweep that is making progress — the
        worst case is the lease expiring and another worker redundantly
        re-executing a spec, which content-hash dedupe makes harmless.
        """
        if self.on_worker_heartbeat is None:
            return
        try:
            self.on_worker_heartbeat(spec_hash)
        except Exception as exc:  # noqa: BLE001 — observability only
            print(
                f"warning: lease heartbeat for {spec_hash[:12]} failed: {exc}",
                file=sys.stderr,
            )

    def _run_one(self, spec: RunSpec) -> RunSummary | None:
        """Serial in-process execution with retries and backoff.

        With the default policy (one attempt, on_error="fail") this is
        exactly the legacy behavior: execute, record, re-raise errors
        unchanged.  Timeouts are not enforceable in-process — that is
        what the worker pool is for — so ``timeout_s`` never routes here.
        Returns None when the spec fails under "skip"/"quarantine".
        """
        history: list[Attempt] = []
        attempt = 1
        while True:
            # Serial execution has no heartbeat thread, so leases renew
            # at attempt boundaries only; campaign docs tell serial
            # workers to size lease_ttl_s beyond their slowest spec.
            self._signal_liveness(spec.content_hash)
            started = time.perf_counter()
            try:
                _, summary, elapsed = _timed_execute(spec, attempt=attempt)
            except Exception as exc:
                history.append(
                    Attempt(
                        "failed",
                        time.perf_counter() - started,
                        f"{type(exc).__name__}: {exc}",
                        traceback_module.format_exc(),
                    )
                )
                if attempt < self.retry.max_attempts:
                    self._log(spec, f"attempt {attempt} failed, retrying")
                    time.sleep(
                        self.retry.delay_s(attempt, spec.content_hash)
                    )
                    attempt += 1
                    continue
                outcome = SpecOutcome.from_attempts(
                    spec.content_hash, history
                )
                self.outcomes[spec.content_hash] = outcome
                if self.on_error == "fail":
                    raise
                self._record_failure(spec, outcome)
                return None
            history.append(Attempt("ok", elapsed))
            self.outcomes[spec.content_hash] = SpecOutcome.from_attempts(
                spec.content_hash, history
            )
            self._record_ok(spec, summary, elapsed)
            return summary

    def _run_pool(
        self, pending: list[RunSpec], results: dict[str, RunSummary]
    ) -> None:
        """Fan pending specs out over the crash-safe worker pool."""

        def on_ok(spec: RunSpec, summary_dict: dict, outcome) -> None:
            summary = RunSummary.from_dict(summary_dict)
            results[spec.content_hash] = summary
            self._record_ok(spec, summary, outcome.elapsed_s[-1])

        def on_heartbeat(spec: RunSpec, payload: dict) -> None:
            self._signal_liveness(spec.content_hash)
            if self.worker is not None:
                payload = {**payload, "worker": self.worker}
            if self._aggregator is not None:
                self._aggregator.record(payload)
            if self._reporter is not None:
                self._reporter.set_running(len(
                    self._aggregator.running(
                        stale_after_s=4 * self.heartbeat_s
                    )
                ))
                self._reporter.heartbeat()
            if self._writer is not None:
                self._writer.emit(telemetry_events.make_event(
                    telemetry_events.HEARTBEAT_EVENT, **payload
                ))

        # Heartbeats cost a timer thread per busy worker; only ask for
        # them when something consumes them (a reporter, a telemetry
        # sink, or a campaign lease waiting to be renewed).
        fleet_telemetry = (
            self._reporter is not None
            or self._writer is not None
            or self.on_worker_heartbeat is not None
        )
        run_with_retries(
            pending,
            jobs=self.jobs,
            policy=self.retry,
            timeout_s=self.timeout_s,
            on_error=self.on_error,
            on_ok=on_ok,
            on_exhausted=self._record_failure,
            outcomes=self.outcomes,
            on_heartbeat=on_heartbeat if fleet_telemetry else None,
            heartbeat_s=self.heartbeat_s if fleet_telemetry else None,
        )

    def _log(self, spec: RunSpec, status: str) -> None:
        # Always stderr: stdout belongs to the command's payload (tables,
        # `--json` documents) and progress must never corrupt a pipe.
        if self.verbose:
            print(
                f"[{spec.short_hash}] {spec.label()}: {status}",
                file=sys.stderr,
            )
