"""Spec execution and parallel sweep fan-out.

:func:`execute_spec` turns one :class:`~repro.sweep.spec.RunSpec` into a
:class:`~repro.sim.metrics.RunSummary` — generate the workload from the
spec's seed, build the configured simulator, run, summarize, and compute
any requested ``collect`` metrics into ``summary.extra``.

:class:`SweepRunner` maps that over many specs, optionally across a
``ProcessPoolExecutor`` (``jobs > 1``) and optionally against a
:class:`~repro.sweep.store.ResultStore` (``resume=True`` skips specs whose
hash already has a stored summary).  Because a spec fully determines its
run and workers share no mutable state, the parallel fan-out is
bit-identical to the serial loop — the determinism regression in
tests/test_sweep.py asserts exactly that.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from concurrent.futures import ProcessPoolExecutor

from ..experiments.common import (
    SCALES,
    ExperimentScale,
    run_negotiator,
    run_oblivious,
    sim_config,
)
from ..sim.flows import FlowTracker
from ..sim.metrics import RunSummary
from . import scenarios
from .spec import RunSpec
from .store import ResultStore


def scale_spec_fields(scale: ExperimentScale) -> dict:
    """RunSpec constructor kwargs pinning one scale.

    Registered scales are referenced by name; ad-hoc scales (test fixtures,
    custom fabrics) additionally embed their fabric shape so the spec is
    self-contained and its content hash covers the real geometry.
    """
    if SCALES.get(scale.name) == scale:
        return {"scale": scale.name}
    return {
        "scale": scale.name,
        "scale_params": {
            "name": scale.name,
            "num_tors": scale.num_tors,
            "ports_per_tor": scale.ports_per_tor,
            "awgr_ports": scale.awgr_ports,
            "duration_ns": scale.duration_ns,
            "max_flow_bytes": scale.max_flow_bytes,
            "seed": scale.seed,
        },
    }


def resolve_scale(spec: RunSpec) -> ExperimentScale:
    """The scale a spec runs at (inline shape beats the name registry)."""
    if spec.scale_params:
        return ExperimentScale(**dict(spec.scale_params))
    try:
        return SCALES[spec.scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {spec.scale!r}; choose from {sorted(SCALES)} "
            "or embed scale_params (see scale_spec_fields)"
        ) from None

# ---------------------------------------------------------------------------
# collectors: extra metrics computed from the finished simulator
# ---------------------------------------------------------------------------

Collector = Callable[..., object]

COLLECTORS: dict[str, Collector] = {}


def collector(name: str):
    """Register a ``collect`` metric: (sim, spec, scale, params) -> JSONable."""

    def wrap(fn: Collector) -> Collector:
        if name in COLLECTORS:
            raise ValueError(f"collector {name!r} already registered")
        COLLECTORS[name] = fn
        return fn

    return wrap


@collector("mice_cdf")
def _collect_mice_cdf(sim, spec, scale, params) -> dict:
    """The Fig 6 observable: empirical mice-FCT CDF plus the epoch length."""
    mice = sim.tracker.mice_flows(sim.config.mice_threshold_bytes)
    values_ns, fractions = FlowTracker.fct_cdf(mice)
    return {
        "values_us": [float(v) / 1e3 for v in values_ns],
        "fractions": [float(f) for f in fractions],
        "epoch_us": sim.timing.epoch_ns / 1e3,
    }


@collector("incast_finish_ns")
def _collect_incast_finish(sim, spec, scale, params) -> float:
    """The Fig 7a observable: last incast flow completion minus injection."""
    from ..workloads.incast import incast_finish_time_ns

    return float(incast_finish_time_ns(sim.tracker.flows, params["at_ns"]))


@collector("alltoall_goodput_gbps")
def _collect_alltoall_goodput(sim, spec, scale, params) -> float:
    """The Fig 7b observable: per-ToR received goodput over the transfer."""
    if not sim.tracker.all_complete:
        raise RuntimeError("all-to-all transfer did not finish")
    finish_ns = max(f.completed_ns for f in sim.tracker.flows)
    duration = finish_ns - params["at_ns"]
    return sim.tracker.delivered_bytes * 8.0 / duration / scale.num_tors


@collector("tag_finish_ns")
def _collect_tag_finish(sim, spec, scale, params) -> dict:
    """Per-tag last completion time — collective phase/round finish times."""
    finish: dict[str, float] = {}
    for flow in sim.tracker.flows:
        if flow.completed:
            tag = flow.tag or "untagged"
            finish[tag] = max(finish.get(tag, 0.0), flow.completed_ns)
    return finish


# ---------------------------------------------------------------------------
# single-spec execution
# ---------------------------------------------------------------------------


def execute_spec(spec: RunSpec) -> RunSummary:
    """Run one spec to completion and return its summary.

    Delegates the actual run to the experiments' reference helpers
    (``run_negotiator``/``run_oblivious``), so sweep results can never
    diverge from a directly-run experiment.  Module-level (and
    argument-picklable) so a process pool can ship it to workers unchanged.
    """
    scale = resolve_scale(spec)
    scenario = scenarios.get(spec.scenario)
    params = scenario.resolve_params(dict(spec.scenario_params))
    for name in spec.collect:
        if name not in COLLECTORS:
            raise ValueError(
                f"unknown collect metric {name!r}; "
                f"choose from {sorted(COLLECTORS)}"
            )

    flows = scenarios.build_workload(spec, scale, params)
    config = sim_config(scale, priority_queue_enabled=spec.priority_queue)
    if spec.without_speedup:
        config = config.without_speedup()
    duration = spec.duration_ns if spec.duration_ns else scale.duration_ns

    if spec.system == "oblivious":
        if spec.scheduler != "base" or spec.scheduler_params:
            raise ValueError(
                "scheduler variants apply to the negotiator system only"
            )
        artifacts = run_oblivious(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
        )
    else:
        artifacts = run_negotiator(
            scale,
            spec.topology,
            flows,
            duration_ns=duration,
            config=config,
            scheduler_name=spec.scheduler,
            scheduler_kwargs=dict(spec.scheduler_params),
            until_complete=spec.until_complete,
            max_ns=spec.max_ns,
        )

    summary = artifacts.summary
    for name in spec.collect:
        summary.extra[name] = COLLECTORS[name](
            artifacts.simulator, spec, scale, params
        )
    return summary


def _timed_execute(spec: RunSpec) -> tuple[str, RunSummary, float]:
    started = time.perf_counter()
    summary = execute_spec(spec)
    return spec.content_hash, summary, time.perf_counter() - started


# ---------------------------------------------------------------------------
# the sweep runner
# ---------------------------------------------------------------------------


class SweepRunner:
    """Executes spec batches with optional parallelism, caching, and resume.

    ``jobs=1`` (the default) runs serially in-process — the reference
    behavior.  With ``jobs > 1`` pending specs fan out over a process pool.
    A ``store`` persists every computed summary; with ``resume=True``,
    specs whose content hash is already stored are served from the store
    without running a simulation.

    After (any number of) :meth:`run` calls, ``executed`` counts the
    simulations actually performed and ``cached`` the store hits — the
    observability the "--resume executes zero simulations" contract is
    tested against.
    """

    def __init__(
        self,
        jobs: int = 1,
        store: ResultStore | None = None,
        resume: bool = False,
        verbose: bool = False,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if resume and store is None:
            raise ValueError("resume requires a result store")
        self.jobs = jobs
        self.store = store
        self.resume = resume
        self.verbose = verbose
        self.executed = 0
        self.cached = 0

    def run(self, specs: Iterable[RunSpec]) -> dict[str, RunSummary]:
        """Run (or fetch) every spec; returns {content_hash: summary}.

        Duplicate specs collapse to one run.  Results are keyed by hash so
        callers recover per-spec summaries regardless of execution order.
        """
        ordered: list[RunSpec] = []
        seen: set[str] = set()
        for spec in specs:
            if spec.content_hash not in seen:
                seen.add(spec.content_hash)
                ordered.append(spec)

        results: dict[str, RunSummary] = {}
        pending: list[RunSpec] = []
        stored = self.store.load() if (self.resume and self.store) else {}
        for spec in ordered:
            hit = stored.get(spec.content_hash)
            if hit is not None:
                results[spec.content_hash] = hit
                self.cached += 1
                self._log(spec, "cached")
            else:
                pending.append(spec)

        if len(pending) <= 1 or self.jobs == 1:
            for spec in pending:
                results[spec.content_hash] = self._run_one(spec)
        else:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for spec, (spec_hash, summary, elapsed) in zip(
                    pending, pool.map(_timed_execute, pending)
                ):
                    results[spec_hash] = summary
                    self.executed += 1
                    if self.store is not None:
                        self.store.put(spec, summary, elapsed_s=elapsed)
                    self._log(spec, f"ran in {elapsed:.2f}s")
        return results

    def _run_one(self, spec: RunSpec) -> RunSummary:
        spec_hash, summary, elapsed = _timed_execute(spec)
        self.executed += 1
        if self.store is not None:
            self.store.put(spec, summary, elapsed_s=elapsed)
        self._log(spec, f"ran in {elapsed:.2f}s")
        return summary

    def _log(self, spec: RunSpec, status: str) -> None:
        if self.verbose:
            print(f"[{spec.short_hash}] {spec.label()}: {status}")
