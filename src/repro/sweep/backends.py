"""Pluggable result-store backends behind one line-oriented protocol.

:class:`~repro.sweep.store.ResultStore` owns everything *semantic* about
a store — row checksums, torn-line tolerance, last-row-per-hash
resolution, the ``content_digest()`` convergence contract.  A backend
owns only the *bytes*: where lines live, how an append lands atomically,
and how an atomic canonical rewrite works.  Because every backend deals
in the same canonical JSON lines, the same logical content digests
identically whichever backend holds it — the equality the campaign
layer's N-worker convergence contract is stated in (DESIGN.md §17).

Three backends:

* :class:`JsonlBackend` — the original single-file append-only JSONL,
  byte-for-byte the pre-refactor on-disk format.
* :class:`ShardedJsonlBackend` — a directory of ``shard-NN.jsonl`` files
  keyed by spec-hash prefix plus a ``shards.json`` meta file carrying
  per-shard sizes and SHA-256 digests recorded at compact time.  Appends
  stay single O_APPEND writes to one shard; compaction rewrites each
  shard atomically.
* :class:`SqliteBackend` — one row per spec hash in a WAL-mode SQLite
  file, so many concurrent writers upsert safely; the same file also
  carries the campaign lease table (:mod:`repro.sweep.campaign`).

This module is deliberately a leaf: stdlib imports only, nothing from
the rest of the package, so :mod:`repro.telemetry` and
:mod:`repro.sweep.resilience` can borrow :func:`sidecar_path` without
import cycles.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
from collections.abc import Iterator, Sequence
from pathlib import Path

BACKENDS = ("jsonl", "sharded", "sqlite")

SQLITE_SUFFIXES = (".db", ".sqlite", ".sqlite3")

SHARD_META_NAME = "shards.json"

DEFAULT_NUM_SHARDS = 16

SHARD_PREFIX_HEX = 8
"""Hash prefix length (hex chars) that picks a shard."""


def detect_backend_kind(path: str | Path) -> str:
    """The backend a path denotes, judged by suffix and what's on disk.

    ``.db``/``.sqlite``/``.sqlite3`` is SQLite; an existing directory is
    a sharded store; everything else is single-file JSONL (the default
    and the legacy format).  A *new* sharded store must be requested
    explicitly — an unknown non-existent path never silently becomes a
    directory.
    """
    path = Path(path)
    if path.suffix in SQLITE_SUFFIXES:
        return "sqlite"
    if path.is_dir() or (path / SHARD_META_NAME).exists():
        return "sharded"
    return "jsonl"


def make_backend(
    path: str | Path, kind: str | None = None, shards: int | None = None
):
    """Construct the backend for ``path`` (auto-detected unless pinned)."""
    if kind is None:
        kind = detect_backend_kind(path)
    if kind == "jsonl":
        return JsonlBackend(path)
    if kind == "sharded":
        return ShardedJsonlBackend(path, num_shards=shards)
    if kind == "sqlite":
        return SqliteBackend(path)
    raise ValueError(f"unknown store backend {kind!r}; choose from {BACKENDS}")


def sidecar_path(
    store_path: str | Path, name: str, kind: str | None = None
) -> Path:
    """Where a store's sidecar file (quarantine, manifest, leases) lives.

    ``sweep.jsonl`` keeps the legacy suffix-swap derivation
    (``sweep.quarantine.jsonl``); a sharded directory holds its sidecars
    *inside* the directory (the shard reader only globs
    ``shard-*.jsonl``, so they can never be mistaken for data); any
    other path — ``campaign.db`` included — gets the name appended
    whole, so a ``.db`` store no longer loses its suffix to the old
    ``.jsonl`` string-replacement.
    """
    path = Path(store_path)
    if kind == "sharded" or (kind is None and detect_backend_kind(path) == "sharded"):
        return path / name
    if path.suffix == ".jsonl":
        return path.with_suffix("." + name)
    return path.with_name(path.name + "." + name)


def _append_bytes(path: Path, data: bytes) -> None:
    """One O_APPEND write(2): concurrent writers append whole lines."""
    fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


class ResultStoreBackend:
    """The line-currency protocol every store backend implements.

    Lines are complete canonical-JSON rows including the trailing
    newline; the facade owns their meaning.  ``iter_lines`` yields
    ``(location, line_number, line)`` so the facade can report problems
    as ``location:line``; ``signature`` is an opaque value that changes
    whenever the stored content may have changed (the facade's parse
    cache keys on it); ``rewrite`` atomically replaces the whole store
    with the given canonically-ordered lines.
    """

    kind: str
    path: Path

    def exists(self) -> bool:
        raise NotImplementedError

    def signature(self) -> tuple | None:
        raise NotImplementedError

    def iter_lines(self) -> Iterator[tuple[str, int, str]]:
        raise NotImplementedError

    def append_line(self, spec_hash: str, line: str) -> None:
        raise NotImplementedError

    def stale_order(self, hashes: Sequence[str]) -> bool:
        """Whether iteration order differs from this backend's canonical order."""
        raise NotImplementedError

    def rewrite(self, ordered: Sequence[tuple[str, str]]) -> None:
        """Atomically replace all content with (hash, line) pairs, sorted by hash."""
        raise NotImplementedError

    def integrity_problems(self) -> list[str]:
        """Backend-level corruption beyond what row checksums can see."""
        return []


class JsonlBackend(ResultStoreBackend):
    """The original single-file append-only JSONL store, unchanged on disk."""

    kind = "jsonl"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def signature(self) -> tuple | None:
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            return None
        return (stat.st_mtime_ns, stat.st_size, stat.st_ino)

    def iter_lines(self) -> Iterator[tuple[str, int, str]]:
        if not self.path.exists():
            return
        with self.path.open() as handle:
            for line_number, line in enumerate(handle, start=1):
                yield str(self.path), line_number, line

    def append_line(self, spec_hash: str, line: str) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _append_bytes(self.path, line.encode())

    def stale_order(self, hashes: Sequence[str]) -> bool:
        return list(hashes) != sorted(hashes)

    def rewrite(self, ordered: Sequence[tuple[str, str]]) -> None:
        # Temp file + fsync + os.replace: a crash at any instant leaves
        # either the old file or the finished new one, never a torn store.
        tmp_path = self.path.with_suffix(".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp_path.open("w") as handle:
            for _spec_hash, line in ordered:
                handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)


class ShardedJsonlBackend(ResultStoreBackend):
    """A directory of hash-sharded JSONL files with per-shard checksums.

    ``shard-NN.jsonl`` holds every row whose spec-hash prefix maps to
    shard ``NN``; ``shards.json`` pins the shard count (the on-disk value
    always wins, so readers and writers can never disagree) and records
    each shard's byte size and SHA-256 at the last compact.  Appends
    after a compact only grow a shard, so verification hashes the
    recorded prefix: a shard that shrank was truncated, a recorded
    prefix that hashes differently was corrupted in place.
    """

    kind = "sharded"

    def __init__(
        self, path: str | Path, num_shards: int | None = None
    ) -> None:
        self.path = Path(path)
        meta = self._read_meta()
        if meta is not None:
            on_disk = int(meta["num_shards"])
            if num_shards is not None and num_shards != on_disk:
                raise ValueError(
                    f"store {self.path} is sharded {on_disk} ways; "
                    f"cannot reopen with shards={num_shards}"
                )
            self.num_shards = on_disk
        else:
            if num_shards is not None and num_shards < 1:
                raise ValueError("shards must be at least 1")
            self.num_shards = (
                num_shards if num_shards is not None else DEFAULT_NUM_SHARDS
            )

    # -- layout ---------------------------------------------------------

    @property
    def meta_path(self) -> Path:
        return self.path / SHARD_META_NAME

    def shard_index(self, spec_hash: str) -> int:
        return int(spec_hash[:SHARD_PREFIX_HEX], 16) % self.num_shards

    def shard_path(self, index: int) -> Path:
        return self.path / f"shard-{index:02d}.jsonl"

    def _read_meta(self) -> dict | None:
        try:
            return json.loads((Path(self.path) / SHARD_META_NAME).read_text())
        except (FileNotFoundError, NotADirectoryError):
            return None
        except json.JSONDecodeError:
            return None

    def _write_meta(self, shard_records: dict | None = None) -> None:
        meta = {
            "backend": self.kind,
            "num_shards": self.num_shards,
            "shards": shard_records if shard_records is not None else {},
        }
        existing = self._read_meta()
        if shard_records is None and existing is not None:
            # Plain appends must not wipe the recorded compact digests.
            return
        self.path.mkdir(parents=True, exist_ok=True)
        tmp = self.meta_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, self.meta_path)

    # -- protocol -------------------------------------------------------

    def exists(self) -> bool:
        if self.meta_path.exists():
            return True
        return any(
            self.shard_path(i).exists() for i in range(self.num_shards)
        )

    def signature(self) -> tuple | None:
        if not self.exists():
            return None
        parts: list[tuple] = []
        for index in range(self.num_shards):
            try:
                stat = self.shard_path(index).stat()
            except FileNotFoundError:
                parts.append((index, None))
                continue
            parts.append((index, stat.st_mtime_ns, stat.st_size, stat.st_ino))
        return tuple(parts)

    def iter_lines(self) -> Iterator[tuple[str, int, str]]:
        for index in range(self.num_shards):
            shard = self.shard_path(index)
            if not shard.exists():
                continue
            with shard.open() as handle:
                for line_number, line in enumerate(handle, start=1):
                    yield str(shard), line_number, line

    def append_line(self, spec_hash: str, line: str) -> None:
        self.path.mkdir(parents=True, exist_ok=True)
        if not self.meta_path.exists():
            self._write_meta()
        _append_bytes(self.shard_path(self.shard_index(spec_hash)), line.encode())

    def stale_order(self, hashes: Sequence[str]) -> bool:
        # Canonical iteration is shard-by-shard, sorted by hash within
        # each shard — i.e. ascending (shard index, hash).
        previous = (-1, "")
        for spec_hash in hashes:
            key = (self.shard_index(spec_hash), spec_hash)
            if key <= previous:
                return True
            previous = key
        return False

    def rewrite(self, ordered: Sequence[tuple[str, str]]) -> None:
        by_shard: dict[int, list[str]] = {
            index: [] for index in range(self.num_shards)
        }
        for spec_hash, line in ordered:
            by_shard[self.shard_index(spec_hash)].append(line)
        self.path.mkdir(parents=True, exist_ok=True)
        records: dict[str, dict] = {}
        # Each shard is individually atomic (tmp + fsync + replace); a
        # crash mid-compaction leaves a mix of old and new shards, every
        # one of them whole — rows are self-checksummed, so the store
        # stays readable and a re-compact finishes the job.
        for index in range(self.num_shards):
            shard = self.shard_path(index)
            content = "".join(by_shard[index])
            tmp = shard.with_suffix(".tmp")
            with tmp.open("w") as handle:
                handle.write(content)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, shard)
            data = content.encode()
            records[shard.name] = {
                "bytes": len(data),
                "sha256": hashlib.sha256(data).hexdigest(),
            }
        self._write_meta(records)

    def integrity_problems(self) -> list[str]:
        meta = self._read_meta()
        if meta is None or not meta.get("shards"):
            return []
        problems = []
        for name, record in sorted(meta["shards"].items()):
            shard = self.path / name
            recorded_bytes = record["bytes"]
            try:
                size = shard.stat().st_size
            except FileNotFoundError:
                if recorded_bytes:
                    problems.append(f"{shard}: shard missing since last compact")
                continue
            if size < recorded_bytes:
                problems.append(
                    f"{shard}: truncated since last compact "
                    f"({size} < {recorded_bytes} bytes)"
                )
                continue
            # Appends only grow a shard, so the compact-time prefix must
            # still hash to the recorded digest.
            with shard.open("rb") as handle:
                prefix = handle.read(recorded_bytes)
            if hashlib.sha256(prefix).hexdigest() != record["sha256"]:
                problems.append(
                    f"{shard}: shard checksum mismatch over the compacted "
                    "prefix (corrupted in place)"
                )
        return problems


class SqliteBackend(ResultStoreBackend):
    """One row per spec hash in a WAL-mode SQLite file.

    Writes are upserts, so "last row per hash wins" is enforced at write
    time and compaction never has duplicates to drop.  WAL mode plus a
    generous busy timeout makes concurrent writers from independent
    processes safe — the property campaign lease mode leans on.  The
    same file carries the ``leases`` table
    (:class:`repro.sweep.campaign.SqliteLeases`).
    """

    kind = "sqlite"

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._conn: sqlite3.Connection | None = None

    def connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.path,
                isolation_level=None,  # autocommit; explicit BEGIN when needed
                timeout=30.0,
                check_same_thread=False,
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results ("
                "spec_hash TEXT PRIMARY KEY, line TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS leases ("
                "spec_hash TEXT PRIMARY KEY, owner TEXT NOT NULL, "
                "expires_at REAL NOT NULL)"
            )
            self._conn = conn
        return self._conn

    def exists(self) -> bool:
        return self.path.exists()

    def signature(self) -> tuple | None:
        if not self.path.exists():
            return None
        conn = self.connection()
        # data_version moves when *another* connection commits;
        # total_changes counts this connection's own writes.
        (data_version,) = conn.execute("PRAGMA data_version").fetchone()
        return (data_version, conn.total_changes)

    def iter_lines(self) -> Iterator[tuple[str, int, str]]:
        if not self.path.exists():
            return
        rows = self.connection().execute(
            "SELECT spec_hash, line FROM results ORDER BY spec_hash"
        )
        for line_number, (spec_hash, line) in enumerate(rows, start=1):
            yield f"{self.path}[{spec_hash[:12]}]", line_number, line

    def append_line(self, spec_hash: str, line: str) -> None:
        self.connection().execute(
            "INSERT INTO results (spec_hash, line) VALUES (?, ?) "
            "ON CONFLICT(spec_hash) DO UPDATE SET line = excluded.line",
            (spec_hash, line),
        )

    def stale_order(self, hashes: Sequence[str]) -> bool:
        return False  # SELECT ... ORDER BY spec_hash is always canonical

    def rewrite(self, ordered: Sequence[tuple[str, str]]) -> None:
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute("DELETE FROM results")
            for spec_hash, line in ordered:
                conn.execute(
                    "INSERT INTO results (spec_hash, line) VALUES (?, ?)",
                    (spec_hash, line),
                )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def integrity_problems(self) -> list[str]:
        if not self.path.exists():
            return []
        try:
            verdicts = [
                row[0]
                for row in self.connection().execute("PRAGMA quick_check")
            ]
        except sqlite3.DatabaseError as exc:
            return [f"{self.path}: not a readable SQLite database ({exc})"]
        return [
            f"{self.path}: {verdict}" for verdict in verdicts if verdict != "ok"
        ]

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None
