"""Frozen, content-addressed description of one simulation run.

A :class:`RunSpec` captures everything needed to reproduce a run — fabric
scale, system, topology, scheduler variant, traffic scenario, load, seed,
duration — as a frozen dataclass.  Its :meth:`~RunSpec.content_hash` is a
SHA-256 over the canonical JSON form, so the same spec hashes identically in
every process and on every platform (CPython's shortest-round-trip float
repr is what JSON emits, and key order is pinned by ``sort_keys``).  That
hash keys the result store: a sweep resumes by skipping every spec whose
hash already has a stored summary.

Determinism contract: a spec fully determines its run.  The workload is
generated from ``random.Random(seed)`` and the simulator from the scale's
config seed, with no shared mutable state between specs — which is why a
process-pool fan-out is bit-identical to a serial loop (DESIGN.md §8).
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping
from dataclasses import dataclass, fields, replace

SPEC_VERSION = 5
"""The newest spec schema this code understands.

The ``spec_version`` a spec *emits* (and therefore hashes) is the oldest
schema able to express it — see :meth:`RunSpec.spec_version` — so schema
growth never invalidates stored hashes of specs that don't use the new
features.

Version history: 1 — the original PR 2 schema; 2 — adds ``epoch_params``,
``failure_params``, ``instrument`` and the ``relay`` system (the full
experiment migration); 3 — adds the ``rotor`` system and ``rotor_params``
(the RotorNet-style baseline); 4 — reserved (streaming execution was
planned as a schema bump but landed hash-neutrally within version 2, so
the number was never emitted); 5 — adds the ``adaptive`` system and
``adaptive_params`` (the demand-aware D3-class baseline).  The ``stream``
field only enters the canonical JSON when non-default — like
``rotor_params`` and ``adaptive_params`` — so every pre-existing spec
keeps its hash."""

Params = tuple[tuple[str, object], ...]

PARAM_FIELDS = (
    "scale_params",
    "scheduler_params",
    "scenario_params",
    "epoch_params",
    "failure_params",
    "instrument",
    "rotor_params",
    "adaptive_params",
)
"""RunSpec fields holding frozen key/value parameter tuples."""

SYSTEMS = ("adaptive", "negotiator", "oblivious", "relay", "rotor")
TOPOLOGIES = ("parallel", "thinclos")


def unknown_name_message(kind: str, names, registry) -> str:
    """The one diagnostic shape for names missing from a registry.

    Every ``system=``/``engine=`` validation site — spec construction,
    spec execution, the CLI's argument rejection, the scale bench — goes
    through this helper, so the message can never drift between entry
    points (the regression in tests/test_cli_and_analysis.py pins it).
    """
    return (
        f"unknown {kind}(s): {', '.join(names)} "
        f"(choose from {', '.join(sorted(registry))})"
    )


def freeze_params(params: Mapping[str, object] | None) -> Params:
    """Canonicalize a parameter mapping into a sorted, hashable tuple."""
    if not params:
        return ()
    for key, value in params.items():
        if value is not None and not isinstance(value, (int, float, str, bool)):
            raise TypeError(
                f"spec parameter {key!r} must be a scalar, got "
                f"{type(value).__name__}"
            )
    return tuple(sorted(params.items()))


def system_spec_fields(kind: str) -> dict:
    """Map an experiment "system" label to RunSpec system/topology fields.

    Experiments label their curves ``parallel``/``thinclos`` (NegotiaToR on
    that fabric), ``oblivious``, ``rotor``, ``adaptive``, or ``relay`` —
    and the oblivious, rotor, and adaptive baselines and the
    selective-relay variant always run on thin-clos, whose AWGR structure
    their schemes need.  This helper is that invariant's single home.
    """
    if kind in ("adaptive", "oblivious", "relay", "rotor"):
        return {"system": kind, "topology": "thinclos"}
    return {"system": "negotiator", "topology": kind}


@dataclass(frozen=True)
class RunSpec:
    """One point of a sweep: a fully reproducible simulation run.

    ``seed`` is the *workload* seed (fed to the scenario generator as
    ``random.Random(seed)``); the simulator's own seed comes from the scale.
    ``load`` is ignored by synchronous scenarios (incast, all-to-all, the
    collectives) but still participates in the hash, so leave it at 1.0
    there.  ``collect`` names extra metrics the runner computes into
    ``RunSummary.extra`` (see :mod:`repro.sweep.runner`).

    ``scale`` normally names a registered scale (micro/tiny/small/paper);
    an ad-hoc :class:`~repro.experiments.common.ExperimentScale` is pinned
    by also setting ``scale_params`` to its fabric shape (use
    :func:`repro.sweep.runner.scale_spec_fields`), so the content hash
    covers the actual fabric rather than an unregistered name.

    ``epoch_params`` overrides the epoch configuration: any
    :class:`~repro.sim.config.EpochConfig` field by name, plus the derived
    knobs ``piggyback`` (False applies the Table 2 no-piggyback protocol)
    and ``reconfiguration_delay_ns`` (the Fig 8 guardband stretch).

    ``failure_params`` declares a link-failure plan (``plan`` is ``random``
    or ``egress-ports`` plus that plan's arguments; negotiator and rotor
    systems).

    ``stream=True`` runs the spec through the streaming path (DESIGN.md
    §11): the workload is generated lazily and the tracker evicts completed
    flows into online accumulators, so memory stays bounded however long
    the trace.  Exact summary fields (counts, goodput) match the
    materialized run; FCT percentiles are reservoir-exact up to the
    reservoir capacity.  Streaming specs cannot request ``collect`` or
    ``instrument`` (those read retained per-flow state).

    ``rotor_params`` configures the ``rotor`` system's
    :class:`~repro.sim.config.RotorConfig` by field name
    (``packets_per_slice``, ``reconfiguration_delay_ns``, ``vlb_relay``);
    like ``stream``, the field enters the canonical JSON only when set, so
    it is hash-neutral for every pre-existing spec.

    ``adaptive_params`` configures the ``adaptive`` system's
    :class:`~repro.sim.config.AdaptiveConfig` by field name
    (``packets_per_slice``, ``reconfiguration_delay_ns``, ``ewma_alpha``,
    ``recompute_slices``, ``residual_ports``); hash-neutral the same way.

    ``instrument`` attaches recorders the ``collect`` metrics read:
    ``bandwidth_bin_ns`` (a :class:`~repro.sim.metrics.BandwidthRecorder`),
    ``pair_bandwidth`` (per-pair keys; negotiator only), ``match_ratio``
    (a :class:`~repro.sim.metrics.MatchRatioRecorder`; negotiator only).

    The ``relay`` system is the selective-relay variant of appendix A.2.2;
    it runs on thin-clos and interprets ``scheduler_params`` as
    :class:`~repro.core.relay.RelayPolicy` overrides.
    """

    scale: str
    scale_params: Params = ()
    system: str = "negotiator"
    topology: str = "parallel"
    scheduler: str = "base"
    scheduler_params: Params = ()
    scenario: str = "poisson"
    scenario_params: Params = ()
    load: float = 1.0
    seed: int = 0
    duration_ns: float | None = None
    priority_queue: bool = True
    without_speedup: bool = False
    until_complete: bool = False
    max_ns: float | None = None
    epoch_params: Params = ()
    failure_params: Params = ()
    instrument: Params = ()
    collect: tuple[str, ...] = ()
    stream: bool = False
    rotor_params: Params = ()
    adaptive_params: Params = ()

    def __post_init__(self) -> None:
        if self.system not in SYSTEMS:
            raise ValueError(
                unknown_name_message("system", [self.system], SYSTEMS)
            )
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}; choose from {TOPOLOGIES}"
            )
        if self.load <= 0:
            raise ValueError("load must be positive")
        if self.duration_ns is not None and self.duration_ns <= 0:
            raise ValueError("duration_ns must be positive")
        # Normalize params passed as dicts so hashing never sees a dict.
        for name in PARAM_FIELDS:
            if isinstance(getattr(self, name), Mapping):
                object.__setattr__(
                    self, name, freeze_params(getattr(self, name))
                )
        object.__setattr__(self, "collect", tuple(self.collect))

    # ------------------------------------------------------------------
    # serialization and hashing
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable form (tuples become lists).

        ``stream``, ``rotor_params``, and ``adaptive_params`` are emitted
        only when non-default: all three fields joined the schema after
        stores and baselines existed, and omitting the default keeps the
        canonical JSON — and therefore every stored content hash — of all
        pre-existing specs unchanged.
        """
        payload = {
            "scale": self.scale,
            "scale_params": [list(kv) for kv in self.scale_params],
            "system": self.system,
            "topology": self.topology,
            "scheduler": self.scheduler,
            "scheduler_params": [list(kv) for kv in self.scheduler_params],
            "scenario": self.scenario,
            "scenario_params": [list(kv) for kv in self.scenario_params],
            "load": self.load,
            "seed": self.seed,
            "duration_ns": self.duration_ns,
            "priority_queue": self.priority_queue,
            "without_speedup": self.without_speedup,
            "until_complete": self.until_complete,
            "max_ns": self.max_ns,
            "epoch_params": [list(kv) for kv in self.epoch_params],
            "failure_params": [list(kv) for kv in self.failure_params],
            "instrument": [list(kv) for kv in self.instrument],
            "collect": list(self.collect),
        }
        if self.stream:
            payload["stream"] = True
        if self.rotor_params:
            payload["rotor_params"] = [list(kv) for kv in self.rotor_params]
        if self.adaptive_params:
            payload["adaptive_params"] = [
                list(kv) for kv in self.adaptive_params
            ]
        return payload

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunSpec":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in PARAM_FIELDS:
            kwargs[name] = tuple(
                (str(k), v) for k, v in kwargs.get(name, ())
            )
        kwargs["collect"] = tuple(kwargs.get("collect", ()))
        return cls(**kwargs)

    @property
    def spec_version(self) -> int:
        """The oldest schema version able to express this spec.

        This — not :data:`SPEC_VERSION` — is what enters the canonical
        JSON: a spec hashes under the schema that introduced the newest
        feature it actually uses, so adding schema versions never moves
        the hashes of specs that predate them.
        """
        if self.system == "adaptive" or self.adaptive_params:
            return 5
        if self.system == "rotor" or self.rotor_params:
            return 3
        return 2

    def canonical_json(self) -> str:
        """The byte-stable JSON form the content hash is taken over."""
        payload = {"spec_version": self.spec_version, **self.to_dict()}
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @property
    def content_hash(self) -> str:
        """Stable SHA-256 hex digest of the canonical JSON form."""
        return hashlib.sha256(self.canonical_json().encode()).hexdigest()

    @property
    def short_hash(self) -> str:
        """First 12 hex chars — enough for display and log lines."""
        return self.content_hash[:12]

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def scenario_param(self, key: str, default=None):
        """One scenario parameter by name."""
        return dict(self.scenario_params).get(key, default)

    def with_params(self, **changes) -> "RunSpec":
        """A copy with dataclass fields replaced (params auto-frozen)."""
        return replace(self, **changes)

    def label(self) -> str:
        """A compact human-readable identity for tables and logs."""
        parts = [self.system, self.topology, self.scenario]
        if self.scheduler != "base":
            parts.append(self.scheduler)
        parts.append(f"load={self.load:g}")
        parts.append(f"seed={self.seed}")
        if not self.priority_queue:
            parts.append("no-pq")
        if self.without_speedup:
            parts.append("1x")
        if self.stream:
            parts.append("stream")
        return " ".join(parts)
