"""Core selection for the NegotiaToR engine (DESIGN.md section 15).

``SimConfig.core`` (or the ``REPRO_CORE`` environment variable) chooses
between the scalar reference engine and the vectorized core.  The
vectorized core supports the common configuration only — the parallel
network with the base scheduler and no per-epoch recorders — so this
factory checks eligibility and falls back to the scalar engine outside
that envelope.  Because the default core is ``"scalar"``, a resolved
``"vectorized"`` is always an explicit request (config field or env
var), and a fallback then emits one :class:`RuntimeWarning` naming the
first envelope condition that failed; the default configuration never
warns.  Both cores are bit-identical on a fixed seed; the fallback is a
performance decision, never a semantic one.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from ..topology.parallel import ParallelNetwork
from .config import SimConfig
from .flows import Flow
from .network import NegotiaToRSimulator
from .vectorized import VectorizedNegotiaToRSimulator


def vectorized_core_ineligibility(
    config: SimConfig,
    topology,
    *,
    scheduler=None,
    match_recorder=None,
    bandwidth_recorder=None,
    record_pair_bandwidth: bool = False,
) -> str | None:
    """Why the vectorized core cannot run this configuration (None: it can).

    The envelope: parallel network, base scheduler (no variant hooks),
    no match-ratio or bandwidth recorders, and no receiver buffers.
    Link failures, streaming sources, and telemetry tracers are all
    supported inside the envelope.  Returns the first failed condition
    as a human-readable phrase, which the factory's fallback warning
    quotes verbatim.
    """
    if not isinstance(topology, ParallelNetwork):
        return f"topology {topology.name!r} is not the parallel network"
    if scheduler is not None:
        return "a scheduler variant is attached"
    if match_recorder is not None:
        return "a match-ratio recorder is attached"
    if bandwidth_recorder is not None:
        return "a bandwidth recorder is attached"
    if record_pair_bandwidth:
        return "per-pair bandwidth recording is enabled"
    if config.receiver_buffer_bytes is not None:
        return "receiver buffers are configured"
    return None


def vectorized_core_eligible(
    config: SimConfig,
    topology,
    *,
    scheduler=None,
    match_recorder=None,
    bandwidth_recorder=None,
    record_pair_bandwidth: bool = False,
) -> bool:
    """Whether the vectorized core can run this exact configuration."""
    return (
        vectorized_core_ineligibility(
            config,
            topology,
            scheduler=scheduler,
            match_recorder=match_recorder,
            bandwidth_recorder=bandwidth_recorder,
            record_pair_bandwidth=record_pair_bandwidth,
        )
        is None
    )


def make_negotiator(
    config: SimConfig,
    topology,
    flows: Iterable[Flow],
    *,
    scheduler=None,
    failure_model=None,
    failure_plan=None,
    match_recorder=None,
    bandwidth_recorder=None,
    record_pair_bandwidth: bool = False,
    stream: bool = False,
    tracer=None,
):
    """Build the NegotiaToR engine the resolved core calls for.

    Returns a :class:`VectorizedNegotiaToRSimulator` when
    ``config.resolved_core`` is ``"vectorized"`` and the configuration is
    inside the vectorized envelope; the scalar
    :class:`NegotiaToRSimulator` otherwise.  Falling back from an
    explicit vectorized request warns (see the module docstring); the
    result's actual core is always reported by its ``core_used``
    property.
    """
    if config.resolved_core == "vectorized":
        reason = vectorized_core_ineligibility(
            config,
            topology,
            scheduler=scheduler,
            match_recorder=match_recorder,
            bandwidth_recorder=bandwidth_recorder,
            record_pair_bandwidth=record_pair_bandwidth,
        )
        if reason is None:
            return VectorizedNegotiaToRSimulator(
                config,
                topology,
                flows,
                failure_model=failure_model,
                failure_plan=failure_plan,
                stream=stream,
                tracer=tracer,
            )
        warnings.warn(
            "vectorized core was requested but this configuration is "
            f"outside its envelope ({reason}); running the scalar "
            "reference engine instead",
            RuntimeWarning,
            stacklevel=2,
        )
    return NegotiaToRSimulator(
        config,
        topology,
        flows,
        scheduler=scheduler,
        failure_model=failure_model,
        failure_plan=failure_plan,
        match_recorder=match_recorder,
        bandwidth_recorder=bandwidth_recorder,
        record_pair_bandwidth=record_pair_bandwidth,
        stream=stream,
        tracer=tracer,
    )
