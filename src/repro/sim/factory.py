"""Core selection for the NegotiaToR engine (DESIGN.md section 15).

``SimConfig.core`` (or the ``REPRO_CORE`` environment variable) chooses
between the scalar reference engine and the vectorized core.  The
vectorized core supports the common configuration only — the parallel
network with the base scheduler and no per-epoch recorders — so this
factory checks eligibility and silently falls back to the scalar engine
outside that envelope.  Both cores are bit-identical on a fixed seed;
the fallback is a performance decision, never a semantic one.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..topology.parallel import ParallelNetwork
from .config import SimConfig
from .flows import Flow
from .network import NegotiaToRSimulator
from .vectorized import VectorizedNegotiaToRSimulator


def vectorized_core_eligible(
    config: SimConfig,
    topology,
    *,
    scheduler=None,
    match_recorder=None,
    bandwidth_recorder=None,
    record_pair_bandwidth: bool = False,
) -> bool:
    """Whether the vectorized core can run this exact configuration.

    The envelope: parallel network, base scheduler (no variant hooks),
    no match-ratio or bandwidth recorders, and no receiver buffers.
    Link failures, streaming sources, and telemetry tracers are all
    supported inside the envelope.
    """
    return (
        isinstance(topology, ParallelNetwork)
        and scheduler is None
        and match_recorder is None
        and bandwidth_recorder is None
        and not record_pair_bandwidth
        and config.receiver_buffer_bytes is None
    )


def make_negotiator(
    config: SimConfig,
    topology,
    flows: Iterable[Flow],
    *,
    scheduler=None,
    failure_model=None,
    failure_plan=None,
    match_recorder=None,
    bandwidth_recorder=None,
    record_pair_bandwidth: bool = False,
    stream: bool = False,
    tracer=None,
):
    """Build the NegotiaToR engine the resolved core calls for.

    Returns a :class:`VectorizedNegotiaToRSimulator` when
    ``config.resolved_core`` is ``"vectorized"`` and the configuration is
    inside the vectorized envelope; the scalar
    :class:`NegotiaToRSimulator` otherwise.
    """
    if config.resolved_core == "vectorized" and vectorized_core_eligible(
        config,
        topology,
        scheduler=scheduler,
        match_recorder=match_recorder,
        bandwidth_recorder=bandwidth_recorder,
        record_pair_bandwidth=record_pair_bandwidth,
    ):
        return VectorizedNegotiaToRSimulator(
            config,
            topology,
            flows,
            failure_model=failure_model,
            failure_plan=failure_plan,
            stream=stream,
            tracer=tracer,
        )
    return NegotiaToRSimulator(
        config,
        topology,
        flows,
        scheduler=scheduler,
        failure_model=failure_model,
        failure_plan=failure_plan,
        match_recorder=match_recorder,
        bandwidth_recorder=bandwidth_recorder,
        record_pair_bandwidth=record_pair_bandwidth,
        stream=stream,
        tracer=tracer,
    )
