"""The RotorNet-style rotor baseline: long-slice round-robin + RotorLB relay.

This is the *other* classic traffic-oblivious design the paper positions
itself against (RotorNet, SIGCOMM'17; Opera, NSDI'20): a fabric that cycles
a fixed round-robin schedule of Birkhoff–von-Neumann permutation matchings
with **no negotiation phase at all**.  It differs from the Sirius-flavored
:class:`~repro.sim.oblivious.ObliviousSimulator` on two axes:

* **Timing** — the rotor holds each matching for a long *slice*
  (``RotorConfig.packets_per_slice`` data packets per port) and pays a
  ``reconfiguration_delay_ns`` guard on every rotation, instead of
  reconfiguring after every single packet.  Slice length and duty cycle are
  the rotor's defining trade-off: long slices amortize reconfiguration but
  make a source wait up to a whole cycle for its destination.
* **Traffic steering** — instead of spraying every cell over a uniformly
  random intermediate up front, the rotor runs the RotorLB discipline: when
  (tor, port) is connected to ``peer`` it serves, in strict order,

  1. buffered **relay** bytes destined to ``peer`` (second Valiant hop —
     strict priority keeps intermediate buffers bounded),
  2. its own **direct** backlog for ``peer`` (PIAS bands apply at sources,
     exactly as in the other engines), and
  3. with leftover slice capacity and ``vlb_relay`` enabled, **indirect**
     offload: lowest-band backlog for *other* destinations is handed to
     ``peer``, which acts as the Valiant intermediate and delivers it when
     its own rotor reaches the final destination.  Only lowest-band
     (elephant) bytes relay — mice keep their direct one-hop path, the
     same discipline as the selective relay (appendix A.2.2) — and relayed
     data loses its PIAS class at the intermediate, which is exactly the
     mice-behind-elephants pathology the paper ascribes to rotor fabrics.

The engine reuses the shared substrate end to end: segment queues
(:class:`~repro.sim.queues.PiasDestQueue`), the failure model and event
plans (:mod:`repro.sim.failures` — a transmission is lost when its
(tor, port) link is down at the slice it rides), the bandwidth recorder,
and both flow-source modes (``stream=True`` pairs a lazy arrival-ordered
iterator with the bounded-memory tracker, DESIGN.md section 11).

The schedule itself comes from the topology's predefined round-robin
rotation: within one cycle of ``predefined_slots`` matchings every ordered
ToR pair is connected exactly once per port-cycle, so each round-robin
cycle offers every source all N-1 destinations exactly once (the invariant
tests/test_rotor_engine.py pins, with and without link failures).
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from time import perf_counter

from ..topology.base import FlatTopology
from .config import RotorConfig, SimConfig, transmit_ns
from .failures import FailurePlan, LinkFailureModel
from .flows import Flow, FlowTracker
from .metrics import BandwidthRecorder, RunSummary
from .queues import PiasDestQueue
from .source import MaterializedFlowSource, StreamingFlowSource


class RotorSimulator:
    """Slice-driven rotor fabric over a finite set of flows.

    ``stream=True`` consumes ``flows`` lazily from an arrival-ordered
    iterator with a bounded-memory tracker, mirroring the other engines'
    streaming mode.
    """

    def __init__(
        self,
        config: SimConfig,
        topology: FlatTopology,
        flows: Iterable[Flow],
        rotor: RotorConfig | None = None,
        failure_model: LinkFailureModel | None = None,
        failure_plan: FailurePlan | None = None,
        bandwidth_recorder: BandwidthRecorder | None = None,
        stream: bool = False,
        tracer=None,
    ) -> None:
        if topology.num_tors != config.num_tors:
            raise ValueError("topology and config disagree on num_tors")
        if topology.ports_per_tor != config.ports_per_tor:
            raise ValueError("topology and config disagree on ports_per_tor")
        self.config = config
        self.topology = topology
        self.rotor = rotor or RotorConfig()

        packet_bytes = (
            config.epoch.data_header_bytes + config.epoch.data_payload_bytes
        )
        self._tx_ns = transmit_ns(packet_bytes, config.uplink_gbps)
        self.slice_ns = self.rotor.slice_ns(config.epoch, config.uplink_gbps)
        self.payload_bytes = config.epoch.data_payload_bytes
        self.cycle_slots = topology.predefined_slots

        self.failures = failure_model or LinkFailureModel(
            config.num_tors, config.ports_per_tor
        )
        self._failure_events = (
            failure_plan.sorted_events() if failure_plan is not None else []
        )
        self._next_failure_event = 0

        self._stream = stream
        if stream:
            self.tracker = FlowTracker(
                config.num_tors,
                retain_flows=False,
                mice_threshold_bytes=config.mice_threshold_bytes,
                reservoir_seed=config.seed,
            )
            self._source = StreamingFlowSource(flows)
        else:
            self.tracker = FlowTracker(config.num_tors)
            self._source = MaterializedFlowSource(flows)
            self.tracker.register_all(self._source.flows)

        n = config.num_tors
        if config.priority_queue_enabled:
            self._band_limits = tuple(config.pias_thresholds)
        else:
            self._band_limits = ()
        # Per (source, destination) direct queues with PIAS bands: bytes
        # wait here until the rotor connects the pair (or, with VLB, until
        # leftover capacity offloads lowest-band bytes through a detour).
        self._direct: list[dict[int, PiasDestQueue]] = [{} for _ in range(n)]
        self._direct_pending = [0] * n
        # Per (intermediate, final destination) relay queues, single band.
        self._relay: list[dict[int, PiasDestQueue]] = [{} for _ in range(n)]
        self._relay_pending = [0] * n
        self.bandwidth = bandwidth_recorder
        # Observational telemetry hooks (DESIGN.md section 14); None keeps
        # the slice loop branch-free beyond one check.
        self._tracer = tracer
        self._slice = 0
        # Vectorized core (DESIGN.md section 15): active-set iteration over
        # ToRs with pending bytes and whole-slice fast-forward while the
        # fabric is empty and failure detection is in steady state.
        self._vectorized = config.resolved_core == "vectorized"
        self._ff_enabled = self._vectorized and config.idle_fast_forward
        self._slices_fast_forwarded = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        """Start time of the next slice."""
        return self._slice * self.slice_ns

    @property
    def core_used(self) -> str:
        """Which engine core this instance runs (internal switch)."""
        return "vectorized" if self._vectorized else "scalar"

    @property
    def slices(self) -> int:
        """Number of slices simulated so far."""
        return self._slice

    @property
    def total_queued_bytes(self) -> int:
        """Bytes waiting at sources plus bytes in flight at intermediates."""
        return sum(self._direct_pending) + sum(self._relay_pending)

    def direct_bytes_at(self, tor: int) -> int:
        """Bytes currently queued for direct transmission at one ToR."""
        return self._direct_pending[tor]

    def relay_bytes_at(self, tor: int) -> int:
        """Bytes currently buffered at one intermediate ToR."""
        return self._relay_pending[tor]

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def run(self, duration_ns: float) -> None:
        """Simulate whole slices until ``duration_ns`` is covered.

        Loop control is an exact integer slice budget: the float duration
        is converted once via :meth:`_slice_ceil` (exact against the
        engine's own ``slice * slice_ns`` arithmetic), so long horizons
        cannot accumulate float drift in the stepping decision.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        target_slice = self._slice_ceil(duration_ns)
        while self._slice < target_slice:
            self._maybe_fast_forward(target_slice)
            if self._slice >= target_slice:
                break
            self.step_slice()

    def run_until_complete(self, max_ns: float) -> bool:
        """Simulate until every flow completes (or ``max_ns``).

        In streaming mode the source must also be exhausted — flows the
        engine has not pulled yet are still outstanding work.
        """
        if max_ns <= 0:
            raise ValueError("max_ns must be positive")
        limit_slice = self._slice_ceil(max_ns)
        while (
            self._source.next_arrival_ns is not None
            or not self.tracker.all_complete
        ):
            if self._slice >= limit_slice:
                return False
            self._maybe_fast_forward(limit_slice)
            if self._slice >= limit_slice:
                return False
            self.step_slice()
        return True

    @property
    def fast_forwarded_slices(self) -> int:
        """Idle slices the run loops skipped without stepping them."""
        return self._slices_fast_forwarded

    def _slice_ceil(self, time_ns: float) -> int:
        """Smallest slice index whose start time is at or after ``time_ns``.

        The while-loops absorb float rounding in the division so the result
        is exact against the engine's own ``slice * slice_ns`` arithmetic.
        """
        slice_ns = self.slice_ns
        index = math.ceil(time_ns / slice_ns)
        while index > 0 and (index - 1) * slice_ns >= time_ns:
            index -= 1
        while index * slice_ns < time_ns:
            index += 1
        return index

    def _maybe_fast_forward(self, limit_slice: int) -> None:
        """Jump ``_slice`` over slices in which provably nothing happens.

        Legal only when the fabric is completely empty *and* failure
        detection is in steady state (``tick_epoch`` would be a no-op).
        The jump stops at the first slice that can inject the next arrival
        or apply the next failure/repair event, so every skipped slice
        would have been an exact no-op.
        """
        if not self._ff_enabled or not self.failures.is_quiescent:
            return
        if any(self._direct_pending) or any(self._relay_pending):
            return
        target = limit_slice
        arrival = self._source.next_arrival_ns
        if arrival is not None:
            target = min(target, self._slice_ceil(arrival))
        events = self._failure_events
        if self._next_failure_event < len(events):
            target = min(
                target,
                self._slice_ceil(events[self._next_failure_event].time_ns),
            )
        if target > self._slice:
            skipped = target - self._slice
            self._slices_fast_forwarded += skipped
            self._slice = target
            if self._tracer is not None:
                # Preserve counter totals: each skipped slice would have
                # counted one "slices" tick and moved no packets.
                self._tracer.count("slices", skipped)

    # ------------------------------------------------------------------
    # one slice
    # ------------------------------------------------------------------

    def step_slice(self) -> None:
        """Simulate one rotor slice across all ToRs and ports."""
        slice_index = self._slice
        start_ns = self.now_ns
        tracer = self._tracer
        if tracer is not None:
            t_inject = perf_counter()
        self._apply_failure_events(start_ns)
        self.failures.tick_epoch()
        self._inject_arrivals(start_ns)
        if tracer is not None:
            tracer.add_span("inject", perf_counter() - t_inject)

        topology = self.topology
        cycle_slot = slice_index % self.cycle_slots
        cycle = slice_index // self.cycle_slots
        failures = self.failures
        check = failures.any_failed
        budget = self.rotor.packets_per_slice
        # Active-set iteration (DESIGN.md section 15): a ToR with no direct
        # and no relay backlog provably sends nothing this slice, so the
        # vectorized core skips it without touching its (empty) queues.
        skip_idle_tors = self._vectorized
        direct_pending = self._direct_pending
        relay_pending = self._relay_pending

        if tracer is None:
            for tor in range(self.config.num_tors):
                if (
                    skip_idle_tors
                    and not direct_pending[tor]
                    and not relay_pending[tor]
                ):
                    continue
                for port in range(self.config.ports_per_tor):
                    peer = topology.predefined_peer(
                        tor, port, cycle_slot, cycle
                    )
                    if peer is None:
                        continue
                    if check and not failures.transmission_ok(
                        tor, port, peer, port
                    ):
                        continue
                    used = self._serve_relay(tor, peer, start_ns, 0, budget)
                    used += self._serve_direct(
                        tor, peer, start_ns, used, budget
                    )
                    if self.rotor.vlb_relay and used < budget:
                        self._offload_indirect(
                            tor, peer, start_ns, used, budget
                        )
        else:
            # Same service order, with wall time attributed per RotorLB
            # stage: relay (second hop), drain (direct), offload (VLB).
            for tor in range(self.config.num_tors):
                if (
                    skip_idle_tors
                    and not direct_pending[tor]
                    and not relay_pending[tor]
                ):
                    continue
                for port in range(self.config.ports_per_tor):
                    peer = topology.predefined_peer(
                        tor, port, cycle_slot, cycle
                    )
                    if peer is None:
                        continue
                    if check and not failures.transmission_ok(
                        tor, port, peer, port
                    ):
                        continue
                    t0 = perf_counter()
                    used = self._serve_relay(tor, peer, start_ns, 0, budget)
                    now = perf_counter()
                    tracer.add_span("relay", now - t0)
                    tracer.count("relay_packets", used)
                    direct = self._serve_direct(
                        tor, peer, start_ns, used, budget
                    )
                    used += direct
                    t0 = perf_counter()
                    tracer.add_span("drain", t0 - now)
                    tracer.count("direct_packets", direct)
                    if self.rotor.vlb_relay and used < budget:
                        self._offload_indirect(
                            tor, peer, start_ns, used, budget
                        )
                        tracer.add_span("offload", perf_counter() - t0)
        self.tracker.flush_completions()
        self._slice += 1
        if tracer is not None:
            tracer.count("slices")
            if tracer.gauge_due(int(self.now_ns)):
                tracer.sample(
                    int(self.now_ns),
                    queued_bytes=self.total_queued_bytes,
                    relay_bytes=sum(self._relay_pending),
                )

    # ------------------------------------------------------------------
    # slice timing
    # ------------------------------------------------------------------

    def _packet_start_ns(self, slice_start_ns: float, k: int) -> float:
        """Start of the k-th packet opportunity inside one slice."""
        return (
            slice_start_ns
            + self.rotor.reconfiguration_delay_ns
            + k * self._tx_ns
        )

    def _packet_deliver_ns(self, slice_start_ns: float, k: int) -> float:
        """Arrival time of the k-th packet at the receiving ToR."""
        return (
            self._packet_start_ns(slice_start_ns, k)
            + self._tx_ns
            + self.config.propagation_ns
        )

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------

    def _inject_arrivals(self, before_ns: float) -> None:
        source = self._source
        arrival = source.next_arrival_ns
        register = self.tracker.register if self._stream else None
        while arrival is not None and arrival <= before_ns:
            flow = source.pop()
            if register is not None:
                register(flow)
            queue = self._direct[flow.src].get(flow.dst)
            if queue is None:
                queue = PiasDestQueue(
                    self._band_limits, enabled=bool(self._band_limits)
                )
                self._direct[flow.src][flow.dst] = queue
            queue.enqueue_flow(flow)
            self._direct_pending[flow.src] += flow.size_bytes
            arrival = source.next_arrival_ns

    # ------------------------------------------------------------------
    # the three RotorLB service steps
    # ------------------------------------------------------------------

    def _transmit(
        self,
        queue: PiasDestQueue,
        peer: int,
        start_ns: float,
        offset: int,
        budget: int,
        *,
        band: int | None = None,
    ) -> tuple[int, int]:
        """Drain one queue toward the connected peer; (slots used, bytes).

        ``band=None`` drains in PIAS order (direct queues); an explicit
        band restricts the drain to it *and* stops at an ineligible head
        instead of idling slots away — which is what the relay step needs:
        a relay chunk handed over this very slice is eligible only from
        the next slice boundary, and burning the budget waiting for it
        would starve the pair's direct backlog.
        """
        sent = 0

        def deliver(flow: Flow, num_bytes: int, last_slot: int) -> None:
            nonlocal sent
            sent += num_bytes
            deliver_ns = self._packet_deliver_ns(start_ns, offset + last_slot)
            self.tracker.deliver(flow, num_bytes, deliver_ns)
            if self.bandwidth is not None:
                self.bandwidth.record(("rx", peer), num_bytes, deliver_ns)

        def slot_start(k: int) -> float:
            return self._packet_start_ns(start_ns, offset + k)

        if band is None:
            used = queue.drain_slots(
                num_slots=budget - offset,
                payload_bytes=self.payload_bytes,
                slot_start_ns=slot_start,
                deliver=deliver,
            )
        else:
            used = queue.drain_band_slots(
                band=band,
                num_slots=budget - offset,
                payload_bytes=self.payload_bytes,
                slot_start_ns=slot_start,
                deliver=deliver,
            )
        return used, sent

    def _serve_relay(
        self, tor: int, peer: int, start_ns: float, offset: int, budget: int
    ) -> int:
        """Second Valiant hop: drain buffered relay bytes destined to peer."""
        queue = self._relay[tor].get(peer)
        if queue is None or queue.is_empty:
            return 0
        used, sent = self._transmit(
            queue, peer, start_ns, offset, budget, band=0
        )
        self._relay_pending[tor] -= sent
        return used

    def _serve_direct(
        self, tor: int, peer: int, start_ns: float, offset: int, budget: int
    ) -> int:
        """Direct one-hop transmissions to the connected peer, PIAS order."""
        if offset >= budget:
            return 0
        queue = self._direct[tor].get(peer)
        if queue is None or queue.is_empty:
            return 0
        used, sent = self._transmit(queue, peer, start_ns, offset, budget)
        self._direct_pending[tor] -= sent
        return used

    def _offload_indirect(
        self, tor: int, peer: int, start_ns: float, offset: int, budget: int
    ) -> None:
        """First Valiant hop: hand leftover capacity's worth of lowest-band
        backlog for other destinations to ``peer`` as the intermediate.

        Destinations are walked in a fixed ring order from ``peer`` so the
        engine stays deterministic without any randomness; direct traffic
        for ``peer`` itself was already served and never detours.
        """
        n = self.config.num_tors
        queues = self._direct[tor]
        lowest_band = len(self._band_limits)
        for step in range(1, n):
            if offset >= budget:
                return
            dst = (peer + step) % n
            if dst == tor or dst == peer:
                continue
            queue = queues.get(dst)
            if queue is None or queue.is_empty:
                continue
            moved = 0
            relay_queue = self._relay[peer].get(dst)

            def hand_over(flow: Flow, num_bytes: int, last_slot: int) -> None:
                nonlocal moved, relay_queue
                moved += num_bytes
                arrival_ns = self._packet_deliver_ns(
                    start_ns, offset + last_slot
                )
                if relay_queue is None:
                    relay_queue = PiasDestQueue(thresholds=(), enabled=False)
                    self._relay[peer][dst] = relay_queue
                # Store-and-forward: a relayed chunk becomes forwardable at
                # the next slice boundary at the earliest, so the outcome
                # never depends on the order ToRs are iterated in.
                relay_queue.enqueue_bytes(
                    flow,
                    num_bytes,
                    band=0,
                    eligible_ns=max(arrival_ns, start_ns + self.slice_ns),
                )
                if self.bandwidth is not None:
                    self.bandwidth.record(
                        ("relay", peer), num_bytes, arrival_ns
                    )

            used = queue.drain_band_slots(
                band=lowest_band,
                num_slots=budget - offset,
                payload_bytes=self.payload_bytes,
                slot_start_ns=lambda k: self._packet_start_ns(
                    start_ns, offset + k
                ),
                deliver=hand_over,
            )
            # The bytes changed ToRs but stayed in the fabric: they move
            # from the source's direct backlog to the peer's relay buffer.
            self._direct_pending[tor] -= moved
            self._relay_pending[peer] += moved
            offset += used

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def _apply_failure_events(self, now_ns: float) -> None:
        events = self._failure_events
        while (
            self._next_failure_event < len(events)
            and events[self._next_failure_event].time_ns <= now_ns
        ):
            self.failures.apply(events[self._next_failure_event])
            self._next_failure_event += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self, duration_ns: float | None = None) -> RunSummary:
        """Headline metrics over ``duration_ns`` (default: simulated time)."""
        duration = duration_ns if duration_ns is not None else self.now_ns
        mice_p99, mice_mean = self.tracker.mice_fct_summary(
            self.config.mice_threshold_bytes
        )
        return RunSummary(
            duration_ns=duration,
            epoch_ns=None,
            num_flows=self._source.popped,
            num_completed=self.tracker.num_completed,
            goodput_normalized=self.tracker.goodput_normalized(
                duration, self.config.host_aggregate_gbps
            ),
            goodput_gbps=self.tracker.goodput_gbps(duration),
            mice_fct_p99_ns=mice_p99,
            mice_fct_mean_ns=mice_mean,
        )
