"""Per-destination queues with PIAS-style multi-level priorities.

Every ToR keeps one FIFO queue per destination ToR (section 3.1).  To keep
mice flows from being blocked behind elephants in both the piggyback and the
scheduled path, sources run the information-agnostic PIAS priority scheme
(section 3.4.2): the first 1 KB of each flow sits in the highest-priority
band, the next 9 KB in the middle band, and the rest in the lowest band.
Within a band service is FIFO.

Flows are stored as byte *segments* rather than individual packets: a drain of
k timeslots walks whole segments, which is byte- and time-exact for FIFO
service while avoiding per-packet Python overhead (see DESIGN.md section 6).
Each segment carries the time at which its bytes became available at the
source ToR, so data that arrives mid-epoch cannot be transmitted by earlier
timeslots.
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from .flows import Flow

INFINITY = float("inf")


@dataclass(slots=True)
class Segment:
    """A contiguous run of one flow's bytes inside one priority band.

    Segments are the engine's highest-churn records (one per band per flow,
    plus one per relayed chunk); ``slots=True`` keeps them dict-free.
    """

    flow: Flow
    bytes_remaining: int
    eligible_ns: float


class PiasDestQueue:
    """The per-destination queue of one (source ToR, destination ToR) pair."""

    __slots__ = ("_bands", "_thresholds", "_pending", "_total_enqueued")

    def __init__(self, thresholds: Sequence[int], enabled: bool = True) -> None:
        if enabled:
            if list(thresholds) != sorted(thresholds):
                raise ValueError("PIAS thresholds must be non-decreasing")
            self._thresholds = tuple(thresholds)
        else:
            self._thresholds = ()
        self._bands: tuple[deque[Segment], ...] = tuple(
            deque() for _ in range(len(self._thresholds) + 1)
        )
        self._pending = 0
        self._total_enqueued = 0

    @property
    def num_bands(self) -> int:
        """Number of priority bands (1 when PIAS is disabled)."""
        return len(self._bands)

    @property
    def pending_bytes(self) -> int:
        """Bytes currently queued across all bands."""
        return self._pending

    @property
    def is_empty(self) -> bool:
        """Whether no bytes are queued."""
        return self._pending == 0

    @property
    def total_enqueued_bytes(self) -> int:
        """Cumulative bytes ever enqueued (monotonic).

        The stateful scheduling variant (appendix A.2.4) reports the delta of
        this counter as the "newly arrived data" in its requests.
        """
        return self._total_enqueued

    def band_bytes(self, band: int) -> int:
        """Bytes queued in one priority band."""
        return sum(seg.bytes_remaining for seg in self._bands[band])

    def head_wait_ns(self, band: int, now_ns: float) -> float:
        """Waiting time of a band's head-of-line segment (0 when empty).

        The HoL-delay informative-request variant (appendix A.2.3) feeds a
        weighted combination of these into its request priority.
        """
        segments = self._bands[band]
        if not segments:
            return 0.0
        return max(0.0, now_ns - segments[0].eligible_ns)

    def enqueue_flow(self, flow: Flow, eligible_ns: float | None = None) -> None:
        """Add a newly arrived flow, split across bands by cumulative bytes.

        PIAS demotes a flow after it has *sent* each threshold's worth of
        bytes; for a single flow the cumulative sent bytes equal its byte
        offsets, so splitting the flow into static per-band segments yields
        the same service order.
        """
        when = flow.arrival_ns if eligible_ns is None else eligible_ns
        offset = 0
        for band, threshold in enumerate(self._thresholds):
            span = min(flow.size_bytes, threshold) - offset
            if span > 0:
                self._bands[band].append(Segment(flow, span, when))
                offset += span
            if offset >= flow.size_bytes:
                break
        tail = flow.size_bytes - offset
        if tail > 0:
            self._bands[-1].append(Segment(flow, tail, when))
        self._pending += flow.size_bytes
        self._total_enqueued += flow.size_bytes

    def enqueue_bytes(
        self, flow: Flow, num_bytes: int, band: int, eligible_ns: float
    ) -> None:
        """Append a raw byte segment to one band.

        Used for traffic that re-enters a queue mid-flow: relayed cells at an
        intermediate ToR (oblivious baseline, selective relay) arrive as
        segments, not fresh flows.
        """
        if num_bytes <= 0:
            raise ValueError("segment must carry bytes")
        if not 0 <= band < len(self._bands):
            raise ValueError(f"band {band} out of range")
        self._bands[band].append(Segment(flow, num_bytes, eligible_ns))
        self._pending += num_bytes
        self._total_enqueued += num_bytes

    def head_band(self, now_ns: float) -> int | None:
        """Highest-priority band whose head segment is eligible at ``now_ns``."""
        for band, segments in enumerate(self._bands):
            if segments and segments[0].eligible_ns <= now_ns:
                return band
        return None

    def next_eligibility(self, above_band: int | None = None) -> float:
        """Earliest head eligibility among bands strictly above ``above_band``.

        With ``above_band=None`` considers every band.  Returns +inf when no
        such head exists.  Used by drains to know when a higher-priority
        segment will preempt the one currently being served.
        """
        limit = len(self._bands) if above_band is None else above_band
        earliest = INFINITY
        for band in range(limit):
            segments = self._bands[band]
            if segments and segments[0].eligible_ns < earliest:
                earliest = segments[0].eligible_ns
        return earliest

    def pop_bytes(self, band: int, max_bytes: int) -> tuple[Flow, int]:
        """Consume up to ``max_bytes`` from the head segment of ``band``.

        Returns the flow served and the bytes consumed.  Only the head
        segment is touched — one packet never mixes flows.
        """
        segments = self._bands[band]
        if not segments:
            raise ValueError(f"band {band} is empty")
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        head = segments[0]
        taken = min(head.bytes_remaining, max_bytes)
        head.bytes_remaining -= taken
        self._pending -= taken
        if head.bytes_remaining == 0:
            segments.popleft()
        return head.flow, taken

    def drain_slots(
        self,
        num_slots: int,
        payload_bytes: int,
        slot_start_ns: Callable[[int], float],
        deliver: Callable[[Flow, int, int], None],
    ) -> int:
        """Serve up to ``num_slots`` timeslots from this queue.

        Each timeslot carries one packet of at most ``payload_bytes`` from the
        head segment of the highest eligible band at that slot's start time.
        ``deliver(flow, nbytes, last_slot)`` is invoked once per contiguous
        chunk; ``last_slot`` is the slot index carrying the chunk's final byte
        (the caller converts it to a wall-clock delivery time).  Returns the
        number of slots actually used.

        Elephant segments are consumed in bulk: a run of slots serving the
        same segment is interrupted only when the segment empties, a
        higher-priority head becomes eligible, or the phase ends.
        """
        slot = 0
        while slot < num_slots:
            now = slot_start_ns(slot)
            band = self.head_band(now)
            if band is None:
                wake = self.next_eligibility()
                if wake == INFINITY:
                    break
                # Idle until the first slot that can see the new arrival.
                while slot < num_slots and slot_start_ns(slot) < wake:
                    slot += 1
                continue
            head = self._bands[band][0]
            slots_for_segment = math.ceil(head.bytes_remaining / payload_bytes)
            run = min(num_slots - slot, slots_for_segment)
            preempt = self.next_eligibility(above_band=band)
            if preempt != INFINITY:
                # Higher-priority data arrives mid-run: stop at the first
                # slot that starts at or after its eligibility.
                capped = slot
                while capped < slot + run and slot_start_ns(capped) < preempt:
                    capped += 1
                run = capped - slot
                if run == 0:
                    # The current slot itself should serve the higher band
                    # next iteration (possible only via float edge cases).
                    run = 1
            flow, taken = self.pop_bytes(band, run * payload_bytes)
            last_slot = slot + math.ceil(taken / payload_bytes) - 1
            deliver(flow, taken, last_slot)
            slot += run
        return slot

    def drain_band_slots(
        self,
        band: int,
        num_slots: int,
        payload_bytes: int,
        slot_start_ns: Callable[[int], float],
        deliver: Callable[[Flow, int, int], None],
    ) -> int:
        """Like :meth:`drain_slots` but restricted to one priority band.

        The traffic-aware selective relay (appendix A.2.2) only ever relays
        lowest-band (elephant) data; mice bands must stay untouched so they
        keep their direct one-hop path.
        """
        slot = 0
        segments = self._bands[band]
        while slot < num_slots and segments:
            head = segments[0]
            now = slot_start_ns(slot)
            if head.eligible_ns > now:
                break
            slots_for_segment = math.ceil(head.bytes_remaining / payload_bytes)
            run = min(num_slots - slot, slots_for_segment)
            flow, taken = self.pop_bytes(band, run * payload_bytes)
            last_slot = slot + math.ceil(taken / payload_bytes) - 1
            deliver(flow, taken, last_slot)
            slot += run
        return slot

    def drain_single_packet(
        self, payload_bytes: int, now_ns: float
    ) -> tuple[Flow, int] | None:
        """Serve one packet (the piggyback opportunity of the predefined phase).

        Returns (flow, bytes) or None when nothing is eligible at ``now_ns``.
        Called once per active pair per epoch, so the band scan and the head
        pop are fused here instead of going through :meth:`head_band` +
        :meth:`pop_bytes` (whose argument validation is redundant on this
        path).
        """
        for segments in self._bands:
            if segments and segments[0].eligible_ns <= now_ns:
                head = segments[0]
                taken = head.bytes_remaining
                if taken > payload_bytes:
                    taken = payload_bytes
                head.bytes_remaining -= taken
                self._pending -= taken
                if head.bytes_remaining == 0:
                    segments.popleft()
                return head.flow, taken
        return None
