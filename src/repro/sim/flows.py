"""Flow records and completion/goodput accounting.

The paper measures the network from the ToRs' perspective: a flow starts when
it is enqueued at its source ToR and completes when its last byte reaches the
destination ToR (section 4.1).  ``FlowTracker`` is the single sink for both
FCT statistics and delivered-byte (goodput) accounting.

The tracker runs in one of two modes (DESIGN.md section 11):

* **materialized** (``retain_flows=True``, the default) — every registered
  :class:`Flow` is kept forever, and all statistics are computed exactly
  from the retained list.  This is the reference mode every golden baseline
  is recorded in.
* **bounded** (``retain_flows=False``) — completed flows are folded into
  online accumulators (exact counts, exact delivered bytes, exact FCT sums,
  and fixed-size FCT reservoirs for percentiles) and the ``Flow`` objects
  are never retained, so memory stays O(flows in flight) on million-flow
  streaming runs.  Percentiles are exact while the completed count fits the
  reservoir and are unbiased estimates beyond it.

Bounded-mode folds are *order-canonicalized*: completions buffer as scalar
tuples and fold in ``(completed_ns, fid)`` order at each engine step
(:meth:`FlowTracker.flush_completions`), so the accumulator state — the
running FCT sum in particular — is independent of the order the engine
happened to deliver within a step.  That is what makes the scalar and
vectorized cores bit-identical in streaming mode (DESIGN.md section 15):
both cores complete the same flows at the same times within each step,
and the canonical sort erases their differing intra-step delivery order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from .config import MICE_THRESHOLD_BYTES

DEFAULT_RESERVOIR_SIZE = 65536
"""Default FCT reservoir capacity of a bounded-memory tracker.

Percentile estimates are *exact* while the number of folded completions is
at most this, which covers every scale's golden workloads; beyond it the
reservoir is a uniform sample (Vitter's algorithm R), so a percentile
estimate converges at the usual O(1/sqrt(capacity)) quantile error."""


@dataclass
class Flow:
    """One application flow between a source and a destination ToR."""

    fid: int
    src: int
    dst: int
    size_bytes: int
    arrival_ns: float
    tag: str = ""
    remaining_bytes: int = field(init=False)
    completed_ns: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.src == self.dst:
            raise ValueError("flow source and destination must differ")
        self.remaining_bytes = self.size_bytes

    @property
    def completed(self) -> bool:
        """Whether every byte has reached the destination ToR."""
        return self.completed_ns is not None

    @property
    def fct_ns(self) -> float:
        """Flow completion time; raises if the flow is still in flight."""
        if self.completed_ns is None:
            raise ValueError(f"flow {self.fid} has not completed")
        return self.completed_ns - self.arrival_ns

    def is_mice(self, threshold_bytes: int = MICE_THRESHOLD_BYTES) -> bool:
        """Whether this is a latency-sensitive mice flow (< 10 KB by default)."""
        return self.size_bytes < threshold_bytes


class ReservoirSampler:
    """Fixed-size uniform sample of a value stream (Vitter's algorithm R).

    Holds every value while ``count <= capacity`` (so order statistics over
    the sample are *exact*), then replaces entries uniformly at random.  The
    running sum and count are always exact, whatever the capacity.
    """

    __slots__ = ("_capacity", "_rng", "_values", "_count", "_sum")

    def __init__(self, capacity: int, rng: random.Random) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self._capacity = capacity
        self._rng = rng
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0

    def add(self, value: float) -> None:
        """Fold one value into the sample and the exact running totals."""
        self._count += 1
        self._sum += value
        if len(self._values) < self._capacity:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._capacity:
                self._values[slot] = value

    @property
    def capacity(self) -> int:
        """Maximum number of retained values."""
        return self._capacity

    @property
    def count(self) -> int:
        """Exact number of values folded in so far."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact running sum of all folded values."""
        return self._sum

    @property
    def exact(self) -> bool:
        """Whether the sample still holds every folded value."""
        return self._count <= self._capacity

    def mean(self) -> float:
        """Exact mean of all folded values (raises when empty)."""
        if self._count == 0:
            raise ValueError("no values to average")
        return self._sum / self._count

    def percentile(self, q: float) -> float | None:
        """Percentile over the sample: exact while :attr:`exact` holds.

        Returns None when no values have been folded in — consistent with
        materialized-mode summaries, which report None FCT statistics for
        runs with zero completions (a bounded tracker with no completions
        must not turn a routine query into an exception).
        """
        if not self._values:
            return None
        return float(np.percentile(self._values, q))


class FlowTracker:
    """Registers flows and accounts for byte deliveries at destinations.

    With ``retain_flows=False`` the tracker runs in bounded-memory mode:
    completed flows are folded into online accumulators (mice and all-flow
    FCT reservoirs, seeded from ``reservoir_seed``) instead of being kept,
    and the flow-list views raise.  ``mice_threshold_bytes`` must then be
    fixed at construction, because the mice split happens at fold time.
    """

    def __init__(
        self,
        num_tors: int,
        *,
        retain_flows: bool = True,
        mice_threshold_bytes: int = MICE_THRESHOLD_BYTES,
        reservoir_size: int = DEFAULT_RESERVOIR_SIZE,
        reservoir_seed: int = 0,
    ) -> None:
        self._num_tors = num_tors
        self._retain = retain_flows
        self._mice_threshold = mice_threshold_bytes
        self._flows: list[Flow] = []
        self._delivered_total = 0
        self._delivered_per_dst = [0] * num_tors
        self._num_completed = 0
        self._num_registered = 0
        self._live_flows = 0
        self._peak_live_flows = 0
        # Bounded-mode fold buffer: (completed_ns, fid, fct_ns, is_mice)
        # scalar tuples — never Flow references, so buffering keeps the
        # bounded-memory contract.  Engines flush once per step.
        self._pending_folds: list[tuple[float, int, float, bool]] = []
        if retain_flows:
            self._mice_fct: ReservoirSampler | None = None
            self._all_fct: ReservoirSampler | None = None
        else:
            self._mice_fct = ReservoirSampler(
                reservoir_size, random.Random(reservoir_seed)
            )
            self._all_fct = ReservoirSampler(
                reservoir_size, random.Random(reservoir_seed + 1)
            )

    def register(self, flow: Flow) -> Flow:
        """Start tracking a flow (called on arrival at the source ToR)."""
        self._num_registered += 1
        if self._retain:
            self._flows.append(flow)
        if flow.completed:
            self._num_completed += 1
            if not self._retain:
                self._fold_completed(flow)
        else:
            self._live_flows += 1
            if self._live_flows > self._peak_live_flows:
                self._peak_live_flows = self._live_flows
        return flow

    def register_all(self, flows) -> None:
        """Start tracking a batch of flows."""
        for flow in flows:
            self.register(flow)

    def deliver(self, flow: Flow, num_bytes: int, time_ns: float) -> None:
        """Record ``num_bytes`` of ``flow`` arriving at its destination.

        Marks the flow complete when its last byte lands.  Deliveries are
        first-copy payload bytes only — relayed bytes in the oblivious
        baseline are counted once, at the final destination.
        """
        if num_bytes <= 0:
            raise ValueError("delivered bytes must be positive")
        if num_bytes > flow.remaining_bytes:
            raise ValueError(
                f"flow {flow.fid}: delivering {num_bytes} bytes but only "
                f"{flow.remaining_bytes} remain"
            )
        flow.remaining_bytes -= num_bytes
        self._delivered_total += num_bytes
        self._delivered_per_dst[flow.dst] += num_bytes
        if flow.remaining_bytes == 0:
            flow.completed_ns = time_ns
            self._num_completed += 1
            self._live_flows -= 1
            if not self._retain:
                # The tracker holds no reference: once the engine's queues
                # drop theirs (the last byte just drained), the Flow object
                # is garbage — that is the bounded-memory contract.
                self._fold_completed(flow)

    def credit_delivered(self, dst: int, num_bytes: int) -> None:
        """Fold delivered bytes into the goodput totals without a Flow.

        The vectorized core (DESIGN.md section 15) tracks per-flow remaining
        bytes in numpy arrays and settles per-destination byte totals once
        per epoch through this method; completions go through
        :meth:`complete`.  The two paths update exactly the counters
        :meth:`deliver` would, in a different grouping — both are plain
        integer sums, so the final state is identical.
        """
        if num_bytes <= 0:
            raise ValueError("delivered bytes must be positive")
        self._delivered_total += num_bytes
        self._delivered_per_dst[dst] += num_bytes

    def complete(self, flow: Flow, time_ns: float) -> None:
        """Mark a flow complete at ``time_ns`` (byte totals settled apart).

        Counterpart of :meth:`credit_delivered` for the vectorized core:
        the caller has already accounted the delivered bytes and asserts
        the flow's last byte landed at ``time_ns``.
        """
        flow.remaining_bytes = 0
        flow.completed_ns = time_ns
        self._num_completed += 1
        self._live_flows -= 1
        if not self._retain:
            self._fold_completed(flow)

    def _fold_completed(self, flow: Flow) -> None:
        # Buffer, don't fold: the accumulators consume completions in
        # canonical order at the next flush_completions() call.
        self._pending_folds.append(
            (
                flow.completed_ns,
                flow.fid,
                flow.fct_ns,
                flow.is_mice(self._mice_threshold),
            )
        )

    def flush_completions(self) -> None:
        """Fold buffered completions in canonical ``(completed_ns, fid)`` order.

        Engines call this once at the end of each step (epoch, slice, or
        slot); accumulator reads flush implicitly.  Both cores of an engine
        complete the same flow set at the same times within each step, so
        sorting each step's batch by ``(completed_ns, fid)`` — a total order,
        since fids are unique and completion times are bit-identical across
        cores — makes the global fold sequence, and with it every running
        sum and reservoir draw, identical whatever intra-step order the
        engine delivered in.  No-op in materialized mode.
        """
        pending = self._pending_folds
        if not pending:
            return
        pending.sort()
        for _completed_ns, _fid, fct, mice in pending:
            self._all_fct.add(fct)
            if mice:
                self._mice_fct.add(fct)
        pending.clear()

    # ------------------------------------------------------------------
    # flow views (materialized mode only)
    # ------------------------------------------------------------------

    def _require_retained(self, what: str) -> None:
        if not self._retain:
            raise ValueError(
                f"{what} is unavailable: this tracker runs in bounded-memory "
                "mode and evicts completed flows (read the streaming "
                "accumulators instead)"
            )

    @property
    def flows(self) -> list[Flow]:
        """All registered flows."""
        self._require_retained("the flow list")
        return self._flows

    @property
    def completed_flows(self) -> list[Flow]:
        """Flows whose last byte has been delivered."""
        self._require_retained("the completed-flow list")
        return [f for f in self._flows if f.completed]

    def flows_with_tag(self, tag: str) -> list[Flow]:
        """Flows carrying a workload tag (e.g. 'incast' in mixed workloads)."""
        self._require_retained("per-tag flow filtering")
        return [f for f in self._flows if f.tag == tag]

    def mice_flows(
        self, threshold_bytes: int = MICE_THRESHOLD_BYTES, tag: str | None = None
    ) -> list[Flow]:
        """Completed mice flows, optionally restricted to one tag."""
        self._require_retained("the mice-flow list")
        return [
            f
            for f in self._flows
            if f.completed
            and f.is_mice(threshold_bytes)
            and (tag is None or f.tag == tag)
        ]

    # ------------------------------------------------------------------
    # mode-independent counters
    # ------------------------------------------------------------------

    @property
    def retains_flows(self) -> bool:
        """False when this tracker evicts completed flows (bounded mode)."""
        return self._retain

    @property
    def num_flows(self) -> int:
        """Number of flows registered so far (exact in both modes)."""
        return self._num_registered

    @property
    def num_completed(self) -> int:
        """Number of completed flows (exact in both modes)."""
        return self._num_completed

    @property
    def live_flows(self) -> int:
        """Registered flows still in flight."""
        return self._live_flows

    @property
    def peak_live_flows(self) -> int:
        """High-water mark of in-flight flows — the bounded-memory witness."""
        return self._peak_live_flows

    @property
    def mice_threshold_bytes(self) -> int:
        """The mice split a bounded tracker folds statistics at."""
        return self._mice_threshold

    @property
    def mice_fct_sample(self) -> ReservoirSampler | None:
        """The mice-FCT reservoir (bounded mode only, else None)."""
        self.flush_completions()
        return self._mice_fct

    @property
    def all_fct_sample(self) -> ReservoirSampler | None:
        """The all-completions FCT reservoir (bounded mode only, else None)."""
        self.flush_completions()
        return self._all_fct

    def mice_fct_summary(
        self, threshold_bytes: int = MICE_THRESHOLD_BYTES
    ) -> tuple[float | None, float | None]:
        """(p99 ns, mean ns) over completed mice, or (None, None) when none.

        Materialized mode computes both exactly from the retained flows —
        bit-identical to the historical ``fct_percentile_ns``/``fct_mean_ns``
        calls the golden baselines were recorded with.  Bounded mode answers
        from the accumulators: the mean is an exact running sum folded in
        canonical ``(completed_ns, fid)`` order (identical across engine
        cores) and the percentile is reservoir-exact while the
        completed-mice count fits the capacity.
        """
        if self._retain:
            mice = self.mice_flows(threshold_bytes)
            if not mice:
                return None, None
            return (
                FlowTracker.fct_percentile_ns(mice, 99),
                FlowTracker.fct_mean_ns(mice),
            )
        if threshold_bytes != self._mice_threshold:
            raise ValueError(
                f"bounded tracker folded mice at {self._mice_threshold} "
                f"bytes; cannot re-split at {threshold_bytes}"
            )
        self.flush_completions()
        if self._mice_fct.count == 0:
            return None, None
        return self._mice_fct.percentile(99), self._mice_fct.mean()

    @property
    def all_complete(self) -> bool:
        """Whether every registered flow has completed.

        O(1): completions are counted as they happen, so the per-epoch
        ``run_until_complete`` check does not rescan the flow list.
        """
        return self._num_completed == self._num_registered

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def delivered_bytes(self) -> int:
        """Total first-copy payload bytes delivered to destinations."""
        return self._delivered_total

    def delivered_bytes_at(self, dst: int) -> int:
        """First-copy payload bytes delivered to one destination ToR."""
        return self._delivered_per_dst[dst]

    def goodput_gbps(self, duration_ns: float) -> float:
        """Network-wide average goodput over ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        return self._delivered_total * 8.0 / duration_ns

    def goodput_normalized(
        self, duration_ns: float, host_aggregate_gbps: float
    ) -> float:
        """Average per-ToR goodput normalized to the host aggregate rate.

        This is the paper's goodput metric: delivered bytes / duration,
        averaged over ToRs, divided by 400 Gbps.
        """
        return self.goodput_gbps(duration_ns) / (
            self._num_tors * host_aggregate_gbps
        )

    @staticmethod
    def fct_percentile_ns(flows: list[Flow], percentile: float) -> float:
        """FCT percentile over completed flows (raises when empty)."""
        if not flows:
            raise ValueError("no completed flows to take a percentile of")
        return float(np.percentile([f.fct_ns for f in flows], percentile))

    @staticmethod
    def fct_mean_ns(flows: list[Flow]) -> float:
        """Mean FCT over completed flows (raises when empty)."""
        if not flows:
            raise ValueError("no completed flows to average")
        return float(np.mean([f.fct_ns for f in flows]))

    @staticmethod
    def fct_cdf(flows: list[Flow]) -> tuple[np.ndarray, np.ndarray]:
        """Empirical FCT CDF: (sorted FCTs in ns, cumulative fractions)."""
        if not flows:
            raise ValueError("no completed flows for a CDF")
        values = np.sort(np.array([f.fct_ns for f in flows]))
        fractions = np.arange(1, len(values) + 1) / len(values)
        return values, fractions
