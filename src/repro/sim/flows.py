"""Flow records and completion/goodput accounting.

The paper measures the network from the ToRs' perspective: a flow starts when
it is enqueued at its source ToR and completes when its last byte reaches the
destination ToR (section 4.1).  ``FlowTracker`` is the single sink for both
FCT statistics and delivered-byte (goodput) accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import MICE_THRESHOLD_BYTES


@dataclass
class Flow:
    """One application flow between a source and a destination ToR."""

    fid: int
    src: int
    dst: int
    size_bytes: int
    arrival_ns: float
    tag: str = ""
    remaining_bytes: int = field(init=False)
    completed_ns: float | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("flow size must be positive")
        if self.src == self.dst:
            raise ValueError("flow source and destination must differ")
        self.remaining_bytes = self.size_bytes

    @property
    def completed(self) -> bool:
        """Whether every byte has reached the destination ToR."""
        return self.completed_ns is not None

    @property
    def fct_ns(self) -> float:
        """Flow completion time; raises if the flow is still in flight."""
        if self.completed_ns is None:
            raise ValueError(f"flow {self.fid} has not completed")
        return self.completed_ns - self.arrival_ns

    def is_mice(self, threshold_bytes: int = MICE_THRESHOLD_BYTES) -> bool:
        """Whether this is a latency-sensitive mice flow (< 10 KB by default)."""
        return self.size_bytes < threshold_bytes


class FlowTracker:
    """Registers flows and accounts for byte deliveries at destinations."""

    def __init__(self, num_tors: int) -> None:
        self._num_tors = num_tors
        self._flows: list[Flow] = []
        self._delivered_total = 0
        self._delivered_per_dst = [0] * num_tors
        self._num_completed = 0

    def register(self, flow: Flow) -> Flow:
        """Start tracking a flow (called on arrival at the source ToR)."""
        self._flows.append(flow)
        if flow.completed:
            self._num_completed += 1
        return flow

    def register_all(self, flows) -> None:
        """Start tracking a batch of flows."""
        for flow in flows:
            self.register(flow)

    def deliver(self, flow: Flow, num_bytes: int, time_ns: float) -> None:
        """Record ``num_bytes`` of ``flow`` arriving at its destination.

        Marks the flow complete when its last byte lands.  Deliveries are
        first-copy payload bytes only — relayed bytes in the oblivious
        baseline are counted once, at the final destination.
        """
        if num_bytes <= 0:
            raise ValueError("delivered bytes must be positive")
        if num_bytes > flow.remaining_bytes:
            raise ValueError(
                f"flow {flow.fid}: delivering {num_bytes} bytes but only "
                f"{flow.remaining_bytes} remain"
            )
        flow.remaining_bytes -= num_bytes
        self._delivered_total += num_bytes
        self._delivered_per_dst[flow.dst] += num_bytes
        if flow.remaining_bytes == 0:
            flow.completed_ns = time_ns
            self._num_completed += 1

    # ------------------------------------------------------------------
    # flow views
    # ------------------------------------------------------------------

    @property
    def flows(self) -> list[Flow]:
        """All registered flows."""
        return self._flows

    @property
    def completed_flows(self) -> list[Flow]:
        """Flows whose last byte has been delivered."""
        return [f for f in self._flows if f.completed]

    def flows_with_tag(self, tag: str) -> list[Flow]:
        """Flows carrying a workload tag (e.g. 'incast' in mixed workloads)."""
        return [f for f in self._flows if f.tag == tag]

    def mice_flows(
        self, threshold_bytes: int = MICE_THRESHOLD_BYTES, tag: str | None = None
    ) -> list[Flow]:
        """Completed mice flows, optionally restricted to one tag."""
        return [
            f
            for f in self._flows
            if f.completed
            and f.is_mice(threshold_bytes)
            and (tag is None or f.tag == tag)
        ]

    @property
    def all_complete(self) -> bool:
        """Whether every registered flow has completed.

        O(1): completions are counted as they happen, so the per-epoch
        ``run_until_complete`` check does not rescan the flow list.
        """
        return self._num_completed == len(self._flows)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    @property
    def delivered_bytes(self) -> int:
        """Total first-copy payload bytes delivered to destinations."""
        return self._delivered_total

    def delivered_bytes_at(self, dst: int) -> int:
        """First-copy payload bytes delivered to one destination ToR."""
        return self._delivered_per_dst[dst]

    def goodput_gbps(self, duration_ns: float) -> float:
        """Network-wide average goodput over ``duration_ns``."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        return self._delivered_total * 8.0 / duration_ns

    def goodput_normalized(
        self, duration_ns: float, host_aggregate_gbps: float
    ) -> float:
        """Average per-ToR goodput normalized to the host aggregate rate.

        This is the paper's goodput metric: delivered bytes / duration,
        averaged over ToRs, divided by 400 Gbps.
        """
        return self.goodput_gbps(duration_ns) / (
            self._num_tors * host_aggregate_gbps
        )

    @staticmethod
    def fct_percentile_ns(flows: list[Flow], percentile: float) -> float:
        """FCT percentile over completed flows (raises when empty)."""
        if not flows:
            raise ValueError("no completed flows to take a percentile of")
        return float(np.percentile([f.fct_ns for f in flows], percentile))

    @staticmethod
    def fct_mean_ns(flows: list[Flow]) -> float:
        """Mean FCT over completed flows (raises when empty)."""
        if not flows:
            raise ValueError("no completed flows to average")
        return float(np.mean([f.fct_ns for f in flows]))

    @staticmethod
    def fct_cdf(flows: list[Flow]) -> tuple[np.ndarray, np.ndarray]:
        """Empirical FCT CDF: (sorted FCTs in ns, cumulative fractions)."""
        if not flows:
            raise ValueError("no completed flows for a CDF")
        values = np.sort(np.array([f.fct_ns for f in flows]))
        fractions = np.arange(1, len(values) + 1) / len(values)
        return values, fractions
