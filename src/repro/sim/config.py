"""Simulation configuration and the NegotiaToR epoch timing model.

All quantities follow the paper's evaluation setup (SIGCOMM '24, section 4.1):

* ToR uplink ports run at 100 Gbps — a 2x speedup over the 400 Gbps aggregate
  host bandwidth of an 8-port ToR.
* A predefined-phase timeslot is ``guard + tx(30 B message + 595 B piggyback)``
  which is 60 ns at 100 Gbps.
* A scheduled-phase timeslot carries one 1125 B data packet (10 B header +
  1115 B payload), 90 ns at 100 Gbps; the scheduled phase has 30 slots.
* With 128 ToRs x 8 ports both topologies need 16 predefined timeslots, so an
  epoch is 16*60 + 30*90 = 3660 ns and guardbands account for 4.37% of it.

Times are floats in nanoseconds throughout the package.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass, field

KB = 1000
"""Bytes per kilobyte (decimal, as in the paper's flow-size notation)."""

DEFAULT_PIAS_THRESHOLDS = (1 * KB, 10 * KB)
"""PIAS band boundaries: the first 1 KB of a flow goes to the highest band,
the next 9 KB to the middle band, and the rest to the lowest band."""

MICE_THRESHOLD_BYTES = 10 * KB
"""Flows strictly smaller than this are mice flows (paper, section 4.1)."""

CORE_ENV_VAR = "REPRO_CORE"
"""Environment override for :attr:`SimConfig.core` (scalar | vectorized)."""


def transmit_ns(num_bytes: float, rate_gbps: float) -> float:
    """Serialization delay of ``num_bytes`` on a ``rate_gbps`` link, in ns."""
    if rate_gbps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_gbps}")
    return num_bytes * 8.0 / rate_gbps


@dataclass(frozen=True)
class EpochConfig:
    """Tunable knobs of one NegotiaToR epoch (section 3.3 / 4.1).

    The knob values are rate-independent byte budgets; actual slot durations
    are derived against a link rate by :class:`EpochTiming`.
    """

    guard_ns: float = 10.0
    scheduling_message_bytes: int = 30
    piggyback_payload_bytes: int = 595
    data_header_bytes: int = 10
    data_payload_bytes: int = 1115
    scheduled_slots: int = 30
    piggyback_enabled: bool = True
    request_threshold_packets: int = 3

    def __post_init__(self) -> None:
        if self.guard_ns < 0:
            raise ValueError("guard_ns must be non-negative")
        for name in (
            "scheduling_message_bytes",
            "piggyback_payload_bytes",
            "data_header_bytes",
            "data_payload_bytes",
            "scheduled_slots",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.request_threshold_packets < 0:
            raise ValueError("request_threshold_packets must be non-negative")

    @property
    def request_threshold_bytes(self) -> int:
        """Pending bytes above which a ToR sends a REQUEST (section 3.4.1).

        With piggybacking enabled, three piggybacked packets are guaranteed
        during the ~2-epoch scheduling delay, so requests are only worthwhile
        for larger backlogs.  Without piggybacking any pending byte requests.
        """
        if not self.piggyback_enabled:
            return 0
        return self.request_threshold_packets * self.piggyback_payload_bytes


@dataclass(frozen=True)
class EpochTiming:
    """Concrete slot/phase durations of one epoch on a given fabric.

    Derived from an :class:`EpochConfig`, the uplink rate, and the number of
    predefined-phase timeslots the topology needs for one all-to-all round.
    """

    predefined_slots: int
    predefined_slot_ns: float
    scheduled_slots: int
    scheduled_slot_ns: float
    guard_ns: float
    piggyback_payload_bytes: int
    data_payload_bytes: int
    piggyback_enabled: bool

    @classmethod
    def derive(
        cls,
        epoch: EpochConfig,
        uplink_gbps: float,
        predefined_slots: int,
    ) -> "EpochTiming":
        """Compute slot durations for ``epoch`` at ``uplink_gbps``."""
        if predefined_slots <= 0:
            raise ValueError("predefined_slots must be positive")
        payload = epoch.piggyback_payload_bytes if epoch.piggyback_enabled else 0
        predefined_bytes = epoch.scheduling_message_bytes + payload
        data_bytes = epoch.data_header_bytes + epoch.data_payload_bytes
        return cls(
            predefined_slots=predefined_slots,
            predefined_slot_ns=epoch.guard_ns
            + transmit_ns(predefined_bytes, uplink_gbps),
            scheduled_slots=epoch.scheduled_slots,
            scheduled_slot_ns=transmit_ns(data_bytes, uplink_gbps),
            guard_ns=epoch.guard_ns,
            piggyback_payload_bytes=payload,
            data_payload_bytes=epoch.data_payload_bytes,
            piggyback_enabled=epoch.piggyback_enabled,
        )

    @property
    def predefined_ns(self) -> float:
        """Duration of the predefined (control) phase."""
        return self.predefined_slots * self.predefined_slot_ns

    @property
    def scheduled_ns(self) -> float:
        """Duration of the scheduled (data) phase."""
        return self.scheduled_slots * self.scheduled_slot_ns

    @property
    def epoch_ns(self) -> float:
        """Total epoch duration."""
        return self.predefined_ns + self.scheduled_ns

    @property
    def guard_fraction(self) -> float:
        """Share of the epoch spent in reconfiguration guardbands."""
        return self.predefined_slots * self.guard_ns / self.epoch_ns

    def predefined_slot_start(self, slot: int) -> float:
        """Offset of predefined slot ``slot`` from epoch start."""
        return slot * self.predefined_slot_ns

    def predefined_slot_end(self, slot: int) -> float:
        """Offset at which predefined slot ``slot`` finishes transmitting."""
        return (slot + 1) * self.predefined_slot_ns

    def scheduled_slot_start(self, slot: int) -> float:
        """Offset of scheduled slot ``slot`` from epoch start."""
        return self.predefined_ns + slot * self.scheduled_slot_ns

    def scheduled_slot_end(self, slot: int) -> float:
        """Offset at which scheduled slot ``slot`` finishes transmitting."""
        return self.predefined_ns + (slot + 1) * self.scheduled_slot_ns


@dataclass(frozen=True)
class RotorConfig:
    """Timing and relay knobs of the RotorNet-style rotor baseline.

    The rotor fabric (sim/rotor.py) cycles a fixed round-robin schedule of
    Birkhoff–von-Neumann permutation matchings with no negotiation phase: a
    *slice* holds one matching for ``packets_per_slice`` data packets per
    port, then pays ``reconfiguration_delay_ns`` to rotate to the next
    matching.  ``vlb_relay`` enables the RotorLB-style two-hop Valiant
    relay: leftover slice capacity forwards lowest-band backlog for *other*
    destinations to the currently connected ToR, which delivers it when its
    own rotor reaches the final destination.

    The defaults give a long-slice rotor (16 packets per slice) at a 90%
    duty cycle against the paper's 1125 B data packets at 100 Gbps —
    qualitatively RotorNet's regime, scaled to this simulator's timebase.
    """

    packets_per_slice: int = 16
    reconfiguration_delay_ns: float = 160.0
    vlb_relay: bool = True

    def __post_init__(self) -> None:
        if self.packets_per_slice <= 0:
            raise ValueError("packets_per_slice must be positive")
        if self.reconfiguration_delay_ns < 0:
            raise ValueError("reconfiguration_delay_ns must be non-negative")

    def slice_ns(self, epoch: EpochConfig, uplink_gbps: float) -> float:
        """Duration of one slice: reconfiguration plus the packet budget."""
        packet_bytes = epoch.data_header_bytes + epoch.data_payload_bytes
        return self.reconfiguration_delay_ns + self.packets_per_slice * (
            transmit_ns(packet_bytes, uplink_gbps)
        )

    def duty_cycle(self, epoch: EpochConfig, uplink_gbps: float) -> float:
        """Fraction of a slice spent transmitting (not reconfiguring)."""
        slice_ns = self.slice_ns(epoch, uplink_gbps)
        return (slice_ns - self.reconfiguration_delay_ns) / slice_ns


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the demand-aware adaptive baseline (D3-class).

    The adaptive fabric (sim/adaptive.py) estimates the traffic matrix
    from observed per-(src, dst) arrivals with an EWMA (``ewma_alpha``
    folded in every ``recompute_slices`` slices) and points its circuits
    at the heavy entries via a greedy max-weight matching.  Unlike the
    rotor, a slice boundary is *not* a reconfiguration: only ports whose
    assignment actually changed at a recompute pay
    ``reconfiguration_delay_ns`` (during which the affected link carries
    nothing); unchanged circuits keep transmitting at full duty cycle.
    Each cycle, ``residual_ports`` of every ToR's port planes take a turn
    on the rotor-style round-robin rotation (paying the rotor's per-slice
    reconfiguration penalty), and the duty rotates across planes from
    cycle to cycle so the planes' rotations jointly connect every ordered
    pair — pairs too sparse to win a matching are never starved.

    The defaults match the rotor baseline's timebase — 16 data packets
    per slice and a 160 ns reconfiguration penalty — so the two systems
    differ only in *what* they schedule, not in link arithmetic.
    """

    packets_per_slice: int = 16
    reconfiguration_delay_ns: float = 160.0
    ewma_alpha: float = 0.25
    recompute_slices: int = 4
    residual_ports: int = 1

    def __post_init__(self) -> None:
        if self.packets_per_slice <= 0:
            raise ValueError("packets_per_slice must be positive")
        if self.reconfiguration_delay_ns < 0:
            raise ValueError("reconfiguration_delay_ns must be non-negative")
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.recompute_slices <= 0:
            raise ValueError("recompute_slices must be positive")
        if self.residual_ports < 0:
            raise ValueError("residual_ports must be non-negative")

    def slice_ns(self, epoch: EpochConfig, uplink_gbps: float) -> float:
        """Duration of one slice: the packet budget, with no blanket guard.

        Reconfiguration time is charged per affected port at recompute
        boundaries (the demand-aware engine's defining advantage over the
        rotor, whose every slice pays the delay), so the slice itself is
        pure transmission time.
        """
        packet_bytes = epoch.data_header_bytes + epoch.data_payload_bytes
        return self.packets_per_slice * transmit_ns(packet_bytes, uplink_gbps)


def epoch_config_without_piggyback(
    base: EpochConfig, uplink_gbps: float, predefined_slots: int
) -> EpochConfig:
    """Disable piggybacking while holding the epoch length constant.

    This is the Table 2 ablation protocol: predefined timeslots shrink to
    ``guard + tx(scheduling message)`` and the scheduled phase is enlarged so
    the epoch (and hence the reconfiguration-overhead ratio) stays the same.
    """
    reference = EpochTiming.derive(base, uplink_gbps, predefined_slots)
    stripped = dataclasses.replace(base, piggyback_enabled=False)
    shrunk = EpochTiming.derive(stripped, uplink_gbps, predefined_slots)
    budget_ns = reference.epoch_ns - shrunk.predefined_ns
    slots = max(1, round(budget_ns / shrunk.scheduled_slot_ns))
    return dataclasses.replace(stripped, scheduled_slots=slots)


def epoch_config_for_reconfiguration_delay(
    base: EpochConfig, guard_ns: float, uplink_gbps: float, predefined_slots: int
) -> EpochConfig:
    """Scale the scheduled phase so a larger guardband keeps its epoch share.

    This is the Fig 8 protocol: "the length of the scheduled phase is
    accordingly adjusted to control the reconfiguration overhead".  The
    returned config preserves the guard fraction of ``base`` (4.37% at the
    paper's defaults) for the new ``guard_ns``.
    """
    if guard_ns <= 0:
        raise ValueError("guard_ns must be positive")
    reference = EpochTiming.derive(base, uplink_gbps, predefined_slots)
    target_fraction = reference.guard_fraction
    regrown = dataclasses.replace(base, guard_ns=guard_ns)
    timing = EpochTiming.derive(regrown, uplink_gbps, predefined_slots)
    epoch_ns = predefined_slots * guard_ns / target_fraction
    budget_ns = epoch_ns - timing.predefined_ns
    slots = max(1, round(budget_ns / timing.scheduled_slot_ns))
    return dataclasses.replace(regrown, scheduled_slots=slots)


@dataclass(frozen=True)
class SimConfig:
    """Complete static configuration of a simulation run.

    ``num_tors`` x ``ports_per_tor`` defines the fabric; the paper evaluates
    128 x 8.  ``uplink_gbps`` is the per-port optical rate (100 Gbps with the
    default 2x speedup); ``host_aggregate_gbps`` is the per-ToR host-side
    bandwidth against which goodput is normalized and loads are defined.

    ``idle_fast_forward`` lets the engine's run loops jump over epochs in
    which provably nothing can happen (no queued data, drained scheduling
    pipeline, no imminent arrival or failure event); results are bit-exact
    either way (DESIGN.md section 7), so the flag exists for A/B testing
    and the determinism regression suite.

    ``core`` selects the engine implementation: ``"scalar"`` is the
    reference per-object core, ``"vectorized"`` the batched-numpy core
    (DESIGN.md section 15).  Both produce bit-identical fixed-seed results;
    the scalar core is retained as the differential-testing oracle.  The
    ``REPRO_CORE`` environment variable overrides this field at simulator
    construction (it reaches forked sweep workers, like ``REPRO_SCALE``).
    """

    num_tors: int = 128
    ports_per_tor: int = 8
    uplink_gbps: float = 100.0
    host_aggregate_gbps: float = 400.0
    propagation_ns: float = 2000.0
    epoch: EpochConfig = field(default_factory=EpochConfig)
    priority_queue_enabled: bool = True
    pias_thresholds: tuple[int, ...] = DEFAULT_PIAS_THRESHOLDS
    mice_threshold_bytes: int = MICE_THRESHOLD_BYTES
    receiver_buffer_bytes: int | None = None
    idle_fast_forward: bool = True
    seed: int = 0
    core: str = "scalar"

    def __post_init__(self) -> None:
        if self.core not in ("scalar", "vectorized"):
            raise ValueError(
                f"core must be 'scalar' or 'vectorized', got {self.core!r}"
            )
        if self.num_tors < 2:
            raise ValueError("need at least two ToRs")
        if self.ports_per_tor < 1:
            raise ValueError("need at least one port per ToR")
        if self.uplink_gbps <= 0 or self.host_aggregate_gbps <= 0:
            raise ValueError("link rates must be positive")
        if self.propagation_ns < 0:
            raise ValueError("propagation_ns must be non-negative")
        if list(self.pias_thresholds) != sorted(self.pias_thresholds):
            raise ValueError("pias_thresholds must be non-decreasing")
        if self.receiver_buffer_bytes is not None and self.receiver_buffer_bytes <= 0:
            raise ValueError("receiver_buffer_bytes must be positive")

    @property
    def speedup(self) -> float:
        """Ratio of aggregate uplink bandwidth to host aggregate bandwidth."""
        return self.ports_per_tor * self.uplink_gbps / self.host_aggregate_gbps

    @property
    def num_priority_bands(self) -> int:
        """Number of PIAS bands at source ToRs (1 when PQ is disabled)."""
        if not self.priority_queue_enabled:
            return 1
        return len(self.pias_thresholds) + 1

    @property
    def resolved_core(self) -> str:
        """The engine core to construct, honoring the ``REPRO_CORE`` override.

        Environment beats config so one variable switches a whole sweep
        (including forked workers) without touching every spec; an unknown
        value raises here rather than silently running the wrong core.
        """
        core = os.environ.get(CORE_ENV_VAR) or self.core
        if core not in ("scalar", "vectorized"):
            raise ValueError(
                f"{CORE_ENV_VAR}={core!r} is not a valid core "
                "(choose 'scalar' or 'vectorized')"
            )
        return core

    def without_speedup(self) -> "SimConfig":
        """Return a config with uplink rate equal to the downlink share.

        This is the Fig 11 protocol ("identical bandwidth to ToR uplinks and
        downlinks"): per-port rate becomes host_aggregate / ports, and slot
        durations stretch because the per-slot byte budgets are unchanged.
        """
        return dataclasses.replace(
            self, uplink_gbps=self.host_aggregate_gbps / self.ports_per_tor
        )
