"""Measurement instruments: match ratio, bandwidth traces, run summaries.

These recorders reproduce the paper's observables beyond plain FCT/goodput:
the per-epoch match ratio of Fig 14 (accepts / grants, converging to
1 - (1 - 1/n)^n), and the receiver-bandwidth time series of Figs 17-19.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np


class MatchRatioRecorder:
    """Per-epoch ratio of accepted grants to issued grants (Fig 14 / A.1)."""

    def __init__(self) -> None:
        self._epochs: list[int] = []
        self._grants: list[int] = []
        self._accepts: list[int] = []

    def record(self, epoch: int, grants: int, accepts: int) -> None:
        """Record one epoch's grant and accept counts."""
        if accepts > grants:
            raise ValueError("cannot accept more grants than were issued")
        self._epochs.append(epoch)
        self._grants.append(grants)
        self._accepts.append(accepts)

    @property
    def epochs(self) -> list[int]:
        """Epoch indices with at least one recorded sample."""
        return self._epochs

    def ratios(self) -> np.ndarray:
        """Per-epoch match ratios (NaN for epochs with no grants)."""
        grants = np.array(self._grants, dtype=float)
        accepts = np.array(self._accepts, dtype=float)
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(grants > 0, accepts / np.maximum(grants, 1), np.nan)

    def mean_ratio(self) -> float:
        """Match ratio aggregated over all epochs with grants."""
        total_grants = sum(self._grants)
        if total_grants == 0:
            raise ValueError("no grants recorded")
        return sum(self._accepts) / total_grants


class BandwidthRecorder:
    """Delivered-byte time series, binned, keyed by an arbitrary label.

    Keys are caller-defined, e.g. ``("rx", dst)`` for a destination's received
    goodput, ``("relay", dst)`` for relayed bytes transiting an intermediate
    (Fig 18's light-grey dots), or ``("pair", src, dst)`` for Fig 19.
    """

    def __init__(self, bin_ns: float) -> None:
        if bin_ns <= 0:
            raise ValueError("bin width must be positive")
        self._bin_ns = bin_ns
        self._bins: dict[tuple, dict[int, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    @property
    def bin_ns(self) -> float:
        """Width of one time bin."""
        return self._bin_ns

    def record(self, key: tuple, num_bytes: int, time_ns: float) -> None:
        """Attribute ``num_bytes`` delivered at ``time_ns`` to ``key``."""
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        self._bins[key][int(time_ns // self._bin_ns)] += num_bytes

    def keys(self) -> list[tuple]:
        """All keys with recorded traffic."""
        return list(self._bins)

    def series_gbps(
        self, key: tuple, until_ns: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """(bin start times ns, bandwidth Gbps) for one key.

        Bins with no traffic appear as zeros so the on-off epoch structure of
        Fig 19 is visible.  ``until_ns`` extends/clips the series end.
        """
        bins = self._bins.get(key, {})
        if not bins and until_ns is None:
            return np.array([]), np.array([])
        last = max(bins) if bins else 0
        if until_ns is not None:
            last = max(last, int(until_ns // self._bin_ns) - 1)
        times = np.arange(last + 1) * self._bin_ns
        values = np.array(
            [bins.get(i, 0) * 8.0 / self._bin_ns for i in range(last + 1)]
        )
        return times, values

    def total_bytes(self, key: tuple) -> int:
        """All bytes recorded under one key."""
        return sum(self._bins.get(key, {}).values())

    def window_bytes(self, key: tuple, start_ns: float, end_ns: float) -> int:
        """Bytes recorded under ``key`` in bins fully inside [start, end)."""
        first = int(np.ceil(start_ns / self._bin_ns))
        last = int(end_ns // self._bin_ns)
        bins = self._bins.get(key, {})
        return sum(count for index, count in bins.items() if first <= index < last)


@dataclass
class RunSummary:
    """Headline numbers of one simulation run, as the paper reports them."""

    duration_ns: float
    epoch_ns: float | None
    num_flows: int
    num_completed: int
    goodput_normalized: float
    goodput_gbps: float
    mice_fct_p99_ns: float | None
    mice_fct_mean_ns: float | None
    extra: dict = field(default_factory=dict)

    @property
    def mice_fct_p99_epochs(self) -> float | None:
        """99th-percentile mice FCT expressed in epochs (Table 2's unit)."""
        if self.mice_fct_p99_ns is None or not self.epoch_ns:
            return None
        return self.mice_fct_p99_ns / self.epoch_ns

    @property
    def mice_fct_mean_epochs(self) -> float | None:
        """Average mice FCT expressed in epochs (Table 2's unit)."""
        if self.mice_fct_mean_ns is None or not self.epoch_ns:
            return None
        return self.mice_fct_mean_ns / self.epoch_ns

    def to_dict(self) -> dict:
        """JSON-serializable form; round-trips bit-exactly via from_dict.

        ``extra`` must already contain only JSON-serializable values — the
        sweep collectors guarantee that, and the result store depends on it.
        """
        return {
            "duration_ns": self.duration_ns,
            "epoch_ns": self.epoch_ns,
            "num_flows": self.num_flows,
            "num_completed": self.num_completed,
            "goodput_normalized": self.goodput_normalized,
            "goodput_gbps": self.goodput_gbps,
            "mice_fct_p99_ns": self.mice_fct_p99_ns,
            "mice_fct_mean_ns": self.mice_fct_mean_ns,
            "extra": self.extra,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in cls.__dataclass_fields__.values()}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown RunSummary fields: {sorted(unknown)}")
        return cls(**data)
