"""The vectorized NegotiaToR epoch engine (DESIGN.md section 15).

A drop-in core for the common configuration — parallel network, base
scheduler, no per-epoch recorders — that holds all per-(src, dst) queue
state in batched numpy arrays and replaces the scalar engine's
pair-at-a-time Python loops with whole-fabric array operations:

* **Columnar queues** — each priority band keeps its *head* segment in
  three flat arrays (``bytes``, ``eligible_ns``, ``flow index``) indexed
  by ``band * n^2 + src * n + dst``; further segments wait in per-slot
  deques that exist only while a band holds two or more segments.
* **Vectorized GRANT/ACCEPT** — round-robin ring pointers live in integer
  arrays, candidate priority is the clockwise rank ``(index - pointer)
  mod (n - 1)``, and one ``argsort`` per epoch reproduces every
  destination's ``RoundRobinRing.deal`` while a ``minimum.at`` scatter
  reproduces every source's ACCEPT pick.
* **Active sets** — every phase touches only the pairs with pending work
  (``numpy.flatnonzero`` over the pending-byte vector), so an epoch's
  cost scales with traffic, not with the n^2 pair space.

The scalar :class:`~repro.sim.network.NegotiaToRSimulator` remains the
differential-testing oracle: for any fixed seed this engine produces
bit-identical per-flow completion times and materialized summaries (the
golden suites and the hypothesis fuzz harness pin this).  Epochs with
actual or detected link failures fall back to exact Python mirrors of
the scalar GRANT/ACCEPT paths — correctness over speed on the rare
failure epochs.  See DESIGN.md section 15 for the state layout and the
equivalence argument.
"""

from __future__ import annotations

import math
import random
from collections import deque
from collections.abc import Iterable
from time import perf_counter

import numpy as np

from ..core.matching import Match
from ..topology.parallel import ParallelNetwork
from .config import EpochTiming, SimConfig
from .failures import FailurePlan, LinkFailureModel
from .flows import Flow, FlowTracker
from .metrics import RunSummary
from .source import MaterializedFlowSource, StreamingFlowSource

_INF = float("inf")


class VectorizedNegotiaToRSimulator:
    """Array-based NegotiaToR engine, bit-identical to the scalar core.

    Construct through :func:`repro.sim.factory.make_negotiator` — the
    factory verifies the configuration is in this core's supported
    envelope (parallel topology, base scheduler, no recorders or
    receiver buffers) and falls back to the scalar engine otherwise.
    """

    def __init__(
        self,
        config: SimConfig,
        topology: ParallelNetwork,
        flows: Iterable[Flow],
        failure_model: LinkFailureModel | None = None,
        failure_plan: FailurePlan | None = None,
        stream: bool = False,
        tracer=None,
    ) -> None:
        if not isinstance(topology, ParallelNetwork):
            raise ValueError(
                "the vectorized core only supports the parallel network"
            )
        if topology.num_tors != config.num_tors:
            raise ValueError("topology and config disagree on num_tors")
        if topology.ports_per_tor != config.ports_per_tor:
            raise ValueError("topology and config disagree on ports_per_tor")
        if config.receiver_buffer_bytes is not None:
            raise ValueError(
                "the vectorized core does not model receiver buffers"
            )
        self.config = config
        self.topology = topology
        self.timing = EpochTiming.derive(
            config.epoch, config.uplink_gbps, topology.predefined_slots
        )
        self._epoch_ns = self.timing.epoch_ns
        n = config.num_tors
        ports = config.ports_per_tor
        self._n = n
        self._ports = ports
        self._m = n - 1
        self._n2 = n * n
        self._rotate = topology.rotates_per_epoch

        # Per-slot predefined-phase offsets, as arrays for fancy indexing.
        # Times are computed with the scalar engine's exact operand
        # grouping — (start + slot_offset) + propagation — so they stay
        # bit-identical.
        self._slot_starts = np.array(
            [
                self.timing.predefined_slot_start(s)
                for s in range(self.timing.predefined_slots)
            ],
            dtype=np.float64,
        )
        self._slot_ends = np.array(
            [
                self.timing.predefined_slot_end(s)
                for s in range(self.timing.predefined_slots)
            ],
            dtype=np.float64,
        )

        # Ring-pointer replication: the scalar engine seeds Random(seed)
        # and the matcher draws one randrange(n-1) per ring in a fixed
        # order — grant rings for ToR 0..n-1, then accept rings in
        # (tor, port) order.  Drawing in the same order lands the same
        # pointers without building any ring objects.
        rng = random.Random(config.seed)
        self._gptr = np.array(
            [rng.randrange(self._m) for _ in range(n)], dtype=np.int64
        )
        self._aptr = np.array(
            [rng.randrange(self._m) for _ in range(n * ports)],
            dtype=np.int64,
        )
        # IDX[t, x]: position of ToR x in ToR t's ring (all ToRs except t,
        # ascending) — x minus one when x > t.  The diagonal is junk and
        # always masked out.
        ar = np.arange(n, dtype=np.int64)
        self._idx = ar[None, :] - (ar[None, :] > ar[:, None])
        # off[pid] = (dst - src) mod n, the pair's predefined-phase offset.
        self._off = (ar[None, :] - ar[:, None]) % n
        self._off = self._off.reshape(-1)

        self.failures = failure_model or LinkFailureModel(n, ports)
        self._failure_events = (
            failure_plan.sorted_events() if failure_plan is not None else []
        )
        self._next_failure_event = 0

        self._stream = stream
        if stream:
            self.tracker = FlowTracker(
                n,
                retain_flows=False,
                mice_threshold_bytes=config.mice_threshold_bytes,
                reservoir_seed=config.seed,
            )
            self._source = StreamingFlowSource(flows)
        else:
            self.tracker = FlowTracker(n)
            self._source = MaterializedFlowSource(flows)
            self.tracker.register_all(self._source.flows)

        if config.priority_queue_enabled:
            self._thresholds = tuple(config.pias_thresholds)
        else:
            self._thresholds = ()
        bands = len(self._thresholds) + 1
        self._bands = bands
        n2 = self._n2
        # Columnar queue state: head segment per (band, pair), flattened.
        self._hb_bytes = np.zeros(bands * n2, dtype=np.int64)
        self._hb_elig = np.zeros(bands * n2, dtype=np.float64)
        self._hb_fidx = np.zeros(bands * n2, dtype=np.int64)
        # Tail segments, keyed by the same flat index; a key exists only
        # while its band holds two or more segments.
        self._tails: dict[int, deque] = {}
        self._pend = np.zeros(n2, dtype=np.int64)
        self._queued = 0
        self._threshold = config.epoch.request_threshold_bytes

        # Flow storage: index-addressed with a free list so streaming
        # runs recycle slots and stay O(flows in flight).
        self._flows: list[Flow | None] = []
        self._f_rem = np.zeros(1024, dtype=np.int64)
        self._free: list[int] = []

        # Three-epoch pipeline registers (PipelinedScheduler equivalent).
        self._ag = np.zeros((n, n), dtype=bool)  # [dst, src] awaiting grant
        self._ag_count = 0
        empty = np.zeros(0, dtype=np.int64)
        self._ga_src = empty
        self._ga_dst = empty
        self._ga_port = empty
        self._grants_issued_last_epoch = 0

        self._ff_enabled = config.idle_fast_forward
        self._epochs_fast_forwarded = 0
        self._tracer = tracer
        self._epoch = 0

    # ------------------------------------------------------------------
    # public accessors (scalar-engine API subset)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Index of the next epoch to simulate."""
        return self._epoch

    @property
    def now_ns(self) -> float:
        """Start time of the next epoch."""
        return self._epoch * self._epoch_ns

    @property
    def core_used(self) -> str:
        """Which engine core this instance runs."""
        return "vectorized"

    @property
    def total_queued_bytes(self) -> int:
        """Bytes currently waiting in all per-destination queues."""
        return self._queued

    @property
    def fast_forwarded_epochs(self) -> int:
        """Idle epochs the run loops skipped without stepping them."""
        return self._epochs_fast_forwarded

    # ------------------------------------------------------------------
    # run loops (mirrors of the scalar engine's integer epoch budgets)
    # ------------------------------------------------------------------

    def run(self, duration_ns: float) -> None:
        """Simulate whole epochs until ``duration_ns`` is covered."""
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        target_epoch = self._epoch_ceil(duration_ns)
        while self._epoch < target_epoch:
            self._maybe_fast_forward(duration_ns)
            if self._epoch >= target_epoch:
                break
            self.step_epoch()

    def run_until_complete(self, max_ns: float) -> bool:
        """Simulate until every flow completes (or ``max_ns``)."""
        if max_ns <= 0:
            raise ValueError("max_ns must be positive")
        limit_epoch = self._epoch_ceil(max_ns)
        while (
            self._source.next_arrival_ns is not None
            or not self.tracker.all_complete
        ):
            if self._epoch >= limit_epoch:
                return False
            self._maybe_fast_forward(max_ns)
            if self._epoch >= limit_epoch:
                return False
            self.step_epoch()
        return True

    def _maybe_fast_forward(self, limit_ns: float) -> None:
        if (
            not self._ff_enabled
            or self._queued
            or not self.failures.is_quiescent
            or self._ag_count
            or len(self._ga_src)
            or self._grants_issued_last_epoch
        ):
            return
        target = self._next_interesting_epoch(self._epoch_ceil(limit_ns))
        if target > self._epoch:
            self._epochs_fast_forwarded += target - self._epoch
            self._epoch = target

    def _epoch_ceil(self, time_ns: float) -> int:
        epoch_ns = self._epoch_ns
        epoch = math.ceil(time_ns / epoch_ns)
        while epoch > 0 and (epoch - 1) * epoch_ns >= time_ns:
            epoch -= 1
        while epoch * epoch_ns < time_ns:
            epoch += 1
        return epoch

    def _next_interesting_epoch(self, limit_epoch: int) -> int:
        # Exact mirror of the scalar engine's jump-target computation,
        # including the 1-ulp-careful arrival bound (DESIGN.md section 7).
        epoch_ns = self._epoch_ns
        target = limit_epoch
        arrival = self._source.next_arrival_ns
        if arrival is not None:
            epoch = int(arrival // epoch_ns)
            while epoch > 0 and (epoch - 1) * epoch_ns + epoch_ns >= arrival:
                epoch -= 1
            target = min(target, epoch)
        events = self._failure_events
        if self._next_failure_event < len(events):
            target = min(
                target,
                self._epoch_ceil(events[self._next_failure_event].time_ns),
            )
        return max(target, self._epoch)

    # ------------------------------------------------------------------
    # one epoch
    # ------------------------------------------------------------------

    def step_epoch(self) -> list[Match]:
        """Simulate one full epoch; returns the matching it used.

        Matches are returned sorted by (src, port) — a canonical order;
        the scalar engine's list order follows its dict iteration instead.
        The *set* of matches and all queue/tracker state are identical.
        """
        epoch = self._epoch
        start_ns = epoch * self._epoch_ns
        tracer = self._tracer
        if tracer is not None:
            t_phase = perf_counter()

        self._apply_failure_events(start_ns)
        self.failures.tick_epoch()
        self._inject_arrivals(start_ns)

        rot = epoch % self._m if self._rotate else 0
        any_failed = self.failures.any_failed
        any_detected = self.failures.any_detected
        eg_act = in_act = None
        if any_failed:
            eg_act, in_act = self._link_masks(self.failures.failed_link_keys)

        # REQUEST: binary demand above the piggyback threshold.
        req_pairs = np.flatnonzero(self._pend > self._threshold)
        num_requests = len(req_pairs)
        if any_failed and num_requests:
            srcs = req_pairs // self._n
            dsts = req_pairs % self._n
            port = ((self._off[req_pairs] - 1 - rot) % self._m) % self._ports
            ok = (
                eg_act[srcs * self._ports + port]
                & in_act[dsts * self._ports + port]
            )
            del_pairs = req_pairs[ok]
        else:
            del_pairs = req_pairs
        ag_new = np.zeros((self._n, self._n), dtype=bool)
        ag_new[del_pairs % self._n, del_pairs // self._n] = True

        # GRANT over last epoch's delivered requests.
        if any_detected:
            g_src, g_dst, g_port, num_grants = self._grant_fallback()
        else:
            g_src, g_dst, g_port, num_grants = self._grant_vector()

        # Grants ride this epoch's predefined phase in the reverse
        # direction (dst -> src); lost when that link is actually down.
        if any_failed and len(g_src):
            moff = (g_src - g_dst) % self._n
            mport = ((moff - 1 - rot) % self._m) % self._ports
            keep = (
                eg_act[g_dst * self._ports + mport]
                & in_act[g_src * self._ports + mport]
            )
            g_src, g_dst, g_port = g_src[keep], g_dst[keep], g_port[keep]

        # ACCEPT over last epoch's surviving grants.
        m_src, m_port, m_dst = self._accept_vector(any_detected)

        grants_answered = self._grants_issued_last_epoch
        self._ag = ag_new
        self._ag_count = len(del_pairs)
        self._ga_src, self._ga_dst, self._ga_port = g_src, g_dst, g_port
        self._grants_issued_last_epoch = num_grants

        # Arrivals inside the epoch become eligible at their arrival time.
        self._inject_arrivals(start_ns + self._epoch_ns)

        if tracer is not None:
            now = perf_counter()
            tracer.add_span("matching", now - t_phase)
            t_phase = now
            tracer.count("epochs")
            tracer.count("requests", int(num_requests))
            tracer.count("grants", int(grants_answered))
            tracer.count("accepts", len(m_src))
            tracer.count("matches", len(m_src))

        if self.timing.piggyback_enabled:
            self._run_piggyback(start_ns, rot, eg_act, in_act)
            if tracer is not None:
                now = perf_counter()
                tracer.add_span("piggyback", now - t_phase)
                t_phase = now
        if tracer is not None:
            # Span-key parity with the scalar engine, which times its
            # (no-op) relay-planning hook here.
            now = perf_counter()
            tracer.add_span("relay", now - t_phase)
            t_phase = now
        self._run_scheduled(m_src, m_port, m_dst, start_ns, eg_act, in_act)
        if tracer is not None:
            tracer.add_span("drain", perf_counter() - t_phase)

        self.tracker.flush_completions()
        self._epoch += 1
        if tracer is not None and tracer.gauge_due(int(self.now_ns)):
            tracer.sample(
                int(self.now_ns),
                queued_bytes=self._queued,
                active_pairs=int(np.count_nonzero(self._pend)),
            )
        return [
            Match(src=int(s), port=int(p), dst=int(d))
            for s, p, d in zip(m_src, m_port, m_dst)
        ]

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def _apply_failure_events(self, now_ns: float) -> None:
        events = self._failure_events
        while (
            self._next_failure_event < len(events)
            and events[self._next_failure_event].time_ns <= now_ns
        ):
            self.failures.apply(events[self._next_failure_event])
            self._next_failure_event += 1

    def _link_masks(self, keys) -> tuple[np.ndarray, np.ndarray]:
        """(egress-ok, ingress-ok) bool arrays over flat (tor, port)."""
        eg = np.ones(self._n * self._ports, dtype=bool)
        ing = np.ones(self._n * self._ports, dtype=bool)
        for key in keys:
            if key & 1:
                ing[key >> 1] = False
            else:
                eg[key >> 1] = False
        return eg, ing

    # ------------------------------------------------------------------
    # arrivals and flow storage
    # ------------------------------------------------------------------

    def _inject_arrivals(self, before_ns: float) -> None:
        source = self._source
        arrival = source.next_arrival_ns
        if arrival is None or arrival > before_ns:
            return
        register = self.tracker.register if self._stream else None
        n = self._n
        last_band = self._bands - 1
        while arrival is not None and arrival <= before_ns:
            flow = source.pop()
            if register is not None:
                register(flow)
            fidx = self._alloc_flow(flow)
            pid = flow.src * n + flow.dst
            size = flow.size_bytes
            when = flow.arrival_ns
            offset = 0
            for band, threshold in enumerate(self._thresholds):
                span = min(size, threshold) - offset
                if span > 0:
                    self._enqueue_segment(band, pid, fidx, span, when)
                    offset += span
                if offset >= size:
                    break
            tail = size - offset
            if tail > 0:
                self._enqueue_segment(last_band, pid, fidx, tail, when)
            self._pend[pid] += size
            self._queued += size
            arrival = source.next_arrival_ns

    def _alloc_flow(self, flow: Flow) -> int:
        if self._free:
            fidx = self._free.pop()
            self._flows[fidx] = flow
        else:
            fidx = len(self._flows)
            self._flows.append(flow)
            if fidx >= len(self._f_rem):
                grown = np.zeros(len(self._f_rem) * 2, dtype=np.int64)
                grown[: len(self._f_rem)] = self._f_rem
                self._f_rem = grown
        self._f_rem[fidx] = flow.size_bytes
        return fidx

    def _enqueue_segment(
        self, band: int, pid: int, fidx: int, num_bytes: int, elig_ns: float
    ) -> None:
        flat = band * self._n2 + pid
        if self._hb_bytes[flat] == 0:
            self._hb_bytes[flat] = num_bytes
            self._hb_elig[flat] = elig_ns
            self._hb_fidx[flat] = fidx
        else:
            tail = self._tails.get(flat)
            if tail is None:
                tail = deque()
                self._tails[flat] = tail
            tail.append((fidx, num_bytes, elig_ns))

    def _refill(self, flat: int) -> None:
        """Promote the next tail segment after a head empties.

        Maintains the invariant that a band's head is empty only when the
        whole band is — the vector phases test ``head_bytes > 0`` as the
        band-nonempty predicate.
        """
        tail = self._tails.get(flat)
        if tail is None:
            return
        fidx, num_bytes, elig_ns = tail.popleft()
        if not tail:
            del self._tails[flat]
        self._hb_bytes[flat] = num_bytes
        self._hb_elig[flat] = elig_ns
        self._hb_fidx[flat] = fidx

    def _complete(self, fidx: int, time_ns: float) -> None:
        flow = self._flows[fidx]
        self.tracker.complete(flow, time_ns)
        self._flows[fidx] = None
        self._free.append(fidx)

    def _credit(self, dst_totals: np.ndarray) -> None:
        tracker = self.tracker
        for dst in np.flatnonzero(dst_totals):
            tracker.credit_delivered(int(dst), int(dst_totals[dst]))

    # ------------------------------------------------------------------
    # GRANT / ACCEPT
    # ------------------------------------------------------------------

    def _grant_vector(self):
        """All destinations' ``RoundRobinRing.deal`` in one argsort."""
        counts = self._ag.sum(axis=1)
        dact = np.flatnonzero(counts)
        ports = self._ports
        if not len(dact):
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty, 0
        m = self._m
        rank = (self._idx[dact] - self._gptr[dact, None]) % m
        rank = np.where(self._ag[dact], rank, m)
        order = np.argsort(rank, axis=1, kind="stable")
        k = counts[dact]
        cols = np.arange(ports, dtype=np.int64)[None, :] % k[:, None]
        picks = np.take_along_axis(order, cols, axis=1)
        self._gptr[dact] = (self._idx[dact, picks[:, ports - 1]] + 1) % m
        g_dst = np.repeat(dact, ports)
        g_src = picks.reshape(-1)
        g_port = np.tile(np.arange(ports, dtype=np.int64), len(dact))
        return g_src, g_dst, g_port, len(dact) * ports

    def _grant_fallback(self):
        """Exact scalar GRANT mirror for epochs with detected failures."""
        ports = self._ports
        m = self._m
        idx = self._idx
        gptr = self._gptr
        det_eg, det_in = self._link_masks(self.failures.detected_link_keys)
        out_src: list[int] = []
        out_dst: list[int] = []
        out_port: list[int] = []
        num_grants = 0
        for dst in np.flatnonzero(self._ag.any(axis=1)):
            dst = int(dst)
            cand = [int(s) for s in np.flatnonzero(self._ag[dst])]
            usable_ports = [
                p for p in range(ports) if det_in[dst * ports + p]
            ]
            if not usable_ports:
                continue
            row = idx[dst]
            if all(
                det_eg[s * ports + p] for s in cand for p in usable_ports
            ):
                ordered = sorted(cand, key=lambda s: (row[s] - gptr[dst]) % m)
                picks = [
                    ordered[i % len(ordered)]
                    for i in range(len(usable_ports))
                ]
                gptr[dst] = (row[picks[-1]] + 1) % m
                for port, src in zip(usable_ports, picks):
                    out_src.append(src)
                    out_dst.append(dst)
                    out_port.append(port)
                    num_grants += 1
            else:
                # A source with a detected-failed egress port must not be
                # granted that port: per-port picks, pointer moving after
                # each pick (the scalar ring.pick path).
                for port in usable_ports:
                    eligible = [
                        s for s in cand if det_eg[s * ports + port]
                    ]
                    if not eligible:
                        continue
                    src = min(
                        eligible, key=lambda s: (row[s] - gptr[dst]) % m
                    )
                    gptr[dst] = (row[src] + 1) % m
                    out_src.append(src)
                    out_dst.append(dst)
                    out_port.append(port)
                    num_grants += 1
        return (
            np.array(out_src, dtype=np.int64),
            np.array(out_dst, dtype=np.int64),
            np.array(out_port, dtype=np.int64),
            num_grants,
        )

    def _accept_vector(self, any_detected: bool):
        """All sources' per-port ACCEPT picks via one min-rank scatter.

        Every grant row of a (src, port) group shares the group's
        predicate and ring, and candidate dsts are distinct, so ranks
        within a group are unique and the minimum identifies the scalar
        pick exactly.  Groups on a detected-failed egress port are
        dropped whole with no pointer movement, as in the scalar path.
        """
        ga_src, ga_dst, ga_port = self._ga_src, self._ga_dst, self._ga_port
        if not len(ga_src):
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, empty
        ports = self._ports
        if any_detected:
            det_eg, _det_in = self._link_masks(
                self.failures.detected_link_keys
            )
            keep = det_eg[ga_src * ports + ga_port]
            ga_src, ga_dst, ga_port = (
                ga_src[keep],
                ga_dst[keep],
                ga_port[keep],
            )
            if not len(ga_src):
                empty = np.zeros(0, dtype=np.int64)
                return empty, empty, empty
        m = self._m
        key = ga_src * ports + ga_port
        rank = (self._idx[ga_src, ga_dst] - self._aptr[key]) % m
        best = np.full(self._n * ports, m, dtype=np.int64)
        np.minimum.at(best, key, rank)
        win = rank == best[key]
        m_src, m_port, m_dst = ga_src[win], ga_port[win], ga_dst[win]
        self._aptr[key[win]] = (self._idx[m_src, m_dst] + 1) % m
        order = np.argsort(m_src * ports + m_port)
        return m_src[order], m_port[order], m_dst[order]

    # ------------------------------------------------------------------
    # predefined (piggyback) phase
    # ------------------------------------------------------------------

    def _run_piggyback(self, start_ns, rot, eg_act, in_act) -> None:
        act = np.flatnonzero(self._pend)
        if not len(act):
            return
        n = self._n
        ports = self._ports
        index = (self._off[act] - 1 - rot) % self._m
        slot = index // ports
        if eg_act is not None:
            port = index % ports
            ok = (
                eg_act[(act // n) * ports + port]
                & in_act[(act % n) * ports + port]
            )
            act, slot = act[ok], slot[ok]
            if not len(act):
                return
        now = start_ns + self._slot_starts[slot]
        hb, he = self._hb_bytes, self._hb_elig
        n2 = self._n2
        chosen = np.full(len(act), -1, dtype=np.int64)
        for band in range(self._bands):
            flat = band * n2 + act
            hit = (chosen < 0) & (hb[flat] > 0) & (he[flat] <= now)
            if hit.any():
                chosen[hit] = band
        served = chosen >= 0
        if not served.any():
            return
        act = act[served]
        slot = slot[served]
        flat = chosen[served] * n2 + act
        head = hb[flat]
        taken = np.minimum(head, self.timing.piggyback_payload_bytes)
        hb[flat] = head - taken
        fidx = self._hb_fidx[flat]
        deliver_ns = (
            start_ns + self._slot_ends[slot]
        ) + self.config.propagation_ns
        self._f_rem[fidx] -= taken
        self._pend[act] -= taken
        self._queued -= int(taken.sum())
        dst_totals = np.zeros(n, dtype=np.int64)
        np.add.at(dst_totals, act % n, taken)
        self._credit(dst_totals)
        for i in np.flatnonzero(head == taken):
            self._refill(int(flat[i]))
        for i in np.flatnonzero(self._f_rem[fidx] == 0):
            self._complete(int(fidx[i]), float(deliver_ns[i]))

    # ------------------------------------------------------------------
    # scheduled phase
    # ------------------------------------------------------------------

    def _run_scheduled(
        self, m_src, m_port, m_dst, start_ns, eg_act, in_act
    ) -> None:
        if not len(m_src):
            return
        if eg_act is not None:
            ports = self._ports
            ok = (
                eg_act[m_src * ports + m_port]
                & in_act[m_dst * ports + m_port]
            )
            m_src, m_dst = m_src[ok], m_dst[ok]
            if not len(m_src):
                return
        timing = self.timing
        payload = timing.data_payload_bytes
        slot_ns = timing.scheduled_slot_ns
        scheduled_slots = timing.scheduled_slots
        phase_start = start_ns + timing.predefined_ns
        pid = m_src * self._n + m_dst
        upid, lanes = np.unique(pid, return_counts=True)
        nz = self._pend[upid] > 0
        upid, lanes = upid[nz], lanes[nz]
        if not len(upid):
            return
        num_slots = scheduled_slots * lanes
        cap = num_slots * payload

        # Fast path: the whole phase serves one head segment — it is the
        # highest eligible band at phase start, large enough to fill every
        # slot, and no higher-priority head becomes eligible before the
        # last slot starts.  Everything else takes the exact scalar walk.
        hb, he = self._hb_bytes, self._hb_elig
        n2 = self._n2
        chosen = np.full(len(upid), -1, dtype=np.int64)
        preempt = np.full(len(upid), _INF)
        for band in range(self._bands):
            flat = band * n2 + upid
            nonempty = hb[flat] > 0
            elig = he[flat]
            hit = (chosen < 0) & nonempty & (elig <= phase_start)
            if hit.any():
                chosen[hit] = band
            pending_above = (chosen < 0) & nonempty
            np.minimum.at(preempt, np.flatnonzero(pending_above),
                          elig[pending_above])
        last_start = phase_start + (scheduled_slots - 1) * slot_ns
        flat = np.maximum(chosen, 0) * n2 + upid
        fast = (chosen >= 0) & (hb[flat] >= cap) & (preempt > last_start)

        fpid = upid[fast]
        if len(fpid):
            fflat = flat[fast]
            fcap = cap[fast]
            hb[fflat] -= fcap
            fidx = self._hb_fidx[fflat]
            self._f_rem[fidx] -= fcap
            self._pend[fpid] -= fcap
            self._queued -= int(fcap.sum())
            deliver_ns = (
                phase_start + scheduled_slots * slot_ns
            ) + self.config.propagation_ns
            dst_totals = np.zeros(self._n, dtype=np.int64)
            np.add.at(dst_totals, fpid % self._n, fcap)
            self._credit(dst_totals)
            for i in np.flatnonzero(hb[fflat] == 0):
                self._refill(int(fflat[i]))
            for i in np.flatnonzero(self._f_rem[fidx] == 0):
                self._complete(int(fidx[i]), deliver_ns)

        slow = np.flatnonzero(~fast)
        for j in slow:
            self._drain_pair(
                int(upid[j]),
                int(num_slots[j]),
                int(lanes[j]),
                phase_start,
                slot_ns,
                payload,
            )

    def _drain_pair(
        self, pid, num_slots, lanes, phase_start, slot_ns, payload
    ) -> None:
        """Exact mirror of ``PiasDestQueue.drain_slots`` on columnar state.

        Uses the scalar path's float expressions verbatim — including
        ``math.ceil`` over float division for slot counts — so chunk
        boundaries and delivery times stay bit-identical.
        """
        n2 = self._n2
        hb, he, hf = self._hb_bytes, self._hb_elig, self._hb_fidx
        bands = self._bands
        propagation = self.config.propagation_ns
        sent = 0
        dst_totals = None
        slot = 0
        while slot < num_slots:
            now = phase_start + (slot // lanes) * slot_ns
            band = -1
            for b in range(bands):
                flat = b * n2 + pid
                if hb[flat] > 0 and he[flat] <= now:
                    band = b
                    break
            if band < 0:
                wake = _INF
                for b in range(bands):
                    flat = b * n2 + pid
                    if hb[flat] > 0 and he[flat] < wake:
                        wake = float(he[flat])
                if wake == _INF:
                    break
                while (
                    slot < num_slots
                    and phase_start + (slot // lanes) * slot_ns < wake
                ):
                    slot += 1
                continue
            flat = band * n2 + pid
            head = int(hb[flat])
            run = min(num_slots - slot, math.ceil(head / payload))
            preempt = _INF
            for b in range(band):
                f2 = b * n2 + pid
                if hb[f2] > 0 and he[f2] < preempt:
                    preempt = float(he[f2])
            if preempt != _INF:
                capped = slot
                while (
                    capped < slot + run
                    and phase_start + (capped // lanes) * slot_ns < preempt
                ):
                    capped += 1
                run = capped - slot
                if run == 0:
                    run = 1
            taken = min(head, run * payload)
            hb[flat] = head - taken
            fidx = int(hf[flat])
            last_slot = slot + math.ceil(taken / payload) - 1
            deliver_ns = (
                phase_start + (last_slot // lanes + 1) * slot_ns + propagation
            )
            self._f_rem[fidx] -= taken
            sent += taken
            if self._f_rem[fidx] == 0:
                self._complete(fidx, deliver_ns)
            if hb[flat] == 0:
                self._refill(flat)
            slot += run
        if sent:
            self._pend[pid] -= sent
            self._queued -= sent
            self.tracker.credit_delivered(pid % self._n, sent)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self, duration_ns: float | None = None) -> RunSummary:
        """Headline metrics over ``duration_ns`` (default: simulated time)."""
        duration = duration_ns if duration_ns is not None else self.now_ns
        mice_p99, mice_mean = self.tracker.mice_fct_summary(
            self.config.mice_threshold_bytes
        )
        return RunSummary(
            duration_ns=duration,
            epoch_ns=self.timing.epoch_ns,
            num_flows=self._source.popped,
            num_completed=self.tracker.num_completed,
            goodput_normalized=self.tracker.goodput_normalized(
                duration, self.config.host_aggregate_gbps
            ),
            goodput_gbps=self.tracker.goodput_gbps(duration),
            mice_fct_p99_ns=mice_p99,
            mice_fct_mean_ns=mice_mean,
        )
