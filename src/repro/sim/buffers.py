"""Receiver-side buffering below the ToRs (section 3.6.5).

NegotiaToR's optical fabric runs at a 2x speedup, so data for one host can
arrive through several ports at once while the host-side links drain at the
aggregate host bandwidth.  The paper's remedy: the destination ToR monitors
its receive queue and only allows transmissions when buffer space suffices.

:class:`ReceiverBuffer` is the leaky bucket behind that check — it fills
with delivered optical bytes and drains continuously at the host-aggregate
rate — and the engine composes :meth:`has_room` into the GRANT step's
``rx_usable`` predicate when ``SimConfig.receiver_buffer_bytes`` is set, so
a nearly-full destination simply stops granting until its hosts catch up.
"""

from __future__ import annotations


class ReceiverBuffer:
    """A leaky-bucket receive buffer drained at the host-aggregate rate."""

    __slots__ = ("_capacity", "_drain_gbps", "_level", "_updated_ns")

    def __init__(self, capacity_bytes: int, drain_gbps: float) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if drain_gbps <= 0:
            raise ValueError("drain rate must be positive")
        self._capacity = capacity_bytes
        self._drain_gbps = drain_gbps
        self._level = 0.0
        self._updated_ns = 0.0

    @property
    def capacity_bytes(self) -> int:
        """Maximum buffered bytes."""
        return self._capacity

    def occupancy(self, now_ns: float) -> float:
        """Buffered bytes at ``now_ns`` after continuous host drain."""
        self._advance(now_ns)
        return self._level

    def add(self, num_bytes: int, now_ns: float) -> None:
        """Account for optical bytes landing at ``now_ns``.

        The level may transiently exceed capacity (data already in flight
        when the buffer filled); admission control happens at grant time,
        not on the wire.
        """
        if num_bytes < 0:
            raise ValueError("bytes must be non-negative")
        self._advance(now_ns)
        self._level += num_bytes

    def has_room(self, num_bytes: int, now_ns: float) -> bool:
        """Whether ``num_bytes`` more would still fit at ``now_ns``."""
        self._advance(now_ns)
        return self._level + num_bytes <= self._capacity

    def _advance(self, now_ns: float) -> None:
        if now_ns > self._updated_ns:
            drained = (now_ns - self._updated_ns) * self._drain_gbps / 8.0
            self._level = max(0.0, self._level - drained)
            self._updated_ns = now_ns
