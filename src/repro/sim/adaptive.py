"""The demand-aware adaptive baseline: EWMA demand estimation + matching.

This is the fourth corner of the reconfigurable-DCN design space the repo
compares NegotiaToR against (after the Sirius-flavored per-slot oblivious
fabric and the RotorNet-style rotor): a D3-class system that *watches* the
traffic matrix and reconfigures toward it, in the spirit of demand-aware
designs such as D3 and integrated static+rotor+on-demand topologies.
Where the rotor cycles a fixed schedule blind to demand, the adaptive
fabric:

* **Estimates demand** — every flow arrival adds its bytes to a
  per-(src, dst) observation window; at each recompute boundary (every
  ``AdaptiveConfig.recompute_slices`` slices) the window folds into an
  EWMA-estimated traffic matrix (``ewma_alpha`` weight on the new window)
  and resets, so the estimate tracks shifting hotspots while smoothing
  over burst noise.
* **Schedules toward the heavy entries** — the estimated matrix feeds a
  greedy max-weight matching over the port planes: entries are visited
  heaviest-first (ties broken by (src, dst) for determinism) and claim a
  circuit on a plane where both endpoints are free.  On topologies that
  pin an ordered pair to a single plane (thin-clos
  :meth:`~repro.topology.base.FlatTopology.data_port`) only that plane
  is considered, so every circuit the matching emits is physically
  realizable.  A pair that stays hot keeps its circuit across recomputes
  and pays nothing; only ports whose assignment *changed* go dark for
  ``reconfiguration_delay_ns`` — the demand-aware engine's defining
  advantage over the rotor, whose every slice pays the delay.
* **Covers the residual demand** — each cycle, ``residual_ports`` of the
  port planes take a turn on the topology's round-robin rotation (the
  same predefined schedule the rotor rides, paying the same per-slice
  reconfiguration penalty), and the duty rotates across planes from
  cycle to cycle: plane ``p`` is on rotation duty in cycle ``c`` iff
  ``(p - c) % ports_per_tor < residual_ports``.  The planes' rotations
  jointly connect every ordered pair once per cycle, so every pair —
  including those that lose the matching, and on thin-clos the pairs
  pinned to a plane currently on rotation duty — is periodically
  connected and sparse demand is never starved.  A plane returning from
  rotation duty must re-establish its demand circuits and pays one
  reconfiguration delay from the cycle boundary.

The engine reuses the shared substrate end to end, exactly as the rotor
did: segment queues (:class:`~repro.sim.queues.PiasDestQueue`, PIAS bands
at sources), the failure model and event plans (:mod:`repro.sim.failures`
— a transmission is lost when its (tor, port) link is down), the
bandwidth recorder, the telemetry ``tracer=`` hook, and both flow-source
modes (``stream=True`` pairs a lazy arrival-ordered iterator with the
bounded-memory tracker, DESIGN.md section 11).  All traffic is one-hop:
demand-aware circuits serve their pair directly and the residual rotation
serves whatever backlog waits for the connected peer, so there is no
relay buffer and conservation is per-source-queue exact.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from time import perf_counter

from ..topology.base import FlatTopology
from .config import AdaptiveConfig, SimConfig, transmit_ns
from .failures import FailurePlan, LinkFailureModel
from .flows import Flow, FlowTracker
from .metrics import BandwidthRecorder, RunSummary
from .queues import PiasDestQueue
from .source import MaterializedFlowSource, StreamingFlowSource


class AdaptiveSimulator:
    """Slice-driven demand-aware fabric over a finite set of flows.

    ``stream=True`` consumes ``flows`` lazily from an arrival-ordered
    iterator with a bounded-memory tracker, mirroring the other engines'
    streaming mode.
    """

    def __init__(
        self,
        config: SimConfig,
        topology: FlatTopology,
        flows: Iterable[Flow],
        adaptive: AdaptiveConfig | None = None,
        failure_model: LinkFailureModel | None = None,
        failure_plan: FailurePlan | None = None,
        bandwidth_recorder: BandwidthRecorder | None = None,
        stream: bool = False,
        tracer=None,
    ) -> None:
        if topology.num_tors != config.num_tors:
            raise ValueError("topology and config disagree on num_tors")
        if topology.ports_per_tor != config.ports_per_tor:
            raise ValueError("topology and config disagree on ports_per_tor")
        self.config = config
        self.topology = topology
        self.adaptive = adaptive or AdaptiveConfig()
        if self.adaptive.residual_ports > config.ports_per_tor:
            raise ValueError(
                "residual_ports cannot exceed ports_per_tor "
                f"({self.adaptive.residual_ports} > {config.ports_per_tor})"
            )

        packet_bytes = (
            config.epoch.data_header_bytes + config.epoch.data_payload_bytes
        )
        self._tx_ns = transmit_ns(packet_bytes, config.uplink_gbps)
        self.slice_ns = self.adaptive.slice_ns(config.epoch, config.uplink_gbps)
        self.payload_bytes = config.epoch.data_payload_bytes
        self.cycle_slots = topology.predefined_slots

        self.failures = failure_model or LinkFailureModel(
            config.num_tors, config.ports_per_tor
        )
        self._failure_events = (
            failure_plan.sorted_events() if failure_plan is not None else []
        )
        self._next_failure_event = 0

        self._stream = stream
        if stream:
            self.tracker = FlowTracker(
                config.num_tors,
                retain_flows=False,
                mice_threshold_bytes=config.mice_threshold_bytes,
                reservoir_seed=config.seed,
            )
            self._source = StreamingFlowSource(flows)
        else:
            self.tracker = FlowTracker(config.num_tors)
            self._source = MaterializedFlowSource(flows)
            self.tracker.register_all(self._source.flows)

        n = config.num_tors
        if config.priority_queue_enabled:
            self._band_limits = tuple(config.pias_thresholds)
        else:
            self._band_limits = ()
        # Per (source, destination) direct queues with PIAS bands: bytes
        # wait here until a demand-aware circuit or the residual rotation
        # connects the pair.  All traffic is one-hop — no relay buffers.
        self._direct: list[dict[int, PiasDestQueue]] = [{} for _ in range(n)]
        self._direct_pending = [0] * n
        self.bandwidth = bandwidth_recorder
        self._tracer = tracer
        self._slice = 0
        self._vectorized = config.resolved_core == "vectorized"
        self._ff_enabled = self._vectorized and config.idle_fast_forward
        self._slices_fast_forwarded = 0

        # Demand estimation and the circuit schedule.
        self._est = [[0.0] * n for _ in range(n)]
        self._window = [[0] * n for _ in range(n)]
        self._window_bytes = 0
        # Whether any arrival has ever been observed: while False, every
        # recompute is provably the identity (zero window onto a zero
        # estimate yields an empty schedule), which is what licenses the
        # idle fast-forward below.
        self._demand_seen = False
        # schedule[tor][port] = peer of the plane's demand circuit (None:
        # idle).  Every physical plane carries a demand assignment; a
        # plane simply ignores it while taking its turn on rotation duty.
        ports = config.ports_per_tor
        self._schedule: list[list[int | None]] = [
            [None] * ports for _ in range(n)
        ]
        # Absolute time each port's demand circuit finishes reconfiguring.
        self._ready_ns = [[0.0] * ports for _ in range(n)]
        # Last cycle whose residual-duty roles have been applied; planes
        # returning from rotation duty re-establish their circuits.
        self._role_cycle = 0
        # Residual ports rotate every slice, so — like the rotor — they
        # pay the reconfiguration penalty at every slice start, expressed
        # here as lost packet opportunities.
        if self._tx_ns > 0 and self.adaptive.reconfiguration_delay_ns > 0:
            self._residual_offset = math.ceil(
                self.adaptive.reconfiguration_delay_ns / self._tx_ns
            )
        else:
            self._residual_offset = 0
        self._recomputes = 0
        self._reconfigured_ports = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        """Start time of the next slice."""
        return self._slice * self.slice_ns

    @property
    def slices(self) -> int:
        """Number of slices simulated so far."""
        return self._slice

    @property
    def core_used(self) -> str:
        """Which engine core this instance runs (internal switch)."""
        return "vectorized" if self._vectorized else "scalar"

    @property
    def total_queued_bytes(self) -> int:
        """Bytes waiting in source queues (the fabric holds nothing else)."""
        return sum(self._direct_pending)

    def direct_bytes_at(self, tor: int) -> int:
        """Bytes currently queued for transmission at one ToR."""
        return self._direct_pending[tor]

    @property
    def recomputes(self) -> int:
        """Schedule recomputations performed (or provably skipped idle)."""
        return self._recomputes

    @property
    def reconfigured_ports(self) -> int:
        """Demand-aware port assignments changed across all recomputes."""
        return self._reconfigured_ports

    def estimated_demand(self, src: int, dst: int) -> float:
        """Current EWMA-estimated demand of one ordered pair, in bytes."""
        return self._est[src][dst]

    def schedule_peer(self, tor: int, port: int) -> int | None:
        """Peer of the plane's demand circuit (None: idle).

        The circuit only serves while the plane is not taking its turn on
        rotation duty (see :meth:`residual_in_cycle`).
        """
        self.topology.check_port(port)
        return self._schedule[tor][port]

    def residual_in_cycle(self, port: int, cycle: int) -> bool:
        """Whether plane ``port`` is on rotation duty during ``cycle``.

        The duty rotates: plane ``p`` covers cycles where
        ``(p - cycle) % ports_per_tor < residual_ports``, so over
        ``ports_per_tor`` consecutive cycles every plane — and hence the
        union of all planes' predefined rotations, which connects every
        ordered pair — takes a turn.
        """
        ports = self.config.ports_per_tor
        return (port - cycle) % ports < self.adaptive.residual_ports

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def run(self, duration_ns: float) -> None:
        """Simulate whole slices until ``duration_ns`` is covered.

        Loop control is an exact integer slice budget (see the rotor
        engine): the float duration converts once via :meth:`_slice_ceil`,
        so long horizons cannot accumulate float drift.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        target_slice = self._slice_ceil(duration_ns)
        while self._slice < target_slice:
            self._maybe_fast_forward(target_slice)
            if self._slice >= target_slice:
                break
            self.step_slice()

    def run_until_complete(self, max_ns: float) -> bool:
        """Simulate until every flow completes (or ``max_ns``)."""
        if max_ns <= 0:
            raise ValueError("max_ns must be positive")
        limit_slice = self._slice_ceil(max_ns)
        while (
            self._source.next_arrival_ns is not None
            or not self.tracker.all_complete
        ):
            if self._slice >= limit_slice:
                return False
            self._maybe_fast_forward(limit_slice)
            if self._slice >= limit_slice:
                return False
            self.step_slice()
        return True

    @property
    def fast_forwarded_slices(self) -> int:
        """Idle slices the run loops skipped without stepping them."""
        return self._slices_fast_forwarded

    def _slice_ceil(self, time_ns: float) -> int:
        """Smallest slice index whose start time is at or after ``time_ns``."""
        slice_ns = self.slice_ns
        index = math.ceil(time_ns / slice_ns)
        while index > 0 and (index - 1) * slice_ns >= time_ns:
            index -= 1
        while index * slice_ns < time_ns:
            index += 1
        return index

    def _maybe_fast_forward(self, limit_slice: int) -> None:
        """Jump ``_slice`` over slices in which provably nothing happens.

        Stricter than the rotor's condition: beyond an empty fabric and
        quiescent failure detection, no demand may ever have been observed
        — then every skipped recompute folds a zero window onto a zero
        estimate and leaves the (empty) schedule untouched, so skipping
        it is exact.  Once any arrival lands, the EWMA carries state
        between recomputes and slices are always stepped.
        """
        if not self._ff_enabled or not self.failures.is_quiescent:
            return
        if self._demand_seen or any(self._direct_pending):
            return
        target = limit_slice
        arrival = self._source.next_arrival_ns
        if arrival is not None:
            target = min(target, self._slice_ceil(arrival))
        events = self._failure_events
        if self._next_failure_event < len(events):
            target = min(
                target,
                self._slice_ceil(events[self._next_failure_event].time_ns),
            )
        if target > self._slice:
            skipped = target - self._slice
            self._slices_fast_forwarded += skipped
            # Preserve counter totals: each skipped slice would have
            # counted one "slices" tick, and each skipped recompute
            # boundary one identity recompute.
            period = self.adaptive.recompute_slices
            first = self._slice + (-self._slice % period)
            if first < target:
                self._recomputes += 1 + (target - 1 - first) // period
            self._slice = target
            if self._tracer is not None:
                self._tracer.count("slices", skipped)

    # ------------------------------------------------------------------
    # one slice
    # ------------------------------------------------------------------

    def step_slice(self) -> None:
        """Simulate one slice across all ToRs and ports."""
        slice_index = self._slice
        start_ns = self.now_ns
        tracer = self._tracer
        if tracer is not None:
            t_inject = perf_counter()
        self._apply_failure_events(start_ns)
        self.failures.tick_epoch()
        self._inject_arrivals(start_ns)
        self._apply_role_transitions(slice_index // self.cycle_slots)
        if tracer is not None:
            now = perf_counter()
            tracer.add_span("inject", now - t_inject)
            t_match = now
        if slice_index % self.adaptive.recompute_slices == 0:
            reconfigured = self._recompute_schedule(start_ns)
            if tracer is not None:
                tracer.add_span("matching", perf_counter() - t_match)
                tracer.count("recomputes")
                tracer.count("reconfigured_ports", reconfigured)

        topology = self.topology
        cycle_slot = slice_index % self.cycle_slots
        cycle = slice_index // self.cycle_slots
        failures = self.failures
        check = failures.any_failed
        budget = self.adaptive.packets_per_slice
        skip_idle_tors = self._vectorized
        direct_pending = self._direct_pending

        if tracer is None:
            for tor in range(self.config.num_tors):
                if skip_idle_tors and not direct_pending[tor]:
                    continue
                for port in range(self.config.ports_per_tor):
                    peer, offset = self._port_assignment(
                        tor, port, cycle_slot, cycle,
                        start_ns, budget, topology,
                    )
                    if peer is None:
                        continue
                    if check and not failures.transmission_ok(
                        tor, port, peer, port
                    ):
                        continue
                    self._serve_direct(tor, peer, start_ns, offset, budget)
        else:
            for tor in range(self.config.num_tors):
                if skip_idle_tors and not direct_pending[tor]:
                    continue
                for port in range(self.config.ports_per_tor):
                    peer, offset = self._port_assignment(
                        tor, port, cycle_slot, cycle,
                        start_ns, budget, topology,
                    )
                    if peer is None:
                        continue
                    if check and not failures.transmission_ok(
                        tor, port, peer, port
                    ):
                        continue
                    t0 = perf_counter()
                    sent = self._serve_direct(
                        tor, peer, start_ns, offset, budget
                    )
                    tracer.add_span("drain", perf_counter() - t0)
                    key = (
                        "residual_packets"
                        if self.residual_in_cycle(port, cycle)
                        else "demand_packets"
                    )
                    tracer.count(key, sent)
        self.tracker.flush_completions()
        self._slice += 1
        if tracer is not None:
            tracer.count("slices")
            if tracer.gauge_due(int(self.now_ns)):
                tracer.sample(
                    int(self.now_ns),
                    queued_bytes=self.total_queued_bytes,
                    active_circuits=sum(
                        1
                        for row in self._schedule
                        for peer in row
                        if peer is not None
                    ),
                )

    def _port_assignment(
        self,
        tor: int,
        port: int,
        cycle_slot: int,
        cycle: int,
        start_ns: float,
        budget: int,
        topology: FlatTopology,
    ) -> tuple[int | None, int]:
        """(peer, first usable packet slot) of one port this slice.

        A plane on rotation duty this cycle follows the predefined
        rotation and — like the rotor — pays the reconfiguration penalty
        at every slice start.  Otherwise the plane serves its demand
        circuit, holding it until the next recompute and losing leading
        packet opportunities only while still reconfiguring.
        """
        if self.residual_in_cycle(port, cycle):
            if self._residual_offset >= budget:
                return None, 0
            peer = topology.predefined_peer(tor, port, cycle_slot, cycle)
            return peer, self._residual_offset
        peer = self._schedule[tor][port]
        if peer is None:
            return None, 0
        ready = self._ready_ns[tor][port]
        if ready <= start_ns:
            return peer, 0
        offset = math.ceil((ready - start_ns) / self._tx_ns)
        if offset >= budget:
            return None, 0
        return peer, offset

    def _apply_role_transitions(self, cycle: int) -> None:
        """Re-establish circuits on planes returning from rotation duty.

        While a plane rotates it cannot hold its demand circuit, so when
        the duty moves on the circuit must be set up again: its ready
        time advances to one reconfiguration delay past the boundary of
        the cycle the plane rejoined demand service.  Idle assignments
        need nothing, which keeps this exact across fast-forwarded gaps
        (pre-demand the schedule is empty).
        """
        prev = self._role_cycle
        if cycle == prev:
            return
        self._role_cycle = cycle
        ports = self.config.ports_per_tor
        residual = self.adaptive.residual_ports
        if residual == 0 or residual >= ports:
            return
        span = cycle - prev
        cycle_start_ns = cycle * self.cycle_slots * self.slice_ns
        delay = self.adaptive.reconfiguration_delay_ns
        for port in range(ports):
            if self.residual_in_cycle(port, cycle):
                continue
            rotated = span >= ports or any(
                self.residual_in_cycle(port, c)
                for c in range(max(prev, cycle - ports), cycle)
            )
            if not rotated:
                continue
            ready = cycle_start_ns + delay
            for tor in range(self.config.num_tors):
                if (
                    self._schedule[tor][port] is not None
                    and self._ready_ns[tor][port] < ready
                ):
                    self._ready_ns[tor][port] = ready

    # ------------------------------------------------------------------
    # demand estimation and schedule recomputation
    # ------------------------------------------------------------------

    def _recompute_schedule(self, now_ns: float) -> int:
        """Fold the observation window and re-match; returns ports changed.

        The estimate update is ``est = (1 - alpha) * est + alpha * window``
        entry-wise, after which the window resets — between recomputes the
        schedule is frozen, so the engine's behavior is piecewise-static
        and exactly reproducible.  Matching is greedy max-weight over the
        port planes: heaviest estimated entries first (ties by
        (src, dst)), an entry claims the lowest-indexed plane where both
        its endpoints are free — restricted to the pair's single feasible
        plane on topologies whose :meth:`data_port` pins it (thin-clos) —
        and a pair holds at most one demand-aware circuit.  Ports whose
        assignment changed (including newly lit and newly darkened ones)
        go dark for ``reconfiguration_delay_ns`` from ``now_ns``.
        """
        n = self.config.num_tors
        alpha = self.adaptive.ewma_alpha
        keep = 1.0 - alpha
        est = self._est
        window = self._window
        if self._window_bytes or self._demand_seen:
            for src in range(n):
                row_e = est[src]
                row_w = window[src]
                for dst in range(n):
                    row_e[dst] = keep * row_e[dst] + alpha * row_w[dst]
                    if row_w[dst]:
                        row_w[dst] = 0
        self._window_bytes = 0
        self._recomputes += 1

        entries: list[tuple[float, int, int]] = []
        for src in range(n):
            row = est[src]
            for dst in range(n):
                if row[dst] > 0.0:
                    entries.append((-row[dst], src, dst))
        entries.sort()

        changed = 0
        delay = self.adaptive.reconfiguration_delay_ns
        ports = self.config.ports_per_tor
        data_port = self.topology.data_port
        src_used = [[False] * n for _ in range(ports)]
        dst_used = [[False] * n for _ in range(ports)]
        assignment: list[list[int | None]] = [
            [None] * n for _ in range(ports)
        ]
        for _neg_weight, src, dst in entries:
            pinned = data_port(src, dst)
            planes = range(ports) if pinned is None else (pinned,)
            for plane in planes:
                if src_used[plane][src] or dst_used[plane][dst]:
                    continue
                src_used[plane][src] = True
                dst_used[plane][dst] = True
                assignment[plane][src] = dst
                break
        for port in range(ports):
            plane_assignment = assignment[port]
            for tor in range(n):
                if plane_assignment[tor] != self._schedule[tor][port]:
                    self._schedule[tor][port] = plane_assignment[tor]
                    self._ready_ns[tor][port] = now_ns + delay
                    changed += 1
        self._reconfigured_ports += changed
        return changed

    # ------------------------------------------------------------------
    # slice timing
    # ------------------------------------------------------------------

    def _packet_start_ns(self, slice_start_ns: float, k: int) -> float:
        """Start of the k-th packet opportunity inside one slice."""
        return slice_start_ns + k * self._tx_ns

    def _packet_deliver_ns(self, slice_start_ns: float, k: int) -> float:
        """Arrival time of the k-th packet at the receiving ToR."""
        return (
            self._packet_start_ns(slice_start_ns, k)
            + self._tx_ns
            + self.config.propagation_ns
        )

    # ------------------------------------------------------------------
    # arrivals
    # ------------------------------------------------------------------

    def _inject_arrivals(self, before_ns: float) -> None:
        source = self._source
        arrival = source.next_arrival_ns
        register = self.tracker.register if self._stream else None
        while arrival is not None and arrival <= before_ns:
            flow = source.pop()
            if register is not None:
                register(flow)
            queue = self._direct[flow.src].get(flow.dst)
            if queue is None:
                queue = PiasDestQueue(
                    self._band_limits, enabled=bool(self._band_limits)
                )
                self._direct[flow.src][flow.dst] = queue
            queue.enqueue_flow(flow)
            self._direct_pending[flow.src] += flow.size_bytes
            # The demand observation the next recompute folds in.
            self._window[flow.src][flow.dst] += flow.size_bytes
            self._window_bytes += flow.size_bytes
            self._demand_seen = True
            arrival = source.next_arrival_ns

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------

    def _serve_direct(
        self, tor: int, peer: int, start_ns: float, offset: int, budget: int
    ) -> int:
        """Drain the (tor, peer) backlog in PIAS order; returns slots used."""
        queue = self._direct[tor].get(peer)
        if queue is None or queue.is_empty:
            return 0
        sent = 0

        def deliver(flow: Flow, num_bytes: int, last_slot: int) -> None:
            nonlocal sent
            sent += num_bytes
            deliver_ns = self._packet_deliver_ns(start_ns, offset + last_slot)
            self.tracker.deliver(flow, num_bytes, deliver_ns)
            if self.bandwidth is not None:
                self.bandwidth.record(("rx", peer), num_bytes, deliver_ns)

        used = queue.drain_slots(
            num_slots=budget - offset,
            payload_bytes=self.payload_bytes,
            slot_start_ns=lambda k: self._packet_start_ns(
                start_ns, offset + k
            ),
            deliver=deliver,
        )
        self._direct_pending[tor] -= sent
        return used

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def _apply_failure_events(self, now_ns: float) -> None:
        events = self._failure_events
        while (
            self._next_failure_event < len(events)
            and events[self._next_failure_event].time_ns <= now_ns
        ):
            self.failures.apply(events[self._next_failure_event])
            self._next_failure_event += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self, duration_ns: float | None = None) -> RunSummary:
        """Headline metrics over ``duration_ns`` (default: simulated time)."""
        duration = duration_ns if duration_ns is not None else self.now_ns
        mice_p99, mice_mean = self.tracker.mice_fct_summary(
            self.config.mice_threshold_bytes
        )
        return RunSummary(
            duration_ns=duration,
            epoch_ns=None,
            num_flows=self._source.popped,
            num_completed=self.tracker.num_completed,
            goodput_normalized=self.tracker.goodput_normalized(
                duration, self.config.host_aggregate_gbps
            ),
            goodput_gbps=self.tracker.goodput_gbps(duration),
            mice_fct_p99_ns=mice_p99,
            mice_fct_mean_ns=mice_mean,
        )
