"""Link failure injection, detection, and recovery (section 3.6.1).

NegotiaToR detects failures in-band: every predefined-phase slot carries at
least a dummy message, so a receiver that consistently hears nothing on an RX
port suspects an ingress failure, and a sender that repeatedly gets
"nothing arrived" feedback for a TX port suspects an egress failure.  Detected
failures are broadcast and the ports excluded from scheduling until repair.

We model the *actual* state of each directed link (a ToR port's egress or
ingress fiber) and a detection process that lags it by a configurable number
of epochs — the time the dummy/feedback evidence needs to accumulate.  The
paper's per-epoch evidence stream is deterministic (dummies flow every
epoch), so the lag counter is an exact reduction of it.  Recovery detection
is symmetric: once the fiber works again, evidence accumulates for the same
number of epochs before the link rejoins the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Direction(Enum):
    """Which fiber of a ToR port failed."""

    EGRESS = "egress"
    INGRESS = "ingress"


@dataclass(frozen=True)
class LinkRef:
    """A directed ToR-to-AWGR fiber."""

    tor: int
    port: int
    direction: Direction


@dataclass(frozen=True)
class FailureEvent:
    """A scheduled failure or repair."""

    time_ns: float
    link: LinkRef
    fail: bool


@dataclass
class FailurePlan:
    """A time-ordered script of failure and repair events."""

    events: list[FailureEvent] = field(default_factory=list)

    def add_failure(self, time_ns: float, link: LinkRef) -> None:
        """Schedule a failure."""
        self.events.append(FailureEvent(time_ns, link, fail=True))

    def add_repair(self, time_ns: float, link: LinkRef) -> None:
        """Schedule a repair."""
        self.events.append(FailureEvent(time_ns, link, fail=False))

    def sorted_events(self) -> list[FailureEvent]:
        """Events in time order."""
        return sorted(self.events, key=lambda e: e.time_ns)


def random_failure_plan(
    num_tors: int,
    ports_per_tor: int,
    failure_ratio: float,
    fail_at_ns: float,
    repair_at_ns: float | None,
    rng,
) -> tuple[FailurePlan, list[LinkRef]]:
    """Fail a random fraction of all directed links, optionally repair them.

    This is the Fig 10 protocol: ``failure_ratio`` of the 2 * N * S directed
    fibers fail simultaneously and are later repaired together.  Returns the
    plan and the failed links.
    """
    if not 0 <= failure_ratio <= 1:
        raise ValueError("failure_ratio must be in [0, 1]")
    links = [
        LinkRef(tor, port, direction)
        for tor in range(num_tors)
        for port in range(ports_per_tor)
        for direction in (Direction.EGRESS, Direction.INGRESS)
    ]
    count = round(failure_ratio * len(links))
    failed = rng.sample(links, count)
    plan = FailurePlan()
    for link in failed:
        plan.add_failure(fail_at_ns, link)
        if repair_at_ns is not None:
            plan.add_repair(repair_at_ns, link)
    return plan, failed


class LinkFailureModel:
    """Actual link state plus the lagged detection process.

    Links are tracked as packed integer keys (``(tor * ports + port) << 1 |
    direction``) rather than ``(tor, port, Direction)`` tuples: the
    ``egress_ok``/``ingress_ok`` predicates sit on the scheduling hot path
    and integer set membership avoids tuple construction and enum hashing.
    """

    def __init__(
        self, num_tors: int, ports_per_tor: int, detect_epochs: int = 3
    ) -> None:
        if detect_epochs < 0:
            raise ValueError("detect_epochs must be non-negative")
        self._num_tors = num_tors
        self._ports = ports_per_tor
        self._detect_epochs = detect_epochs
        self._failed: set[int] = set()
        self._detected: set[int] = set()
        self._evidence: dict[int, int] = {}

    def _key(self, tor: int, port: int, direction: Direction) -> int:
        return ((tor * self._ports + port) << 1) | (
            direction is Direction.INGRESS
        )

    @property
    def any_failed(self) -> bool:
        """Whether any link is actually down."""
        return bool(self._failed)

    @property
    def any_detected(self) -> bool:
        """Whether any link is currently excluded from scheduling."""
        return bool(self._detected)

    @property
    def is_quiescent(self) -> bool:
        """Whether an epoch tick would be a no-op.

        True when the detected state matches the actual state, so no
        evidence accumulates and no flip is pending — the condition under
        which the engine may fast-forward across epochs without running
        :meth:`tick_epoch` (stale evidence counters from interrupted
        transitions stay untouched either way).
        """
        return self._failed == self._detected

    @property
    def failed_link_keys(self) -> frozenset[int]:
        """Packed keys of links actually down (see the class docstring).

        The vectorized core (DESIGN.md section 15) expands these into
        boolean egress/ingress masks instead of probing per-port
        predicates pair by pair.
        """
        return frozenset(self._failed)

    @property
    def detected_link_keys(self) -> frozenset[int]:
        """Packed keys of links currently excluded from scheduling."""
        return frozenset(self._detected)

    # ------------------------------------------------------------------
    # actual state
    # ------------------------------------------------------------------

    def apply(self, event: FailureEvent) -> None:
        """Apply one failure/repair event."""
        key = self._key(event.link.tor, event.link.port, event.link.direction)
        if event.fail:
            self._failed.add(key)
        else:
            self._failed.discard(key)

    def egress_ok(self, tor: int, port: int) -> bool:
        """Whether the TX fiber of (tor, port) actually works."""
        return ((tor * self._ports + port) << 1) not in self._failed

    def ingress_ok(self, tor: int, port: int) -> bool:
        """Whether the RX fiber of (tor, port) actually works."""
        return ((tor * self._ports + port) << 1 | 1) not in self._failed

    def transmission_ok(self, src: int, src_port: int, dst: int, dst_port: int) -> bool:
        """Whether a one-hop transmission physically gets through."""
        return self.egress_ok(src, src_port) and self.ingress_ok(dst, dst_port)

    # ------------------------------------------------------------------
    # detection
    # ------------------------------------------------------------------

    def tick_epoch(self) -> None:
        """Advance detection by one epoch of dummy/feedback evidence.

        A failed link accumulates one epoch of missing-bits evidence; a
        repaired link accumulates one epoch of healthy evidence.  Crossing
        ``detect_epochs`` flips the detected state (and resets the counter
        for the opposite transition).
        """
        flips = []
        for key in self._failed:
            if key not in self._detected:
                count = self._evidence.get(key, 0) + 1
                if count >= self._detect_epochs:
                    flips.append((key, True))
                else:
                    self._evidence[key] = count
        for key in self._detected:
            if key not in self._failed:
                count = self._evidence.get(key, 0) + 1
                if count >= self._detect_epochs:
                    flips.append((key, False))
                else:
                    self._evidence[key] = count
        for key, detected in flips:
            self._evidence.pop(key, None)
            if detected:
                self._detected.add(key)
            else:
                self._detected.discard(key)

    def detected_egress_ok(self, tor: int, port: int) -> bool:
        """Scheduling predicate: TX fiber not currently excluded."""
        return ((tor * self._ports + port) << 1) not in self._detected

    def detected_ingress_ok(self, tor: int, port: int) -> bool:
        """Scheduling predicate: RX fiber not currently excluded."""
        return ((tor * self._ports + port) << 1 | 1) not in self._detected
