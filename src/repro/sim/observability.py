"""Per-epoch observability for the NegotiaToR engine.

:class:`EpochStatsRecorder` snapshots scheduler-level state every epoch —
active pairs, requests sent, matched ports, queue backlog, piggybacked and
scheduled bytes — producing the time series one needs to debug a scheduling
pathology or to reason about ramp-up/steady-state behaviour at a glance.

Attach via :meth:`NegotiaToRSimulator.attach_stats_recorder` (zero cost when
absent; one pass over the matching and counters when present).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class EpochStats:
    """One epoch's scheduler-level snapshot (allocated once per epoch)."""

    epoch: int
    active_pairs: int
    requests_sent: int
    matches: int
    matched_pairs: int
    queued_bytes: int
    piggybacked_bytes: int = 0
    scheduled_bytes: int = 0

    @property
    def port_utilization(self) -> float | None:
        """Matched ports over active pairs (None when nothing is active)."""
        if self.active_pairs == 0:
            return None
        return self.matches / self.active_pairs


@dataclass
class EpochStatsRecorder:
    """Collects :class:`EpochStats` over a run.

    Unbounded by default (every epoch retained).  Long streaming runs can
    cap residency with ``capacity``:

    * ``mode="ring"`` keeps the **last** ``capacity`` epochs — the right
      view for "what is the engine doing now".
    * ``mode="decimate"`` keeps a uniformly-thinned sample of the
      **whole** run: when the buffer fills, every other retained entry is
      dropped and the keep-stride doubles, so memory stays within
      ``capacity`` while ramp-up remains visible.

    Either way ``stats`` stays a plain list of :class:`EpochStats`, so
    ``series``/``summary`` work unchanged; ``dropped`` counts what was
    discarded.
    """

    stats: list[EpochStats] = field(default_factory=list)
    capacity: int | None = None
    mode: str = "ring"
    dropped: int = field(default=0, init=False)
    _seen: int = field(default=0, init=False)
    _stride: int = field(default=1, init=False)

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 2:
            raise ValueError("capacity must be at least 2")
        if self.mode not in ("ring", "decimate"):
            raise ValueError("mode must be 'ring' or 'decimate'")

    def record(self, entry: EpochStats) -> None:
        """Append one epoch's snapshot (evicting per the capacity mode)."""
        self._seen += 1
        if self.capacity is None:
            self.stats.append(entry)
            return
        if self.mode == "ring":
            self.stats.append(entry)
            if len(self.stats) > self.capacity:
                del self.stats[0]
                self.dropped += 1
            return
        if (self._seen - 1) % self._stride != 0:
            self.dropped += 1
            return
        self.stats.append(entry)
        if len(self.stats) >= self.capacity:
            self.dropped += len(self.stats) - (len(self.stats) + 1) // 2
            self.stats = self.stats[::2]
            self._stride *= 2

    @property
    def seen(self) -> int:
        """Epochs offered to the recorder (retained + dropped)."""
        return self._seen

    @property
    def stride(self) -> int:
        """Current decimation keep-stride (1 when not decimating)."""
        return self._stride

    def __len__(self) -> int:
        return len(self.stats)

    def series(self, attribute: str) -> np.ndarray:
        """One attribute across epochs as an array."""
        if not self.stats:
            return np.array([])
        return np.array([getattr(entry, attribute) for entry in self.stats])

    def steady_state_mean(
        self, attribute: str, warmup_epochs: int = 10
    ) -> float:
        """Mean of an attribute after a warm-up prefix."""
        values = self.series(attribute)[warmup_epochs:]
        if len(values) == 0:
            raise ValueError("not enough epochs after warm-up")
        return float(np.mean(values))

    def summary(self) -> dict[str, float]:
        """Headline means over the recorded epochs."""
        if not self.stats:
            raise ValueError("no epochs recorded")
        return {
            "epochs": float(len(self.stats)),
            "mean_active_pairs": float(np.mean(self.series("active_pairs"))),
            "mean_requests": float(np.mean(self.series("requests_sent"))),
            "mean_matches": float(np.mean(self.series("matches"))),
            "mean_queued_bytes": float(np.mean(self.series("queued_bytes"))),
            "total_piggybacked_bytes": float(
                np.sum(self.series("piggybacked_bytes"))
            ),
            "total_scheduled_bytes": float(
                np.sum(self.series("scheduled_bytes"))
            ),
        }
