"""Flow sources: how arrivals enter a simulator.

Both engines consume arrivals through one tiny interface — an attribute
``next_arrival_ns`` (``None`` when exhausted, kept plain for the per-epoch
hot-path check) and a ``pop()`` method — with two implementations:

* :class:`MaterializedFlowSource` holds the whole workload sorted in memory,
  exactly like the engines always did.  It is the default and the mode every
  golden baseline runs in.
* :class:`StreamingFlowSource` pulls flows on demand from an arrival-ordered
  iterator with a one-flow lookahead, so a million-flow workload never
  materializes.  It validates that arrivals never go backwards — a streaming
  engine cannot sort for you.

DESIGN.md section 11 describes the streaming data path end to end.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from .flows import Flow


class MaterializedFlowSource:
    """The classic mode: all flows sorted up front, served by index.

    ``popped`` counts the flows an engine has pulled (injected into the
    fabric) so far — the same quantity a :class:`StreamingFlowSource`
    tracks, which is what lets both execution modes report an identical
    ``num_flows`` in run summaries.
    """

    __slots__ = ("_flows", "_next", "next_arrival_ns")

    def __init__(self, flows: Iterable[Flow]) -> None:
        self._flows = sorted(flows, key=lambda f: f.arrival_ns)
        self._next = 0
        self.next_arrival_ns = (
            self._flows[0].arrival_ns if self._flows else None
        )

    @property
    def flows(self) -> list[Flow]:
        """The full sorted workload (for up-front registration)."""
        return self._flows

    @property
    def popped(self) -> int:
        """Flows pulled from this source (injected into the fabric) so far."""
        return self._next

    def pop(self) -> Flow:
        """The next flow in arrival order (raises when exhausted)."""
        try:
            flow = self._flows[self._next]
        except IndexError:
            raise ValueError("flow source is exhausted") from None
        self._next += 1
        if self._next < len(self._flows):
            self.next_arrival_ns = self._flows[self._next].arrival_ns
        else:
            self.next_arrival_ns = None
        return flow


class StreamingFlowSource:
    """Pulls flows lazily from an arrival-ordered iterator.

    Only the one-flow lookahead is ever held, so memory is O(1) in the
    trace length.  Out-of-order arrivals raise immediately with the
    offending flow named — streaming replay requires pre-sorted input
    (generators yield in arrival order by construction; for files, see
    ``repro.workloads.trace_io.stream``).
    """

    __slots__ = ("_iterator", "_head", "next_arrival_ns", "popped")

    def __init__(self, flows: Iterable[Flow]) -> None:
        self._iterator: Iterator[Flow] = iter(flows)
        self._head = next(self._iterator, None)
        self.next_arrival_ns = (
            self._head.arrival_ns if self._head is not None else None
        )
        self.popped = 0

    def pop(self) -> Flow:
        """The next flow in arrival order (raises when exhausted)."""
        flow = self._head
        if flow is None:
            raise ValueError("flow source is exhausted")
        head = next(self._iterator, None)
        if head is not None and head.arrival_ns < flow.arrival_ns:
            raise ValueError(
                f"flow {head.fid} arrives at {head.arrival_ns} ns, before "
                f"the previous flow {flow.fid} at {flow.arrival_ns} ns; "
                "streaming sources must yield non-decreasing arrival times"
            )
        self._head = head
        self.next_arrival_ns = head.arrival_ns if head is not None else None
        self.popped += 1
        return flow
