"""The traffic-oblivious baseline: round-robin rotor + Valiant load balancing.

This is the paper's state-of-the-art comparison point, implemented after
Sirius (Ballani et al., SIGCOMM'20) on the same simulator substrate
(section 4.1):

* The fabric reconfigures **every** timeslot following the same predefined
  round-robin schedule NegotiaToR uses in its predefined phase, so all ToR
  pairs connect once per rotation cycle regardless of traffic.
* Traffic adapts to the network via **VLB**: every cell of a fresh flow is
  assigned a uniformly random intermediate ToR when it arrives and staged in
  a per-intermediate queue; it leaves when the rotor connects the source to
  that intermediate, and completes its second hop when the intermediate's
  rotor reaches the final destination.  A cell whose random intermediate
  *is* its destination has a zero-length second hop.  The random assignment
  is what uniforms the traffic to all-to-all — and also what makes incasts
  collide at intermediates (Fig 7a's growth with degree).
* Relay (second-hop) cells have strict priority over fresh cells —
  intermediate buffers stay bounded, the usual rotor-network discipline.
* PIAS priorities apply at sources only: the multi-level feedback queue
  cannot classify relayed data at intermediates (section 4.1), which is
  exactly why elephants block mice mid-path and mice FCT suffers.

Every slot carries one cell per port.  A slot is ``guard + tx(data packet)``
long — the rotor pays a guardband on *every* slot, versus NegotiaToR's
predefined phase only.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from time import perf_counter

from ..topology.base import FlatTopology
from .config import SimConfig, transmit_ns
from .flows import Flow, FlowTracker
from .metrics import BandwidthRecorder, RunSummary
from .queues import PiasDestQueue
from .source import MaterializedFlowSource, StreamingFlowSource


class ObliviousSimulator:
    """Slot-driven rotor + VLB simulator over a finite set of flows.

    ``stream=True`` consumes ``flows`` lazily from an arrival-ordered
    iterator with a bounded-memory tracker, mirroring
    :class:`~repro.sim.network.NegotiaToRSimulator`'s streaming mode.
    """

    def __init__(
        self,
        config: SimConfig,
        topology: FlatTopology,
        flows: Iterable[Flow],
        bandwidth_recorder: BandwidthRecorder | None = None,
        stream: bool = False,
        tracer=None,
    ) -> None:
        if topology.num_tors != config.num_tors:
            raise ValueError("topology and config disagree on num_tors")
        if topology.ports_per_tor != config.ports_per_tor:
            raise ValueError("topology and config disagree on ports_per_tor")
        self.config = config
        self.topology = topology
        self._rng = random.Random(config.seed + 0x0B11)

        packet_bytes = (
            config.epoch.data_header_bytes + config.epoch.data_payload_bytes
        )
        self.slot_ns = config.epoch.guard_ns + transmit_ns(
            packet_bytes, config.uplink_gbps
        )
        self.payload_bytes = config.epoch.data_payload_bytes
        self.cycle_slots = topology.predefined_slots

        self._stream = stream
        if stream:
            self.tracker = FlowTracker(
                config.num_tors,
                retain_flows=False,
                mice_threshold_bytes=config.mice_threshold_bytes,
                reservoir_seed=config.seed,
            )
            self._source = StreamingFlowSource(flows)
        else:
            self.tracker = FlowTracker(config.num_tors)
            self._source = MaterializedFlowSource(flows)
            self.tracker.register_all(self._source.flows)

        n = config.num_tors
        # Per (source, intermediate) VLB stage queues with PIAS bands: a
        # cell waits here until the rotor offers its assigned intermediate.
        self._stage: list[dict[int, PiasDestQueue]] = [{} for _ in range(n)]
        self._stage_pending = [0] * n
        # Per (intermediate, final destination) relay queues, single band.
        self._relay: list[dict[int, PiasDestQueue]] = [{} for _ in range(n)]
        self._relay_pending = [0] * n
        self.bandwidth = bandwidth_recorder
        # Observational telemetry hooks (DESIGN.md section 14); None keeps
        # the slot loop branch-free beyond one check.
        self._tracer = tracer
        self._slot = 0
        # Vectorized core (DESIGN.md section 15): skip ToRs with no staged
        # or relayed bytes inside a slot, and jump whole idle slots.  Both
        # are exact — a skipped ToR provably sends nothing, and a skipped
        # slot provably changes no state (oblivious fabrics have no failure
        # model and draw randomness only at injection).
        self._vectorized = config.resolved_core == "vectorized"
        self._ff_enabled = self._vectorized and config.idle_fast_forward
        self._slots_fast_forwarded = 0

        if config.priority_queue_enabled:
            self._band_limits = tuple(config.pias_thresholds)
        else:
            self._band_limits = ()

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------

    @property
    def now_ns(self) -> float:
        """Start time of the next slot."""
        return self._slot * self.slot_ns

    @property
    def core_used(self) -> str:
        """Which engine core this instance runs (internal switch)."""
        return "vectorized" if self._vectorized else "scalar"

    @property
    def total_queued_bytes(self) -> int:
        """Bytes staged at sources plus bytes in flight at intermediates."""
        return sum(self._stage_pending) + sum(self._relay_pending)

    def relay_bytes_at(self, tor: int) -> int:
        """Bytes currently buffered at one intermediate ToR."""
        return self._relay_pending[tor]

    def staged_bytes_at(self, tor: int) -> int:
        """Fresh bytes currently staged at one source ToR."""
        return self._stage_pending[tor]

    @property
    def fast_forwarded_slots(self) -> int:
        """Idle slots the run loops skipped without stepping them."""
        return self._slots_fast_forwarded

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def run(self, duration_ns: float) -> None:
        """Simulate slots until ``duration_ns`` is covered.

        Loop control is an exact integer slot budget: the float duration is
        converted once via :meth:`_slot_ceil` (exact against the engine's
        own ``slot * slot_ns`` arithmetic), so long horizons cannot
        accumulate float drift in the stepping decision.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        target_slot = self._slot_ceil(duration_ns)
        while self._slot < target_slot:
            self._maybe_fast_forward(target_slot)
            if self._slot >= target_slot:
                break
            self.step_slot()

    def run_until_complete(self, max_ns: float) -> bool:
        """Simulate until every flow completes (or ``max_ns``).

        In streaming mode the source must also be exhausted — flows the
        engine has not pulled yet are still outstanding work.
        """
        if max_ns <= 0:
            raise ValueError("max_ns must be positive")
        limit_slot = self._slot_ceil(max_ns)
        while (
            self._source.next_arrival_ns is not None
            or not self.tracker.all_complete
        ):
            if self._slot >= limit_slot:
                return False
            self._maybe_fast_forward(limit_slot)
            if self._slot >= limit_slot:
                return False
            self.step_slot()
        return True

    def _slot_ceil(self, time_ns: float) -> int:
        """Smallest slot index whose start time is at or after ``time_ns``.

        The while-loops absorb float rounding in the division so the result
        is exact against the engine's own ``slot * slot_ns`` arithmetic.
        """
        slot_ns = self.slot_ns
        slot = math.ceil(time_ns / slot_ns)
        while slot > 0 and (slot - 1) * slot_ns >= time_ns:
            slot -= 1
        while slot * slot_ns < time_ns:
            slot += 1
        return slot

    def _maybe_fast_forward(self, limit_slot: int) -> None:
        """Jump ``_slot`` over slots in which provably nothing happens.

        Legal only when the fabric holds no bytes at all: an empty slot
        injects nothing (the next arrival is still in the future), serves
        nothing, and draws no randomness.  The jump lands on the first slot
        whose start time reaches the next arrival (that slot injects it),
        or the run limit.
        """
        if not self._ff_enabled:
            return
        if any(self._stage_pending) or any(self._relay_pending):
            return
        arrival = self._source.next_arrival_ns
        target = limit_slot
        if arrival is not None:
            target = min(target, self._slot_ceil(arrival))
        if target > self._slot:
            skipped = target - self._slot
            self._slots_fast_forwarded += skipped
            self._slot = target
            if self._tracer is not None:
                # Keep counter *totals* identical to a stepped run: every
                # skipped slot would have counted exactly one "slots" tick
                # and served zero cells.
                self._tracer.count("slots", skipped)

    # ------------------------------------------------------------------
    # one slot
    # ------------------------------------------------------------------

    def step_slot(self) -> None:
        """Simulate one rotor timeslot across all ToRs and ports."""
        slot = self._slot
        start_ns = self.now_ns
        tracer = self._tracer
        if tracer is not None:
            t_inject = perf_counter()
        self._inject_arrivals(start_ns)
        if tracer is not None:
            tracer.add_span("inject", perf_counter() - t_inject)

        topology = self.topology
        cycle_slot = slot % self.cycle_slots
        cycle = slot // self.cycle_slots
        deliver_ns = start_ns + self.slot_ns + self.config.propagation_ns
        payload = self.payload_bytes

        # Active-set iteration (vectorized core): a ToR with no staged and
        # no relayed bytes cannot send on any port, so skipping it leaves
        # every queue, counter, and delivery bit-identical.
        skip_idle_tors = self._vectorized
        stage_pending = self._stage_pending
        relay_pending = self._relay_pending

        if tracer is None:
            for tor in range(self.config.num_tors):
                if (
                    skip_idle_tors
                    and not stage_pending[tor]
                    and not relay_pending[tor]
                ):
                    continue
                for port in range(self.config.ports_per_tor):
                    peer = topology.predefined_peer(
                        tor, port, cycle_slot, cycle
                    )
                    if peer is None:
                        continue
                    if self._send_relay(
                        tor, peer, payload, start_ns, deliver_ns
                    ):
                        continue
                    self._send_staged(tor, peer, payload, start_ns, deliver_ns)
        else:
            # Same sends, with per-hop wall-time attribution: second-hop
            # relay service is "relay", first-hop staged service "drain".
            for tor in range(self.config.num_tors):
                if (
                    skip_idle_tors
                    and not stage_pending[tor]
                    and not relay_pending[tor]
                ):
                    continue
                for port in range(self.config.ports_per_tor):
                    peer = topology.predefined_peer(
                        tor, port, cycle_slot, cycle
                    )
                    if peer is None:
                        continue
                    t0 = perf_counter()
                    relayed = self._send_relay(
                        tor, peer, payload, start_ns, deliver_ns
                    )
                    now = perf_counter()
                    tracer.add_span("relay", now - t0)
                    if relayed:
                        tracer.count("relay_cells")
                        continue
                    staged = self._send_staged(
                        tor, peer, payload, start_ns, deliver_ns
                    )
                    tracer.add_span("drain", perf_counter() - now)
                    if staged:
                        tracer.count("direct_cells")
        self.tracker.flush_completions()
        self._slot += 1
        if tracer is not None:
            tracer.count("slots")
            if tracer.gauge_due(int(self.now_ns)):
                tracer.sample(
                    int(self.now_ns),
                    queued_bytes=self.total_queued_bytes,
                    relay_bytes=sum(self._relay_pending),
                )

    # ------------------------------------------------------------------
    # VLB spreading
    # ------------------------------------------------------------------

    def _inject_arrivals(self, before_ns: float) -> None:
        source = self._source
        arrival = source.next_arrival_ns
        register = self.tracker.register if self._stream else None
        while arrival is not None and arrival <= before_ns:
            flow = source.pop()
            if register is not None:
                register(flow)
            self._spread_flow(flow)
            arrival = source.next_arrival_ns

    def _band_chunks(self, size_bytes: int):
        """Split a flow's bytes into (band, bytes) per the PIAS thresholds."""
        chunks = []
        offset = 0
        for band, limit in enumerate(self._band_limits):
            span = min(size_bytes, limit) - offset
            if span > 0:
                chunks.append((band, span))
                offset += span
            if offset >= size_bytes:
                break
        tail = size_bytes - offset
        if tail > 0:
            chunks.append((len(self._band_limits), tail))
        return chunks

    def _spread_flow(self, flow: Flow) -> None:
        """Assign the flow's cells to uniformly random intermediates.

        Each payload-sized cell draws an intermediate; consecutive cells of
        one band are sprayed without replacement (round-robin-like), and a
        band bigger than one cell per intermediate is split evenly across
        all of them.
        """
        n = self.config.num_tors
        src = flow.src
        others = [t for t in range(n) if t != src]
        payload = self.payload_bytes
        for band, nbytes in self._band_chunks(flow.size_bytes):
            cells = math.ceil(nbytes / payload)
            if cells >= len(others):
                base = nbytes // len(others)
                remainder = nbytes - base * len(others)
                for index, intermediate in enumerate(others):
                    size = base + (1 if index < remainder else 0)
                    if size > 0:
                        self._stage_bytes(src, intermediate, flow, size, band)
            else:
                picks = self._rng.sample(others, cells)
                remaining = nbytes
                for intermediate in picks:
                    size = min(payload, remaining)
                    self._stage_bytes(src, intermediate, flow, size, band)
                    remaining -= size
        self._stage_pending[src] += flow.size_bytes

    def _stage_bytes(self, src, intermediate, flow, size, band):
        queue = self._stage[src].get(intermediate)
        if queue is None:
            queue = PiasDestQueue(
                self._band_limits, enabled=bool(self._band_limits)
            )
            self._stage[src][intermediate] = queue
        queue.enqueue_bytes(flow, size, band=band, eligible_ns=flow.arrival_ns)

    # ------------------------------------------------------------------
    # per-slot transmissions
    # ------------------------------------------------------------------

    def _send_relay(
        self, tor: int, peer: int, payload: int, now_ns: float, deliver_ns: float
    ) -> bool:
        """Second hop: forward buffered relay bytes destined to ``peer``."""
        queue = self._relay[tor].get(peer)
        if queue is None:
            return False
        band = queue.head_band(now_ns)
        if band is None:
            return False
        flow, num_bytes = queue.pop_bytes(band, payload)
        self._relay_pending[tor] -= num_bytes
        self.tracker.deliver(flow, num_bytes, deliver_ns)
        if self.bandwidth is not None:
            self.bandwidth.record(("rx", peer), num_bytes, deliver_ns)
        return True

    def _send_staged(
        self, tor: int, peer: int, payload: int, now_ns: float, deliver_ns: float
    ) -> bool:
        """First hop: send a staged cell whose assigned intermediate is ``peer``."""
        queue = self._stage[tor].get(peer)
        if queue is None:
            return False
        band = queue.head_band(now_ns)
        if band is None:
            return False
        flow, num_bytes = queue.pop_bytes(band, payload)
        self._stage_pending[tor] -= num_bytes
        if flow.dst == peer:
            # The random intermediate is the destination: zero-length
            # second hop, the cell is delivered.
            self.tracker.deliver(flow, num_bytes, deliver_ns)
            if self.bandwidth is not None:
                self.bandwidth.record(("rx", peer), num_bytes, deliver_ns)
            return True
        relay_queue = self._relay[peer].get(flow.dst)
        if relay_queue is None:
            relay_queue = PiasDestQueue(thresholds=(), enabled=False)
            self._relay[peer][flow.dst] = relay_queue
        relay_queue.enqueue_bytes(flow, num_bytes, band=0, eligible_ns=deliver_ns)
        self._relay_pending[peer] += num_bytes
        if self.bandwidth is not None:
            self.bandwidth.record(("relay", peer), num_bytes, deliver_ns)
        return True

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self, duration_ns: float | None = None) -> RunSummary:
        """Headline metrics over ``duration_ns`` (default: simulated time).

        ``num_flows`` counts flows *injected into the fabric* in both
        tracker modes — a flow arriving inside the run's final partial
        slot is never injected (the rotor injects at slot start), and
        before this was unified the materialized mode counted it while
        the streaming mode did not.
        """
        duration = duration_ns if duration_ns is not None else self.now_ns
        mice_p99, mice_mean = self.tracker.mice_fct_summary(
            self.config.mice_threshold_bytes
        )
        return RunSummary(
            duration_ns=duration,
            epoch_ns=None,
            num_flows=self._source.popped,
            num_completed=self.tracker.num_completed,
            goodput_normalized=self.tracker.goodput_normalized(
                duration, self.config.host_aggregate_gbps
            ),
            goodput_gbps=self.tracker.goodput_gbps(duration),
            mice_fct_p99_ns=mice_p99,
            mice_fct_mean_ns=mice_mean,
        )
