"""The NegotiaToR network simulator (sections 3.3 and 3.4).

An epoch-driven engine: every epoch it

1. applies scheduled failure/repair events and advances failure detection,
2. injects flow arrivals into per-destination PIAS queues,
3. computes this epoch's REQUESTs from queue occupancy (binary demand with
   the 3-piggyback-packet threshold of section 3.4.1),
4. delivers scheduling messages across the predefined phase — a message is
   lost when the (slot, port) link its pair rides this epoch is down — and
   advances the 3-epoch GRANT/ACCEPT pipeline,
5. serves one piggybacked packet per ToR pair in the predefined phase (the
   scheduling-delay bypass of section 3.4.1), and
6. drains per-destination queues over the scheduled phase according to the
   accepted matching, one packet per (port, timeslot).

All transmissions are one-hop; conflict-freedom is guaranteed by the matching
(validated in tests) and the predefined-phase permutation schedule.

Two hot-path mechanisms keep large sweeps tractable (DESIGN.md sections 6-7):
queue backlog and request-readiness are maintained as running counters
updated on enqueue/drain rather than re-summed per epoch, and the run loops
fast-forward over epochs in which provably nothing can happen.  Both are
exact: a fixed seed produces bit-identical results with them on or off.

Traffic enters through a flow source (DESIGN.md section 11): the default
materialized source holds the whole workload sorted in memory, while
``stream=True`` pulls arrivals lazily from an arrival-ordered iterator and
pairs with a bounded-memory tracker, so million-flow traces run at
O(flows in flight) residency.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from time import perf_counter

from ..core.matching import Match, NegotiaToRMatcher
from ..core.pipeline import PipelinedScheduler
from ..topology.base import FlatTopology
from .buffers import ReceiverBuffer
from .config import EpochTiming, SimConfig
from .failures import FailurePlan, LinkFailureModel
from .flows import Flow, FlowTracker
from .metrics import BandwidthRecorder, MatchRatioRecorder, RunSummary
from .observability import EpochStats, EpochStatsRecorder
from .queues import PiasDestQueue
from .source import MaterializedFlowSource, StreamingFlowSource


class NegotiaToRSimulator:
    """Simulates a NegotiaToR fabric over a finite set of flows."""

    def __init__(
        self,
        config: SimConfig,
        topology: FlatTopology,
        flows: Iterable[Flow],
        scheduler: PipelinedScheduler | None = None,
        failure_model: LinkFailureModel | None = None,
        failure_plan: FailurePlan | None = None,
        match_recorder: MatchRatioRecorder | None = None,
        bandwidth_recorder: BandwidthRecorder | None = None,
        record_pair_bandwidth: bool = False,
        stream: bool = False,
        tracer=None,
    ) -> None:
        if topology.num_tors != config.num_tors:
            raise ValueError("topology and config disagree on num_tors")
        if topology.ports_per_tor != config.ports_per_tor:
            raise ValueError("topology and config disagree on ports_per_tor")
        self.config = config
        self.topology = topology
        self.timing = EpochTiming.derive(
            config.epoch, config.uplink_gbps, topology.predefined_slots
        )
        self._epoch_ns = self.timing.epoch_ns
        # Per-slot start/end offsets from epoch start, fixed for the whole
        # run; the predefined-phase loop adds the epoch start per pair
        # (keeping the original operand grouping, so times stay bit-exact)
        # instead of calling the timing methods per pair per epoch.
        self._predef_slot_starts = tuple(
            self.timing.predefined_slot_start(s)
            for s in range(self.timing.predefined_slots)
        )
        self._predef_slot_ends = tuple(
            self.timing.predefined_slot_end(s)
            for s in range(self.timing.predefined_slots)
        )
        self._rng = random.Random(config.seed)
        if scheduler is None:
            scheduler = PipelinedScheduler(
                NegotiaToRMatcher(topology, self._rng)
            )
        self.scheduler = scheduler
        self.failures = failure_model or LinkFailureModel(
            config.num_tors, config.ports_per_tor
        )
        self._failure_events = (
            failure_plan.sorted_events() if failure_plan is not None else []
        )
        self._next_failure_event = 0
        self.match_recorder = match_recorder
        self.bandwidth = bandwidth_recorder
        self._record_pairs = record_pair_bandwidth
        # Telemetry (DESIGN.md section 14): purely observational — spans,
        # counters, and cadenced gauges.  Every hook sits behind one
        # ``is not None`` check so the traced and untraced engines step
        # through identical simulation state.
        self._tracer = tracer

        # Streaming mode (DESIGN.md section 11): arrivals are pulled from an
        # iterator on demand and the tracker folds completions into online
        # accumulators instead of retaining Flow objects, so memory stays
        # O(flows in flight) however long the trace is.
        self._stream = stream
        if stream:
            self.tracker = FlowTracker(
                config.num_tors,
                retain_flows=False,
                mice_threshold_bytes=config.mice_threshold_bytes,
                reservoir_seed=config.seed,
            )
            self._source = StreamingFlowSource(flows)
        else:
            self.tracker = FlowTracker(config.num_tors)
            self._source = MaterializedFlowSource(flows)
            self.tracker.register_all(self._source.flows)

        n = config.num_tors
        self._queues: list[list[PiasDestQueue | None]] = [
            [
                PiasDestQueue(
                    config.pias_thresholds, config.priority_queue_enabled
                )
                if dst != src
                else None
                for dst in range(n)
            ]
            for src in range(n)
        ]
        self._active_pairs: set[tuple[int, int]] = set()
        # Incremental accounting (DESIGN.md section 6): total backlog and the
        # set of pairs above the REQUEST threshold are updated at every
        # enqueue/drain instead of being re-derived from the queues.
        self._queued_bytes = 0
        self._request_threshold = config.epoch.request_threshold_bytes
        self._request_ready: set[tuple[int, int]] = set()
        self._ff_enabled = config.idle_fast_forward
        self._epochs_fast_forwarded = 0
        # Base-scheduler requests are always binary (payload None): skip the
        # per-pair request_payload hook unless a variant overrides it.
        self._binary_requests = (
            type(self.scheduler).request_payload
            is PipelinedScheduler.request_payload
        )
        if config.receiver_buffer_bytes is not None:
            # Section 3.6.5: destinations stop granting when their host-side
            # receive buffer is nearly full.
            self._rx_buffers = [
                ReceiverBuffer(
                    config.receiver_buffer_bytes, config.host_aggregate_gbps
                )
                for _ in range(n)
            ]
        else:
            self._rx_buffers = None
        self._stats: EpochStatsRecorder | None = None
        self._phase_bytes = [0, 0]  # piggybacked, scheduled (per epoch)
        self._epoch = 0

    # ------------------------------------------------------------------
    # public accessors
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Index of the next epoch to simulate."""
        return self._epoch

    @property
    def now_ns(self) -> float:
        """Start time of the next epoch."""
        return self._epoch * self._epoch_ns

    @property
    def core_used(self) -> str:
        """Which engine core this instance runs."""
        return "scalar"

    def attach_stats_recorder(self, recorder: EpochStatsRecorder) -> None:
        """Record per-epoch scheduler statistics into ``recorder``."""
        self._stats = recorder

    def queue(self, src: int, dst: int) -> PiasDestQueue:
        """The per-destination queue of an ordered pair (for inspection)."""
        q = self._queues[src][dst]
        if q is None:
            raise ValueError("no queue from a ToR to itself")
        return q

    @property
    def total_queued_bytes(self) -> int:
        """Bytes currently waiting in all per-destination queues."""
        return self._queued_bytes

    @property
    def fast_forwarded_epochs(self) -> int:
        """Idle epochs the run loops skipped without stepping them."""
        return self._epochs_fast_forwarded

    # ------------------------------------------------------------------
    # run loops
    # ------------------------------------------------------------------

    def run(self, duration_ns: float) -> None:
        """Simulate whole epochs until ``duration_ns`` is covered.

        Loop control is an exact *integer* epoch budget: the float duration
        is converted once (via :meth:`_epoch_ceil`, which is exact against
        the engine's own ``epoch * epoch_ns`` arithmetic) and the loop
        compares integer epoch counters, so hour-long horizons cannot
        accumulate float drift in the stepping decision.
        """
        if duration_ns <= 0:
            raise ValueError("duration must be positive")
        target_epoch = self._epoch_ceil(duration_ns)
        while self._epoch < target_epoch:
            self._maybe_fast_forward(duration_ns)
            if self._epoch >= target_epoch:
                break
            self.step_epoch()

    def run_until_complete(self, max_ns: float) -> bool:
        """Simulate until every flow completes (or ``max_ns``).

        Returns True when all flows completed.  In streaming mode the
        source must also be exhausted — flows the engine has not pulled yet
        are still outstanding work.  Like :meth:`run`, the cutoff is held
        as an integer epoch budget.
        """
        if max_ns <= 0:
            raise ValueError("max_ns must be positive")
        limit_epoch = self._epoch_ceil(max_ns)
        while (
            self._source.next_arrival_ns is not None
            or not self.tracker.all_complete
        ):
            if self._epoch >= limit_epoch:
                return False
            self._maybe_fast_forward(max_ns)
            if self._epoch >= limit_epoch:
                return False
            self.step_epoch()
        return True

    # ------------------------------------------------------------------
    # idle-epoch fast-forward (DESIGN.md section 7)
    # ------------------------------------------------------------------

    def _maybe_fast_forward(self, limit_ns: float) -> None:
        """Jump ``_epoch`` over epochs in which provably nothing happens.

        Requires the engine to be fully idle: no queued data, a drained
        scheduling pipeline, failure detection in steady state, and no
        subclass-held in-flight state.  The jump lands on the earliest epoch
        that an arrival, a failure/repair event, or the run limit can touch,
        so every skipped epoch would have been an exact no-op.
        """
        if (
            not self._ff_enabled
            or self._active_pairs
            or self._stats is not None
            or not self.failures.is_quiescent
            or not getattr(self.scheduler, "is_idle", False)
            or not self._subclass_state_idle()
        ):
            return
        target = self._next_interesting_epoch(self._epoch_ceil(limit_ns))
        if target > self._epoch:
            self._epochs_fast_forwarded += target - self._epoch
            self._epoch = target

    def _subclass_state_idle(self) -> bool:
        """Hook for engine subclasses holding their own in-flight state.

        Fast-forward is only legal when this returns True; the selective
        relay overrides it while relay requests or grants are pending.
        """
        return True

    def _epoch_ceil(self, time_ns: float) -> int:
        """Smallest epoch index whose start time is at or after ``time_ns``.

        The while-loops absorb float rounding in the division so the result
        is exact against the engine's own ``epoch * epoch_ns`` arithmetic.
        """
        epoch_ns = self.timing.epoch_ns
        epoch = math.ceil(time_ns / epoch_ns)
        while epoch > 0 and (epoch - 1) * epoch_ns >= time_ns:
            epoch -= 1
        while epoch * epoch_ns < time_ns:
            epoch += 1
        return epoch

    def _next_interesting_epoch(self, limit_epoch: int) -> int:
        """First epoch at which a pending arrival or failure event matters.

        A skipped epoch must not even *enqueue* an arrival: engine
        subclasses (the selective relay) act on newly active pairs right
        after the mid-epoch injection, so the jump stops at the first epoch
        whose injection bound (its end time) reaches the next arrival — see
        DESIGN.md section 7.  A failure event fires at the first epoch
        whose start is at or after its timestamp.
        """
        epoch_ns = self.timing.epoch_ns
        target = limit_epoch
        arrival = self._source.next_arrival_ns
        if arrival is not None:
            # Keep every epoch whose injection bound reaches the arrival.
            # The bound must be the exact float expression step_epoch uses —
            # (epoch * epoch_ns) + epoch_ns — because for non-dyadic epoch
            # lengths it can differ by 1 ulp from (epoch + 1) * epoch_ns,
            # and a mismatch would skip an epoch the stepped run injects in.
            epoch = int(arrival // epoch_ns)
            while epoch > 0 and (epoch - 1) * epoch_ns + epoch_ns >= arrival:
                epoch -= 1
            target = min(target, epoch)
        events = self._failure_events
        if self._next_failure_event < len(events):
            target = min(
                target, self._epoch_ceil(events[self._next_failure_event].time_ns)
            )
        return max(target, self._epoch)

    # ------------------------------------------------------------------
    # one epoch
    # ------------------------------------------------------------------

    def step_epoch(self) -> list[Match]:
        """Simulate one full epoch; returns the matching it used."""
        epoch = self._epoch
        start_ns = self.now_ns
        timing = self.timing
        tracer = self._tracer
        if tracer is not None:
            t_phase = perf_counter()

        self._apply_failure_events(start_ns)
        self.failures.tick_epoch()

        # Arrivals before the epoch are visible to the REQUEST decision.
        self._inject_arrivals(start_ns)
        fresh_requests = self._compute_requests(start_ns)
        delivered_requests = self._deliver_requests(fresh_requests, epoch)

        matches, grants_answered, accepts = self.scheduler.advance(
            delivered_requests,
            deliver_grants=lambda grants: self._deliver_grants(grants, epoch),
            rx_usable=self._rx_usable(start_ns),
            tx_usable=(
                self.failures.detected_egress_ok
                if self.failures.any_detected
                else None
            ),
        )
        if self.match_recorder is not None and grants_answered > 0:
            self.match_recorder.record(epoch, grants_answered, accepts)

        # Arrivals inside the epoch become eligible at their arrival time.
        self._inject_arrivals(start_ns + timing.epoch_ns)

        if tracer is not None:
            now = perf_counter()
            tracer.add_span("matching", now - t_phase)
            t_phase = now
            tracer.count("epochs")
            tracer.count(
                "requests",
                int(sum(len(dsts) for dsts in fresh_requests.values())),
            )
            tracer.count("grants", int(grants_answered))
            tracer.count("accepts", int(accepts))
            tracer.count("matches", len(matches))

        self._phase_bytes = [0, 0]
        if timing.piggyback_enabled:
            self._run_predefined_phase(epoch, start_ns)
            if tracer is not None:
                now = perf_counter()
                tracer.add_span("piggyback", now - t_phase)
                t_phase = now
        relay_assignments = self._plan_relay(epoch, start_ns, matches)
        if tracer is not None:
            now = perf_counter()
            tracer.add_span("relay", now - t_phase)
            t_phase = now
        self._run_scheduled_phase(matches, start_ns)
        if tracer is not None:
            now = perf_counter()
            tracer.add_span("drain", now - t_phase)
            t_phase = now
        if relay_assignments:
            self._run_relay_transmissions(relay_assignments, matches, start_ns)
            if tracer is not None:
                tracer.add_span("relay", perf_counter() - t_phase)

        if self._stats is not None:
            self._stats.record(
                EpochStats(
                    epoch=epoch,
                    active_pairs=len(self._active_pairs),
                    requests_sent=sum(
                        len(dsts) for dsts in fresh_requests.values()
                    ),
                    matches=len(matches),
                    matched_pairs=len({(m.src, m.dst) for m in matches}),
                    queued_bytes=self.total_queued_bytes,
                    piggybacked_bytes=self._phase_bytes[0],
                    scheduled_bytes=self._phase_bytes[1],
                )
            )
        self.tracker.flush_completions()
        self._epoch += 1
        if tracer is not None and tracer.gauge_due(int(self.now_ns)):
            tracer.sample(
                int(self.now_ns),
                queued_bytes=self._queued_bytes,
                active_pairs=len(self._active_pairs),
            )
        return matches

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _apply_failure_events(self, now_ns: float) -> None:
        events = self._failure_events
        while (
            self._next_failure_event < len(events)
            and events[self._next_failure_event].time_ns <= now_ns
        ):
            self.failures.apply(events[self._next_failure_event])
            self._next_failure_event += 1

    def _inject_arrivals(self, before_ns: float) -> None:
        # Inclusive bound: a flow arriving exactly at an epoch boundary is
        # visible to that epoch's REQUEST decision.
        source = self._source
        arrival = source.next_arrival_ns
        if arrival is None or arrival > before_ns:
            return
        threshold = self._request_threshold
        # Streaming flows are only known to the tracker once they enter the
        # fabric; materialized flows were all registered at construction.
        register = self.tracker.register if self._stream else None
        while arrival is not None and arrival <= before_ns:
            flow = source.pop()
            if register is not None:
                register(flow)
            queue = self._queues[flow.src][flow.dst]
            queue.enqueue_flow(flow)
            pair = (flow.src, flow.dst)
            self._active_pairs.add(pair)
            self._queued_bytes += flow.size_bytes
            if queue.pending_bytes > threshold:
                self._request_ready.add(pair)
            arrival = source.next_arrival_ns

    def _compute_requests(self, now_ns: float) -> dict[int, dict[int, object]]:
        """REQUEST step: binary demand above the piggyback threshold.

        ``_request_ready`` holds exactly the pairs whose pending bytes
        exceed the threshold (maintained incrementally at every
        enqueue/drain), so no per-pair byte check happens here.  Requests
        are returned keyed by destination — the shape GRANT consumes — and
        the payload hook is skipped entirely for the base scheduler, whose
        requests are always binary (None).
        """
        requests: dict[int, dict[int, object]] = {}
        if self._binary_requests:
            for src, dst in self._request_ready:
                entry = requests.get(dst)
                if entry is None:
                    requests[dst] = {src: None}
                else:
                    entry[src] = None
            return requests
        payload_of = self.scheduler.request_payload
        queues = self._queues
        for src, dst in self._request_ready:
            payload = payload_of(src, dst, queues[src][dst], now_ns)
            entry = requests.get(dst)
            if entry is None:
                requests[dst] = {src: payload}
            else:
                entry[src] = payload
        return requests

    def _deliver_requests(
        self, requests_by_dst: dict[int, dict[int, object]], epoch: int
    ) -> dict[int, dict[int, object]]:
        """Route REQUESTs through this epoch's predefined phase.

        A request from src to dst rides the (slot, port) link of their
        predefined meeting; it is lost when that link is actually down.
        With no actual failure the requests pass through untouched.
        """
        failures = self.failures
        if not failures.any_failed:
            return requests_by_dst
        delivered: dict[int, dict[int, object]] = {}
        topology = self.topology
        for dst, srcs in requests_by_dst.items():
            for src, payload in srcs.items():
                _slot, port = topology.predefined_assignment(src, dst, epoch)
                if not failures.transmission_ok(src, port, dst, port):
                    continue
                delivered.setdefault(dst, {})[src] = payload
        return delivered

    def _deliver_grants(
        self, grants_by_src: dict[int, list[tuple[int, int]]], epoch: int
    ) -> dict[int, list[tuple[int, int]]]:
        """Route GRANTs (dst -> src messages) through the predefined phase."""
        if not self.failures.any_failed:
            return grants_by_src
        delivered: dict[int, list[tuple[int, int]]] = {}
        failures = self.failures
        topology = self.topology
        for src, grants in grants_by_src.items():
            kept = []
            for dst, port in grants:
                _slot, msg_port = topology.predefined_assignment(dst, src, epoch)
                if failures.transmission_ok(dst, msg_port, src, msg_port):
                    kept.append((dst, port))
            if kept:
                delivered[src] = kept
        return delivered

    def _run_predefined_phase(self, epoch: int, start_ns: float) -> None:
        """Serve one piggybacked packet per pair with pending data.

        This is the engine's hottest loop — one iteration per active pair
        per epoch — so the (slot, port) assignment comes from the
        topology's memoized per-epoch table and all slot times are
        precomputed once per epoch.
        """
        timing = self.timing
        payload = timing.piggyback_payload_bytes
        propagation = self.config.propagation_ns
        failures = self.failures
        check = failures.any_failed
        assign = self.topology.assignment_for_epoch(epoch)
        tracker = self.tracker
        queues = self._queues
        threshold = self._request_threshold
        ready = self._request_ready
        record = self._rx_buffers is not None or self.bandwidth is not None
        slot_starts = self._predef_slot_starts
        slot_ends = self._predef_slot_ends
        piggybacked = 0
        emptied = []
        for pair in self._active_pairs:
            src, dst = pair
            slot, port = assign(src, dst)
            if check and not failures.transmission_ok(src, port, dst, port):
                continue
            queue = queues[src][dst]
            served = queue.drain_single_packet(payload, start_ns + slot_starts[slot])
            if served is None:
                continue
            flow, num_bytes = served
            deliver_ns = start_ns + slot_ends[slot] + propagation
            tracker.deliver(flow, num_bytes, deliver_ns)
            piggybacked += num_bytes
            if record:
                self._record_bandwidth(src, dst, num_bytes, deliver_ns)
            pending = queue.pending_bytes
            if pending == 0:
                emptied.append(pair)
            if pending <= threshold:
                ready.discard(pair)
        self._phase_bytes[0] += piggybacked
        self._queued_bytes -= piggybacked
        for pair in emptied:
            self._active_pairs.discard(pair)

    def _run_scheduled_phase(self, matches: list[Match], start_ns: float) -> None:
        """Drain queues along the accepted matching, one packet per slot."""
        timing = self.timing
        payload = timing.data_payload_bytes
        propagation = self.config.propagation_ns
        failures = self.failures
        check = failures.any_failed
        tracker = self.tracker
        scheduler = self.scheduler

        # A pair may be matched on several ports (parallel network): its
        # queue is drained over the union of the ports' slots, filling all
        # ports of a timeslot before moving to the next (in-order delivery,
        # section 3.6.5).
        ports_by_pair: dict[tuple[int, int], list[int]] = {}
        for match in matches:
            ports_by_pair.setdefault((match.src, match.dst), []).append(match.port)

        slot_ns = timing.scheduled_slot_ns
        phase_start = start_ns + timing.predefined_ns
        for (src, dst), ports in ports_by_pair.items():
            if check:
                ports = [
                    p for p in ports if failures.transmission_ok(src, p, dst, p)
                ]
                if not ports:
                    continue
            queue = self._queues[src][dst]
            if queue.is_empty:
                continue
            lanes = len(ports)
            sent = 0

            def deliver(flow: Flow, num_bytes: int, last_virtual_slot: int) -> None:
                nonlocal sent
                sent += num_bytes
                slot_index = last_virtual_slot // lanes
                deliver_ns = phase_start + (slot_index + 1) * slot_ns + propagation
                tracker.deliver(flow, num_bytes, deliver_ns)
                self._record_bandwidth(src, dst, num_bytes, deliver_ns)

            queue.drain_slots(
                num_slots=timing.scheduled_slots * lanes,
                payload_bytes=payload,
                slot_start_ns=lambda v: phase_start + (v // lanes) * slot_ns,
                deliver=deliver,
            )
            if sent:
                scheduler.observe_sent(src, dst, sent)
                self._phase_bytes[1] += sent
                self._queued_bytes -= sent
            pending = queue.pending_bytes
            if pending == 0:
                self._active_pairs.discard((src, dst))
            if pending <= self._request_threshold:
                self._request_ready.discard((src, dst))

    def _rx_usable(self, now_ns: float):
        """GRANT-side admission: detected failures plus buffer headroom.

        Returns None — "every port usable" — in the common unconstrained
        case so the matcher can skip per-port predicate calls entirely.
        """
        buffers = self._rx_buffers
        constrained = self.failures.any_detected
        detected_ok = self.failures.detected_ingress_ok if constrained else None
        if buffers is None:
            return detected_ok
        phase_bytes = self.timing.scheduled_slots * self.timing.data_payload_bytes
        if detected_ok is None:

            def usable(tor: int, port: int) -> bool:
                return buffers[tor].has_room(phase_bytes, now_ns)

        else:

            def usable(tor: int, port: int) -> bool:
                return detected_ok(tor, port) and buffers[tor].has_room(
                    phase_bytes, now_ns
                )

        return usable

    # ------------------------------------------------------------------
    # selective relay extension points (appendix A.2.2)
    # ------------------------------------------------------------------

    def _plan_relay(self, epoch: int, start_ns: float, matches: list[Match]):
        """Hook for the traffic-aware selective relay; the base engine never
        relays (all data is one-hop, section 3.5)."""
        return []

    def _run_relay_transmissions(
        self, assignments, matches: list[Match], start_ns: float
    ) -> None:
        """Execute planned first-hop relay transmissions on leftover links.

        An assignment is ``(src, port, intermediate, dst, max_bytes)``: the
        source forwards lowest-band data for ``dst`` to ``intermediate``
        through an otherwise idle port pair.  Assignments are dropped when
        the port pair turns out to be occupied by the accepted matching —
        direct traffic always has priority (appendix A.2.2, step 3).
        """
        timing = self.timing
        payload = timing.data_payload_bytes
        propagation = self.config.propagation_ns
        phase_start = start_ns + timing.predefined_ns
        slot_ns = timing.scheduled_slot_ns
        busy_tx = {(m.src, m.port) for m in matches}
        busy_rx = {(m.dst, m.port) for m in matches}
        failures = self.failures
        check = failures.any_failed
        lowest_band = self.config.num_priority_bands - 1

        for src, port, intermediate, dst, max_bytes in assignments:
            if (src, port) in busy_tx or (intermediate, port) in busy_rx:
                continue
            if check and not failures.transmission_ok(
                src, port, intermediate, port
            ):
                continue
            busy_tx.add((src, port))
            busy_rx.add((intermediate, port))
            queue = self._queues[src][dst]
            relay_queue = self._queues[intermediate][dst]
            slots = min(
                timing.scheduled_slots,
                max(1, max_bytes // payload),
            )
            moved = 0

            def hand_over(flow: Flow, num_bytes: int, last_slot: int) -> None:
                nonlocal moved
                moved += num_bytes
                arrival_ns = (
                    phase_start + (last_slot + 1) * slot_ns + propagation
                )
                relay_queue.enqueue_bytes(
                    flow, num_bytes, band=lowest_band, eligible_ns=arrival_ns
                )
                if self.bandwidth is not None:
                    self.bandwidth.record(
                        ("relay", intermediate), num_bytes, arrival_ns
                    )

            queue.drain_band_slots(
                band=lowest_band,
                num_slots=slots,
                payload_bytes=payload,
                slot_start_ns=lambda v: phase_start + v * slot_ns,
                deliver=hand_over,
            )
            if moved:
                # The bytes changed queues but stayed in the fabric, so the
                # total backlog counter is untouched; only the per-pair
                # demand flags move.
                inter_pair = (intermediate, dst)
                self._active_pairs.add(inter_pair)
                if relay_queue.pending_bytes > self._request_threshold:
                    self._request_ready.add(inter_pair)
                pending = queue.pending_bytes
                if pending == 0:
                    self._active_pairs.discard((src, dst))
                if pending <= self._request_threshold:
                    self._request_ready.discard((src, dst))

    def _record_bandwidth(
        self, src: int, dst: int, num_bytes: int, time_ns: float
    ) -> None:
        if self._rx_buffers is not None:
            self._rx_buffers[dst].add(num_bytes, time_ns)
        recorder = self.bandwidth
        if recorder is None:
            return
        recorder.record(("rx", dst), num_bytes, time_ns)
        if self._record_pairs:
            recorder.record(("pair", src, dst), num_bytes, time_ns)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def summary(self, duration_ns: float | None = None) -> RunSummary:
        """Headline metrics over ``duration_ns`` (default: simulated time).

        Works in both tracker modes: ``num_flows`` counts the flows that
        entered the fabric (equal to the trace size once the run has
        covered every arrival) in *both* modes, so a streaming re-run of a
        materialized workload matches field by field, and in streaming mode
        the mice FCT stats come from the online accumulators (see
        :meth:`FlowTracker.mice_fct_summary`).
        """
        duration = duration_ns if duration_ns is not None else self.now_ns
        mice_p99, mice_mean = self.tracker.mice_fct_summary(
            self.config.mice_threshold_bytes
        )
        return RunSummary(
            duration_ns=duration,
            epoch_ns=self.timing.epoch_ns,
            num_flows=self._source.popped,
            num_completed=self.tracker.num_completed,
            goodput_normalized=self.tracker.goodput_normalized(
                duration, self.config.host_aggregate_gbps
            ),
            goodput_gbps=self.tracker.goodput_gbps(duration),
            mice_fct_p99_ns=mice_p99,
            mice_fct_mean_ns=mice_mean,
        )
