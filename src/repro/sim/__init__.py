"""Simulation engines, queues, failures, and measurement instruments."""

from .adaptive import AdaptiveSimulator
from .config import (
    KB,
    MICE_THRESHOLD_BYTES,
    AdaptiveConfig,
    EpochConfig,
    EpochTiming,
    RotorConfig,
    SimConfig,
    epoch_config_for_reconfiguration_delay,
    epoch_config_without_piggyback,
    transmit_ns,
)
from .failures import (
    Direction,
    FailureEvent,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
    random_failure_plan,
)
from .flows import DEFAULT_RESERVOIR_SIZE, Flow, FlowTracker, ReservoirSampler
from .metrics import BandwidthRecorder, MatchRatioRecorder, RunSummary
from .buffers import ReceiverBuffer
from .network import NegotiaToRSimulator
from .observability import EpochStats, EpochStatsRecorder
from .oblivious import ObliviousSimulator
from .queues import PiasDestQueue, Segment
from .rotor import RotorSimulator
from .source import MaterializedFlowSource, StreamingFlowSource

__all__ = [
    "AdaptiveConfig",
    "AdaptiveSimulator",
    "BandwidthRecorder",
    "DEFAULT_RESERVOIR_SIZE",
    "Direction",
    "EpochConfig",
    "EpochTiming",
    "FailureEvent",
    "FailurePlan",
    "Flow",
    "FlowTracker",
    "KB",
    "LinkFailureModel",
    "LinkRef",
    "MICE_THRESHOLD_BYTES",
    "MatchRatioRecorder",
    "MaterializedFlowSource",
    "EpochStats",
    "EpochStatsRecorder",
    "NegotiaToRSimulator",
    "ReceiverBuffer",
    "ObliviousSimulator",
    "PiasDestQueue",
    "ReservoirSampler",
    "RotorConfig",
    "RotorSimulator",
    "RunSummary",
    "Segment",
    "SimConfig",
    "StreamingFlowSource",
    "epoch_config_for_reconfiguration_delay",
    "epoch_config_without_piggyback",
    "random_failure_plan",
    "transmit_ns",
]
