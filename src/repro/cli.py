"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show the available experiments and scales.
* ``run <experiment> [...]`` — regenerate one or more tables/figures and
  print the rendered results (``--jobs N`` parallelizes the spec-declared
  runs, ``--json`` emits structured output).  ``run --all --store PATH``
  reproduces the whole paper through one shared runner and result store:
  specs common to several figures execute once, and a repeated
  reproduction against the same store executes zero simulations.
* ``golden`` — verify every experiment's output digest against the
  baselines under tests/golden/ (``--record`` refreshes them after an
  intentional change).
* ``report`` — run a set of experiments and emit a markdown report
  (the generator behind EXPERIMENTS.md); ``--json`` emits the results as
  structured JSON instead.
* ``simulate`` — one-off simulation with headline metrics.
* ``sweep`` — run a grid of scenario x load x seed x system points through
  the sweep orchestrator: parallel fan-out (``--jobs``), a JSONL result
  store, and ``--resume`` to skip cached points (DESIGN.md section 8).
  Fault tolerance for unattended campaigns (DESIGN.md section 13):
  ``--timeout-s`` kills hung workers, ``--retries``/``--backoff-s`` retry
  failed specs with exponential backoff, and ``--on-error quarantine``
  records exhausted specs in a sidecar JSONL so the rest of the grid
  completes (exit 3 signals partial success).
* ``campaign`` — fleet campaigns over a shared store (DESIGN.md section
  17): ``run`` joins (or starts) a campaign as one worker — launched N
  times against the same store it converges on the serial digest, with
  expiring leases preventing duplicate work and ``--cache-from``
  importing finished rows from prior campaigns; ``status`` shows
  completion and live leases; ``merge`` folds stores together.
* ``store`` — integrity tooling for result stores over every backend
  (single-file JSONL, sharded directories, SQLite): ``verify`` checks
  every row's checksum and reports torn lines, ``compact`` atomically
  rewrites the store in canonical deduplicated form.
* ``bench`` — the engine hot-path benchmark suite behind BENCH_engine.json
  (DESIGN.md section 10); ``--profile`` prints per-phase wall-time
  breakdowns via the telemetry tracer.
* ``trace`` — analyze a telemetry JSONL captured with ``sweep
  --telemetry``: per-phase time shares, slowest specs, retry histograms,
  queue-depth percentiles (DESIGN.md section 14).

Examples::

    python -m repro list
    python -m repro run fig9 --scale tiny --jobs 4
    python -m repro run table2 fig14 efficiency
    python -m repro run --all --scale tiny --jobs 4 --store repro.jsonl
    python -m repro golden          # compare against tests/golden/
    python -m repro golden --record # refresh after an intentional change
    python -m repro report --scale small --output report.md
    python -m repro sweep --scale tiny --scenario poisson --scenario hotspot \\
        --jobs 4 --store sweep.jsonl
    python -m repro sweep --resume --store sweep.jsonl   # only new points run
    python -m repro sweep --scale tiny --jobs 8 --timeout-s 120 \\
        --retries 2 --on-error quarantine --store campaign.jsonl
    python -m repro campaign run --scale tiny --store fleet.db \\
        --retries 2 --on-error quarantine   # launch on N machines/shells
    python -m repro campaign run --store fleet.db --cache-from old.jsonl
    python -m repro campaign status fleet.db
    python -m repro campaign merge --into merged.db fleet.db old.jsonl
    python -m repro store verify campaign.jsonl --digest
    python -m repro store compact campaign.jsonl
    python -m repro bench --scenario sparse --fabric 64x8
    python -m repro bench --check 0.5   # fail if any scenario regressed 2x
    python -m repro sweep --scale tiny --jobs 4 --telemetry events.jsonl \\
        --progress --store campaign.jsonl
    python -m repro trace events.jsonl          # phase shares, retries, ETA
    python -m repro bench --profile --scenario incast --fabric 16x4
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments import EXPERIMENT_MODULES, SCALES, current_scale, load_experiment


CLI_BACKENDS = ("jsonl", "sharded", "sqlite")
"""Result-store backends selectable from the CLI (mirrors
:data:`repro.sweep.backends.BACKENDS`; spelled out here so building the
parser does not import the sweep package)."""


def _add_grid_args(parser: argparse.ArgumentParser) -> None:
    """The spec-grid axes shared by ``sweep`` and ``campaign run``."""
    parser.add_argument("--scale", choices=sorted(SCALES), default=None)
    parser.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="NAME[:k=v,...]",
        default=None,
        help="traffic scenario with optional parameter overrides "
        "(repeatable; default: poisson)",
    )
    parser.add_argument(
        "--system",
        action="append",
        dest="systems",
        metavar="SYSTEM",
        default=None,
        help="system to sweep: negotiator, oblivious, rotor, or adaptive "
        "(repeatable; default: negotiator)",
    )
    parser.add_argument(
        "--topology",
        action="append",
        dest="topologies",
        choices=["parallel", "thinclos"],
        default=None,
        help="fabric to sweep (repeatable; default: parallel)",
    )
    parser.add_argument(
        "--load",
        action="append",
        dest="loads",
        type=float,
        metavar="L",
        default=None,
        help="offered load (repeatable; default: the scale's load points)",
    )
    parser.add_argument(
        "--seed",
        action="append",
        dest="seeds",
        type=int,
        metavar="N",
        default=None,
        help="workload seed (repeatable; default: the scale's seed)",
    )
    parser.add_argument(
        "--scheduler",
        default="base",
        help="scheduler variant (base, iterative, data-size, hol-delay, "
        "stateful, projector)",
    )
    parser.add_argument("--duration-ms", type=float, default=None)
    parser.add_argument(
        "--no-pq", action="store_true", help="disable PIAS priority queues"
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="run specs through the streaming path: lazy workloads and a "
        "bounded-memory tracker (headline summaries only)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the spec grid and hashes without running anything",
    )


def _add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """Fault-tolerance flags shared by ``sweep`` and ``campaign run``."""
    parser.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="S",
        help="per-spec wall-clock deadline; a spec exceeding it has its "
        "worker killed and counts as timed-out (enforced via the "
        "resilient worker pool, even with --jobs 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retries per spec after the first attempt, with exponential "
        "backoff and deterministic jitter (default 0: fail fast)",
    )
    parser.add_argument(
        "--backoff-s",
        type=float,
        default=0.1,
        metavar="S",
        help="base backoff before the first retry; doubles per attempt "
        "(default 0.1)",
    )
    parser.add_argument(
        "--on-error",
        choices=["fail", "skip", "quarantine"],
        default="fail",
        help="what to do when a spec exhausts its attempts: abort the "
        "sweep (fail, default), drop the spec (skip), or record it in "
        "the quarantine sidecar so the rest of the grid completes "
        "(quarantine); with skip/quarantine a sweep that loses specs "
        "exits 3 (partial success)",
    )
    parser.add_argument(
        "--quarantine",
        default=None,
        metavar="PATH",
        help="quarantine sidecar JSONL (default: derived from the store "
        "path, backend-aware)",
    )


def _add_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Telemetry/progress flags shared by ``sweep`` and ``campaign run``."""
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream schema-versioned telemetry events (engine spans, "
        "counters, gauges, worker heartbeats, campaign lifecycle) to this "
        "JSONL file; analyze it afterwards with 'repro trace'",
    )
    parser.add_argument(
        "--telemetry-cadence-us",
        type=float,
        default=50.0,
        metavar="US",
        help="sim-time gauge sampling cadence in microseconds "
        "(default 50)",
    )
    parser.add_argument(
        "--progress",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="live progress/ETA line on stderr (default: on when stderr "
        "is a TTY)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NegotiaToR (SIGCOMM 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENT_MODULES))}",
    )
    run.add_argument(
        "--all",
        action="store_true",
        help="reproduce every experiment (specs shared between experiments "
        "execute once)",
    )
    run.add_argument("--scale", choices=sorted(SCALES), default=None)
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes for spec-declared experiments "
        "(default 1: serial, the reference behavior)",
    )
    run.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="JSONL result store shared across experiments; implies resume, "
        "so a repeated reproduction executes zero simulations",
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="emit results as structured JSON instead of rendered tables",
    )

    report = sub.add_parser("report", help="emit a markdown report")
    report.add_argument("--scale", choices=sorted(SCALES), default=None)
    report.add_argument(
        "--experiments",
        nargs="*",
        metavar="EXPERIMENT",
        default=None,
        help="subset to include (default: all)",
    )
    report.add_argument("--output", default=None, help="file (default stdout)")
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the results as structured JSON instead of markdown",
    )

    sweep = sub.add_parser(
        "sweep", help="run a spec grid with fan-out, caching, and resume"
    )
    _add_grid_args(sweep)
    sweep.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (default 1: serial)",
    )
    sweep.add_argument(
        "--store",
        default="sweep_results.jsonl",
        help="JSONL result store (default: sweep_results.jsonl)",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="skip specs whose hash already has a stored summary",
    )
    _add_resilience_args(sweep)
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit per-spec results as JSON instead of a table",
    )
    sweep.add_argument(
        "--list-scenarios",
        action="store_true",
        help="list registered scenarios and their parameters, then exit",
    )
    _add_telemetry_args(sweep)

    campaign = sub.add_parser(
        "campaign",
        help="fleet campaigns: N independent workers drain one grid into "
        "one shared store via expiring leases",
    )
    campaign_sub = campaign.add_subparsers(
        dest="campaign_command", required=True
    )
    campaign_run = campaign_sub.add_parser(
        "run",
        help="join (or start) a campaign as one worker; launching this N "
        "times against the same store converges on the serial result",
    )
    _add_grid_args(campaign_run)
    campaign_run.add_argument(
        "--store",
        required=True,
        metavar="PATH",
        help="the shared result store every worker writes to (.db/.sqlite "
        "for SQLite, a directory for sharded JSONL, anything else for "
        "single-file JSONL)",
    )
    campaign_run.add_argument(
        "--backend",
        choices=CLI_BACKENDS,
        default=None,
        help="store backend (default: auto-detected from the path)",
    )
    campaign_run.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count when creating a new sharded store (default 16; "
        "existing stores keep their on-disk count)",
    )
    campaign_run.add_argument(
        "--cache-from",
        action="append",
        dest="cache_from",
        metavar="PATH",
        default=None,
        help="prior result store (any backend) to import finished grid "
        "specs from before executing anything (repeatable; earlier "
        "stores win)",
    )
    campaign_run.add_argument(
        "--worker-id",
        default=None,
        metavar="ID",
        help="this worker's identity in leases, heartbeats, and the "
        "manifest (default: host-pid)",
    )
    campaign_run.add_argument(
        "--lease-ttl-s",
        type=float,
        default=60.0,
        metavar="S",
        help="lease lifetime; renewed while a spec runs, so it only "
        "expires when a worker dies (default 60; serial runs renew at "
        "attempt boundaries, so keep it above the slowest spec)",
    )
    campaign_run.add_argument(
        "--lease-batch",
        type=int,
        default=8,
        metavar="N",
        help="specs leased per claim round (default 8; smaller spreads "
        "work more evenly, larger claims less often)",
    )
    campaign_run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes within this campaign worker "
        "(default 1: serial)",
    )
    _add_resilience_args(campaign_run)
    _add_telemetry_args(campaign_run)
    campaign_run.add_argument(
        "--json",
        action="store_true",
        help="emit the campaign report as JSON",
    )
    campaign_status_p = campaign_sub.add_parser(
        "status",
        help="completion counts, content digest, and live leases of a "
        "campaign store",
    )
    campaign_status_p.add_argument("path", help="campaign result store")
    campaign_status_p.add_argument(
        "--json", action="store_true", help="emit the status as JSON"
    )
    campaign_merge = campaign_sub.add_parser(
        "merge",
        help="fold stores together: rows absent from the destination are "
        "appended, first source wins, idempotent",
    )
    campaign_merge.add_argument(
        "sources", nargs="+", metavar="SRC", help="source stores (any backend)"
    )
    campaign_merge.add_argument(
        "--into",
        required=True,
        metavar="DST",
        help="destination store (created if missing)",
    )
    campaign_merge.add_argument(
        "--backend",
        choices=CLI_BACKENDS,
        default=None,
        help="destination backend (default: auto-detected from the path)",
    )
    campaign_merge.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="shard count when creating a new sharded destination",
    )

    store = sub.add_parser(
        "store",
        help="inspect and maintain result stores (any backend)",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_verify = store_sub.add_parser(
        "verify",
        help="integrity-check every row (checksums, torn lines, backend "
        "invariants); exits non-zero on corruption",
    )
    store_verify.add_argument(
        "path", help="result store (JSONL file, sharded dir, or SQLite)"
    )
    store_verify.add_argument(
        "--digest",
        action="store_true",
        help="also print the store's order/timing-independent content "
        "digest (what resume-convergence is asserted against)",
    )
    store_compact = store_sub.add_parser(
        "compact",
        help="atomically rewrite the store in canonical form: last row "
        "per hash, sorted, checksummed, torn lines dropped",
    )
    store_compact.add_argument(
        "path", help="result store (JSONL file, sharded dir, or SQLite)"
    )
    for store_cmd in (store_verify, store_compact):
        store_cmd.add_argument(
            "--backend",
            choices=CLI_BACKENDS,
            default=None,
            help="store backend (default: auto-detected from the path)",
        )
        store_cmd.add_argument(
            "--shards",
            type=int,
            default=None,
            metavar="N",
            help="shard count for sharded stores (default: the on-disk "
            "count)",
        )

    golden = sub.add_parser(
        "golden",
        help="verify (or --record) the golden-baseline digests under "
        "tests/golden/",
    )
    golden.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="subset to check/record (default: all)",
    )
    golden.add_argument(
        "--record",
        action="store_true",
        help="re-record the baselines instead of verifying them",
    )
    golden.add_argument(
        "--golden-dir",
        default="tests/golden",
        help="baseline directory (default: tests/golden)",
    )
    golden.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default=None,
        help="scale to run at (default: micro, the recorded scale)",
    )
    golden.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel worker processes (default 1)",
    )
    golden.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="persist every computed summary to this JSONL store "
        "(resumable, and verifiable with 'repro store verify')",
    )

    simulate = sub.add_parser(
        "simulate", help="one-off simulation with headline metrics"
    )
    simulate.add_argument(
        "--system",
        metavar="SYSTEM",
        default="negotiator",
        help="system to simulate: negotiator, oblivious, rotor, or "
        "adaptive (default: negotiator)",
    )
    simulate.add_argument(
        "--topology", choices=["parallel", "thinclos"], default="parallel"
    )
    simulate.add_argument("--scale", choices=sorted(SCALES), default=None)
    simulate.add_argument("--load", type=float, default=0.5)
    simulate.add_argument(
        "--trace",
        default="hadoop",
        help="flow-size trace: hadoop, websearch, or google",
    )
    simulate.add_argument(
        "--duration-ms", type=float, default=None, help="simulated time"
    )
    simulate.add_argument(
        "--workload-file",
        default=None,
        help="replay a CSV workload instead of generating one",
    )
    simulate.add_argument(
        "--no-pq", action="store_true", help="disable PIAS priority queues"
    )
    simulate.add_argument("--seed", type=int, default=None)

    bench = sub.add_parser(
        "bench",
        help="run the engine hot-path benchmark suite (or, with --scale, "
        "the streaming million-flow scale benchmark)",
    )
    bench.add_argument(
        "--scale",
        action="store_true",
        help="run the streaming scale benchmark (heavy-poisson flows pulled "
        "lazily through the bounded-memory engine) instead of the "
        "hot-path suite, tracking BENCH_scale.json",
    )
    bench.add_argument(
        "--flows",
        type=int,
        default=None,
        metavar="N",
        help="scale-bench trace size in flows (default 1,000,000)",
    )
    bench.add_argument(
        "--engine",
        metavar="ENGINE",
        default=None,
        help="scale-bench engine under test: negotiator (default), rotor "
        "(the RotorNet-style baseline on thin-clos), or adaptive (the "
        "demand-aware baseline on thin-clos)",
    )
    bench.add_argument(
        "--scale-load",
        type=float,
        default=None,
        metavar="L",
        help="scale-bench offered load (default 0.5)",
    )
    bench.add_argument(
        "--scale-file",
        default="BENCH_scale.json",
        help="tracked scale baseline file (default: BENCH_scale.json)",
    )
    bench.add_argument(
        "--budget-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="exit non-zero if the scale run exceeds this wall-clock budget",
    )
    bench.add_argument(
        "--scenario",
        action="append",
        dest="scenarios",
        metavar="SCENARIO",
        default=None,
        help="scenario to run (repeatable; default: all)",
    )
    bench.add_argument(
        "--fabric",
        action="append",
        dest="fabrics",
        metavar="TORSxPORTS",
        default=None,
        help="fabric to run, e.g. 64x8 (repeatable; default: 16x4 64x8 "
        "128x8 — with --scale: one fabric, default 8x2)",
    )
    bench.add_argument(
        "--no-fast-forward",
        action="store_true",
        help="disable idle-epoch fast-forward for this run",
    )
    bench.add_argument(
        "--core",
        choices=["scalar", "vectorized"],
        default=None,
        help="engine core override for this run (default: SimConfig "
        "default, or the REPRO_CORE environment variable)",
    )
    bench.add_argument(
        "--bench-file",
        default="BENCH_engine.json",
        help="tracked baseline file (default: BENCH_engine.json)",
    )
    bench.add_argument(
        "--update-baseline",
        action="store_true",
        help="record this run as the baseline in the bench file",
    )
    bench.add_argument(
        "--record",
        action="store_true",
        help="record this run as 'current' (and its vs-baseline speedup)",
    )
    bench.add_argument(
        "--check",
        type=float,
        default=None,
        metavar="RATIO",
        help="exit non-zero if any scenario runs slower than RATIO x baseline",
    )
    bench.add_argument(
        "--profile",
        action="store_true",
        help="trace the hot-path run and print a per-phase wall-time "
        "breakdown per scenario (not comparable to recorded baselines)",
    )

    trace = sub.add_parser(
        "trace",
        help="analyze a telemetry JSONL file from 'sweep --telemetry'",
    )
    trace.add_argument("path", help="telemetry events JSONL file")
    trace.add_argument(
        "--json",
        action="store_true",
        help="emit the analysis as structured JSON",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=5,
        metavar="N",
        help="how many slowest specs to report (default 5)",
    )
    trace.add_argument(
        "--validate",
        action="store_true",
        help="strictly validate every event against the schema; exit 1 "
        "on any violation or torn line",
    )
    return parser


def resolve_scale(name: str | None):
    """Scale object from a CLI flag, falling back to REPRO_SCALE."""
    if name is None:
        return current_scale()
    return SCALES[name]


CLI_SYSTEMS = ("adaptive", "negotiator", "oblivious", "rotor")
"""Systems runnable from the CLI.  The spec-level registry
(:data:`repro.sweep.spec.SYSTEMS`) additionally holds ``relay``, which has
no CLI entry point."""


def _reject_unknown(names, registry, kind: str) -> bool:
    """Report names missing from a registry; True when any was unknown.

    The single home of the CLI's unknown-name diagnostics: every command
    that validates user-supplied experiment/scenario/system names goes
    through here, so all of them emit the identical exit-2 message shape
    (the same shape spec validation raises — see
    :func:`repro.sweep.spec.unknown_name_message`).
    """
    from .sweep.spec import unknown_name_message

    unknown = [n for n in names if n not in registry]
    if not unknown:
        return False
    print(unknown_name_message(kind, unknown, registry), file=sys.stderr)
    return True


def cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENT_MODULES):
        print(f"  {name:<10} -> repro.experiments.{EXPERIMENT_MODULES[name]}")
    print("scales:")
    for scale in SCALES.values():
        print(
            f"  {scale.name:<6} {scale.num_tors} ToRs x "
            f"{scale.ports_per_tor} ports, {scale.duration_ns / 1e6:g} ms runs"
        )
    return 0


def cmd_run(
    names: list[str],
    scale_name: str | None,
    jobs: int = 1,
    as_json: bool = False,
    run_all: bool = False,
    store_path: str | None = None,
) -> int:
    from . import golden
    from .sweep import ResultStore, SweepRunner

    if jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if run_all:
        if names:
            print("--all replaces the experiment list", file=sys.stderr)
            return 2
        names = sorted(EXPERIMENT_MODULES)
    elif not names:
        print(
            "name at least one experiment, or pass --all",
            file=sys.stderr,
        )
        return 2
    scale = resolve_scale(scale_name)
    if _reject_unknown(names, EXPERIMENT_MODULES, "experiment"):
        return 2
    store = ResultStore(store_path) if store_path is not None else None
    # One runner for every experiment: specs common to several figures
    # execute once (in-memory memo), and a store makes the whole
    # reproduction resumable — a second run is a pure cache hit.
    runner = SweepRunner(jobs=jobs, store=store, resume=store is not None)
    results = []
    for name in names:
        result = golden.compute_result(name, scale, runner=runner)
        results.append(result)
        if not as_json:
            print(result.render())
            print()
    if as_json:
        payload = {
            "scale": scale.name,
            "results": [result.to_dict() for result in results],
        }
        print(json.dumps(payload, indent=2))
    status = sys.stderr if as_json else sys.stdout
    print(
        f"{runner.executed} simulations executed, {runner.cached} cached",
        file=status,
    )
    # Staleness (stored hashes the grid never requested) is only
    # meaningful when the runner saw the *full* grid; a subset run would
    # flag every other experiment's perfectly valid rows.
    if store is not None and run_all:
        stale = len(runner.stale_stored_hashes())
        if stale:
            print(
                f"{stale} stored rows ignored (stale spec hashes)",
                file=status,
            )
    return 0


def cmd_golden(args) -> int:
    from . import golden
    from .sweep import ResultStore, SweepRunner

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    scale = SCALES[args.scale] if args.scale else SCALES[golden.GOLDEN_SCALE]
    names = args.experiments or golden.experiment_names()
    if _reject_unknown(names, EXPERIMENT_MODULES, "experiment"):
        return 2
    if args.scale and args.scale != golden.GOLDEN_SCALE:
        if args.record:
            # Recording at another scale would write baselines the test
            # suite (which always verifies at the golden scale) can never
            # match, while labeling them with the recorded scale.
            print(
                f"--record only makes sense at the {golden.GOLDEN_SCALE} "
                "scale the test suite verifies against; drop --scale",
                file=sys.stderr,
            )
            return 2
        print(
            f"note: baselines are recorded at {golden.GOLDEN_SCALE}; "
            f"digests at {args.scale} will not match them",
            file=sys.stderr,
        )
    store = ResultStore(args.store) if args.store else None
    runner = SweepRunner(jobs=args.jobs, store=store, resume=store is not None)
    failures = 0
    for name in names:
        result = golden.compute_result(name, scale, runner=runner)
        if args.record:
            digest = golden.record_golden(args.golden_dir, name, result)
            print(f"recorded {name}: {digest[:12]}")
            continue
        check = golden.check_golden(args.golden_dir, name, result)
        if check.expected is None:
            print(f"MISSING  {name}: no baseline (run with --record)")
            failures += 1
        elif check.ok:
            print(f"ok       {name}: {check.digest[:12]}")
        else:
            print(
                f"MISMATCH {name}: got {check.digest[:12]}, "
                f"expected {check.expected[:12]}"
            )
            failures += 1
    if failures:
        print(
            f"{failures} experiment(s) diverged from tests/golden/ — "
            "re-record with 'python -m repro golden --record' if intended",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(
    names: list[str] | None,
    scale_name: str | None,
    output: str | None,
    as_json: bool = False,
) -> int:
    from .analysis.report import build_report, run_experiments

    scale = resolve_scale(scale_name)
    results = run_experiments(names, scale, verbose=output is not None)
    if as_json:
        payload = {
            "scale": scale.name,
            "results": {
                name: result.to_dict() for name, result in results.items()
            },
        }
        text = json.dumps(payload, indent=2)
    else:
        text = build_report(results, scale)
    if output is None:
        print(text)
    else:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    return 0


def _parse_scenario_arg(arg: str) -> tuple[str, dict]:
    """Parse ``name[:k=v,...]`` into a scenario name and overrides."""
    name, _, tail = arg.partition(":")
    params: dict = {}
    if tail:
        for item in tail.split(","):
            key, sep, raw = item.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"bad scenario parameter {item!r} (expected k=v)"
                )
            params[key] = _parse_scalar(raw)
    return name, params


def _parse_scalar(raw: str):
    for cast in (int, float):
        try:
            return cast(raw)
        except ValueError:
            pass
    if raw.lower() in ("true", "false"):
        return raw.lower() == "true"
    return raw


def _build_specs(args, scale):
    """The deduped spec grid for ``sweep``/``campaign run`` arguments.

    Returns None (after printing the diagnostic) when any argument is
    invalid — callers exit 2.
    """
    from .sweep import SCENARIOS, RunSpec, system_spec_fields

    try:
        scenarios = [
            _parse_scenario_arg(s) for s in (args.scenarios or ["poisson"])
        ]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return None
    if _reject_unknown([name for name, _ in scenarios], SCENARIOS, "scenario"):
        return None
    # Resolve parameter overrides up front: --dry-run approves only grids
    # the real run would accept, workers never see bad params, and the
    # specs carry the *resolved* params so their hashes stay valid even if
    # a scenario's registered defaults change later.
    resolved_scenarios = []
    for name, overrides in scenarios:
        try:
            resolved_scenarios.append(
                (name, SCENARIOS[name].resolve_params(overrides))
            )
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return None
    systems = args.systems or ["negotiator"]
    if _reject_unknown(systems, CLI_SYSTEMS, "system"):
        return None
    topologies = args.topologies or ["parallel"]
    loads = args.loads or list(scale.loads)
    seeds = args.seeds or [scale.seed]
    duration_ns = (
        args.duration_ms * 1e6 if args.duration_ms is not None else None
    )

    specs = []
    seen_hashes: set[str] = set()
    try:
        for scenario_name, params in resolved_scenarios:
            # Synchronous scenarios inject at fixed instants and ignore the
            # load axis — one point instead of len(loads) identical runs.
            point_loads = (
                [1.0] if SCENARIOS[scenario_name].synchronous else loads
            )
            for system in systems:
                for topology in topologies:
                    # The oblivious, rotor, and adaptive baselines only
                    # run on thin-clos (their schedules need the AWGR
                    # structure), whatever the --topology axis says;
                    # duplicates dedupe below.
                    fields = (
                        system_spec_fields(system)
                        if system in ("adaptive", "oblivious", "rotor")
                        else {"system": system, "topology": topology}
                    )
                    for load in point_loads:
                        for seed in seeds:
                            spec = RunSpec(
                                scale=scale.name,
                                **fields,
                                scheduler=args.scheduler,
                                scenario=scenario_name,
                                scenario_params=params,
                                load=load,
                                seed=seed,
                                duration_ns=duration_ns,
                                priority_queue=not args.no_pq,
                                stream=args.stream,
                            )
                            if spec.content_hash not in seen_hashes:
                                seen_hashes.add(spec.content_hash)
                                specs.append(spec)
    except (TypeError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return None
    return specs


def cmd_sweep(args) -> int:
    from .sweep import SCENARIOS, ResultStore, SweepRunner

    if args.list_scenarios:
        print("scenarios:")
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            params = ", ".join(
                f"{k}={v}" for k, v in sorted(scenario.defaults.items())
            )
            sync = " [synchronous]" if scenario.synchronous else ""
            print(f"  {name:<15} {scenario.description}{sync}")
            if params:
                print(f"  {'':<15} params: {params}")
        return 0

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    scale = resolve_scale(args.scale)
    specs = _build_specs(args, scale)
    if specs is None:
        return 2

    if args.dry_run:
        for spec in specs:
            print(f"{spec.short_hash}  {spec.label()}")
        print(f"{len(specs)} specs")
        return 0

    from .sweep import RetryPolicy, SweepExecutionError

    if args.retries < 0:
        print("--retries must be non-negative", file=sys.stderr)
        return 2
    if args.telemetry_cadence_us <= 0:
        print("--telemetry-cadence-us must be positive", file=sys.stderr)
        return 2
    # Default: live progress only when someone is watching stderr.
    progress = (
        args.progress if args.progress is not None else sys.stderr.isatty()
    )
    store = ResultStore(args.store)
    try:
        runner = SweepRunner(
            jobs=args.jobs,
            store=store,
            resume=args.resume,
            # Logs go to stderr, so verbose no longer corrupts --json stdout.
            verbose=True,
            timeout_s=args.timeout_s,
            retry=RetryPolicy(
                max_attempts=args.retries + 1,
                backoff_base_s=args.backoff_s,
            ),
            on_error=args.on_error,
            quarantine=args.quarantine,
            telemetry=args.telemetry,
            telemetry_cadence_ns=int(args.telemetry_cadence_us * 1000),
            progress=progress,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        summaries = runner.run(specs)
    except (ValueError, SweepExecutionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — {runner.executed} completed run(s) are in "
            f"{args.store}; rerun with --resume to execute only the rest",
            file=sys.stderr,
        )
        return 130

    failed = sorted(runner.failed_hashes())
    manifest_path = None
    if runner.telemetry_path is not None:
        from pathlib import Path

        from .telemetry import default_manifest_path, write_manifest

        manifest_path = default_manifest_path(Path(args.store))
        write_manifest(manifest_path, runner.build_manifest())
    if args.json:
        rows = []
        for spec in specs:
            if spec.content_hash not in summaries:
                continue
            outcome = runner.outcomes.get(spec.content_hash)
            rows.append(
                {
                    "spec_hash": spec.content_hash,
                    "spec": spec.to_dict(),
                    "summary": summaries[spec.content_hash].to_dict(),
                    "cached": spec.content_hash in runner.cached_hashes,
                    "attempts": outcome.attempts if outcome else 0,
                    "attempt_statuses": (
                        list(outcome.attempt_statuses) if outcome else []
                    ),
                }
            )
        payload = {
            "scale": scale.name,
            "runs": rows,
            "totals": {
                "specs": len(specs),
                "executed": runner.executed,
                "cached": runner.cached,
                "retried": sum(
                    1 for o in runner.outcomes.values() if o.attempts > 1
                ),
                "quarantined": len(runner.quarantined_hashes()),
                "failed": len(failed),
            },
        }
        if failed:
            payload["failures"] = [
                runner.outcomes[spec_hash].to_dict() for spec_hash in failed
            ]
        print(json.dumps(payload, indent=2))
    else:
        header = (
            f"{'hash':<12}  {'scenario':<14}  {'system':<10}  "
            f"{'topology':<8}  {'load':>5}  {'seed':>6}  {'flows':>7}  "
            f"{'done':>7}  {'gput':>6}  {'p99 mice (us)':>13}"
        )
        print(header)
        print("-" * len(header))
        for spec in specs:
            summary = summaries.get(spec.content_hash)
            if summary is None:
                outcome = runner.outcomes.get(spec.content_hash)
                verdict = outcome.status if outcome else "missing"
                print(
                    f"{spec.short_hash:<12}  {spec.scenario:<14}  "
                    f"{spec.system:<10}  {spec.topology:<8}  "
                    f"{spec.load:>5.2f}  {spec.seed:>6}  "
                    f"{'— ' + verdict + ' —':^40}"
                )
                continue
            fct = (
                f"{summary.mice_fct_p99_ns / 1e3:.1f}"
                if summary.mice_fct_p99_ns is not None
                else "n/a"
            )
            print(
                f"{spec.short_hash:<12}  {spec.scenario:<14}  "
                f"{spec.system:<10}  {spec.topology:<8}  "
                f"{spec.load:>5.2f}  {spec.seed:>6}  "
                f"{summary.num_flows:>7}  {summary.num_completed:>7}  "
                f"{summary.goodput_normalized:>6.3f}  {fct:>13}"
            )
    status = sys.stderr if args.json else sys.stdout
    print(
        f"{len(specs)} specs: {runner.executed} executed, "
        f"{runner.cached} cached (store: {args.store})",
        file=status,
    )
    if manifest_path is not None:
        print(
            f"telemetry: {runner.telemetry_path} "
            f"(manifest: {manifest_path})",
            file=status,
        )
    if failed:
        where = (
            f" (quarantined to {runner.quarantine.path})"
            if runner.quarantine is not None
            else ""
        )
        print(
            f"{len(failed)} spec(s) failed after retries{where}; "
            "the rest of the grid completed",
            file=status,
        )
    if args.resume:
        stale = len(runner.stale_stored_hashes())
        if stale:
            print(
                f"{stale} stored rows ignored (stale spec hashes — the "
                "store holds results for specs this grid no longer "
                "requests; 'compact' keeps them, delete the store to drop "
                "them)",
                file=status,
            )
    # Partial success (some specs lost to skip/quarantine) is exit 3, so
    # campaign drivers can tell "grid complete" from "grid degraded".
    return 3 if failed else 0


def cmd_campaign(args) -> int:
    if args.campaign_command == "run":
        return _cmd_campaign_run(args)
    if args.campaign_command == "status":
        return _cmd_campaign_status(args)
    return _cmd_campaign_merge(args)


def _cmd_campaign_run(args) -> int:
    from pathlib import Path

    from .sweep import (
        ResultStore,
        RetryPolicy,
        SweepExecutionError,
        default_worker_id,
        run_campaign,
    )

    if args.jobs < 1:
        print("--jobs must be at least 1", file=sys.stderr)
        return 2
    if args.retries < 0:
        print("--retries must be non-negative", file=sys.stderr)
        return 2
    if args.telemetry_cadence_us <= 0:
        print("--telemetry-cadence-us must be positive", file=sys.stderr)
        return 2
    if args.lease_ttl_s <= 0:
        print("--lease-ttl-s must be positive", file=sys.stderr)
        return 2
    if args.lease_batch < 1:
        print("--lease-batch must be at least 1", file=sys.stderr)
        return 2
    scale = resolve_scale(args.scale)
    specs = _build_specs(args, scale)
    if specs is None:
        return 2
    if args.dry_run:
        for spec in specs:
            print(f"{spec.short_hash}  {spec.label()}")
        print(f"{len(specs)} specs")
        return 0

    cache_from = []
    for path in args.cache_from or []:
        if not Path(path).exists():
            print(f"no such cache store: {path}", file=sys.stderr)
            return 2
        cache_from.append(ResultStore(path))
    try:
        store = ResultStore(
            args.store, backend=args.backend, shards=args.shards
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    worker = args.worker_id if args.worker_id else default_worker_id()
    progress = (
        args.progress if args.progress is not None else sys.stderr.isatty()
    )
    try:
        report = run_campaign(
            specs,
            store,
            worker=worker,
            lease_ttl_s=args.lease_ttl_s,
            lease_batch=args.lease_batch,
            cache_from=cache_from,
            jobs=args.jobs,
            verbose=True,
            timeout_s=args.timeout_s,
            retry=RetryPolicy(
                max_attempts=args.retries + 1,
                backoff_base_s=args.backoff_s,
            ),
            on_error=args.on_error,
            quarantine=args.quarantine,
            telemetry=args.telemetry,
            telemetry_cadence_ns=int(args.telemetry_cadence_us * 1000),
            progress=progress,
        )
    except (ValueError, SweepExecutionError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print(
            f"\ninterrupted — completed runs are already in {args.store}; "
            f"this worker's leases expire within {args.lease_ttl_s:g}s, "
            "after which peers (or a relaunch) pick up the rest",
            file=sys.stderr,
        )
        return 130

    if args.json:
        payload = report.to_dict()
        payload["store"] = args.store
        payload["content_digest"] = store.content_digest()
        print(json.dumps(payload, indent=2))
    else:
        imported = (
            f" ({report.imported} imported from cache)"
            if report.imported
            else ""
        )
        print(
            f"worker {report.worker}: {report.total} specs — "
            f"{report.executed} executed, "
            f"{report.cached} already done{imported}, "
            f"{report.done_elsewhere} finished by peers, "
            f"{report.failed} failed, {report.rounds} lease round(s)"
        )
        print(f"store: {args.store} (digest {store.content_digest()})")
        if report.manifest_path is not None:
            print(f"manifest: {report.manifest_path}")
    return 3 if report.failed else 0


def _cmd_campaign_status(args) -> int:
    from pathlib import Path

    from .sweep import ResultStore, campaign_status

    if not Path(args.path).exists():
        print(f"no such store: {args.path}", file=sys.stderr)
        return 2
    status = campaign_status(ResultStore(args.path))
    if args.json:
        print(json.dumps(status, indent=2))
        return 0
    print(
        f"{status['store']} ({status['backend']}): "
        f"{status['completed']} completed spec(s)"
    )
    if status["content_digest"] is not None:
        print(f"content digest: {status['content_digest']}")
    leases = status["active_leases"]
    if leases:
        print(f"{len(leases)} active lease(s):")
        for spec_hash, info in leases.items():
            print(
                f"  {spec_hash[:12]}  held by {info['owner']}, "
                f"expires in {info['expires_in_s']:.1f}s"
            )
    else:
        print("no active leases")
    return 0


def _cmd_campaign_merge(args) -> int:
    from pathlib import Path

    from .sweep import ResultStore

    sources = []
    for path in args.sources:
        if not Path(path).exists():
            print(f"no such store: {path}", file=sys.stderr)
            return 2
        sources.append(ResultStore(path))
    try:
        destination = ResultStore(
            args.into, backend=args.backend, shards=args.shards
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    appended = destination.merge(sources)
    print(
        f"merged {appended} new row(s) into {args.into} "
        f"from {len(sources)} store(s)"
    )
    print(f"content digest: {destination.content_digest()}")
    return 0


def _store_size_bytes(path) -> int:
    """On-disk footprint of a store path (a file, or a sharded dir)."""
    if path.is_dir():
        return sum(
            child.stat().st_size
            for child in path.rglob("*")
            if child.is_file()
        )
    try:
        return path.stat().st_size
    except FileNotFoundError:
        return 0


def cmd_store(args) -> int:
    from pathlib import Path

    from .sweep import ResultStore

    if not Path(args.path).exists():
        print(f"no such store: {args.path}", file=sys.stderr)
        return 2
    try:
        store = ResultStore(
            args.path, backend=args.backend, shards=args.shards
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    if args.store_command == "compact":
        before = _store_size_bytes(Path(args.path))
        dropped = store.compact()
        after = _store_size_bytes(Path(args.path))
        print(
            f"compacted {args.path}: {dropped} row(s) dropped, "
            f"{before - after} bytes reclaimed, "
            f"{len(store.rows())} row(s) kept"
        )
        return 0

    report = store.verify()
    print(f"{args.path}: {report.lines} line(s), {report.rows} valid row(s), "
          f"{report.unique_hashes} unique spec(s)")
    if report.legacy_rows:
        print(
            f"  {report.legacy_rows} legacy row(s) without checksums "
            "(run 'repro store compact' to upgrade)"
        )
    for problem in report.problems:
        print(f"  BAD {problem}")
    if args.digest:
        print(f"content digest: {store.content_digest()}")
    if not report.ok:
        print(
            f"{report.torn_lines} torn line(s), "
            f"{report.checksum_mismatches} checksum mismatch(es) — "
            "affected runs will re-execute on --resume; "
            "'repro store compact' drops the bad lines",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_simulate(args) -> int:
    import random

    from .experiments.common import (
        run_adaptive,
        run_negotiator,
        run_oblivious,
        run_rotor,
        sim_config,
    )
    from .workloads import by_name, poisson_workload, trace_io

    if _reject_unknown([args.system], CLI_SYSTEMS, "system"):
        return 2
    scale = resolve_scale(args.scale)
    duration_ns = (
        args.duration_ms * 1e6 if args.duration_ms is not None
        else scale.duration_ns
    )
    config = sim_config(scale, priority_queue_enabled=not args.no_pq)
    if args.seed is not None:
        import dataclasses

        config = dataclasses.replace(config, seed=args.seed)

    if args.workload_file is not None:
        flows = trace_io.load(args.workload_file)
        trace_io.validate_for_fabric(flows, config.num_tors)
    else:
        distribution = by_name(args.trace)
        if scale.max_flow_bytes is not None:
            distribution = distribution.truncated(scale.max_flow_bytes)
        flows = poisson_workload(
            distribution,
            args.load,
            config.num_tors,
            config.host_aggregate_gbps,
            duration_ns,
            random.Random(config.seed),
        )

    run = {
        "oblivious": run_oblivious,
        "rotor": run_rotor,
        "adaptive": run_adaptive,
    }.get(args.system, run_negotiator)
    summary = run(
        scale, args.topology, flows, duration_ns=duration_ns, config=config
    ).summary

    print(f"system    : {args.system} on {args.topology} "
          f"({config.num_tors} ToRs x {config.ports_per_tor} ports)")
    print(f"workload  : {summary.num_flows} flows over "
          f"{duration_ns / 1e6:g} ms "
          f"({args.workload_file or args.trace + f' @ {args.load:.0%}'})")
    print(f"completed : {summary.num_completed}/{summary.num_flows}")
    print(f"goodput   : {summary.goodput_normalized:.3f} normalized "
          f"({summary.goodput_gbps:.0f} Gbps network-wide)")
    if summary.mice_fct_p99_ns is not None:
        print(f"mice FCT  : p99 {summary.mice_fct_p99_ns / 1e3:.1f} us, "
              f"mean {summary.mice_fct_mean_ns / 1e3:.1f} us")
        if summary.mice_fct_p99_epochs is not None:
            print(f"          : p99 {summary.mice_fct_p99_epochs:.1f} epochs, "
                  f"mean {summary.mice_fct_mean_epochs:.1f} epochs")
    return 0


def cmd_bench_scale(args, fabrics) -> int:
    """The streaming million-flow scale benchmark (``bench --scale``)."""
    from . import perf, scalebench

    if fabrics and len(fabrics) > 1:
        print("--scale runs one fabric; pass a single --fabric",
              file=sys.stderr)
        return 2
    if args.scenarios:
        print("--scenario names hot-path suites; --scale always runs "
              "heavy-poisson", file=sys.stderr)
        return 2
    if args.bench_file != "BENCH_engine.json":
        print("--bench-file tracks the hot-path suite; with --scale use "
              "--scale-file", file=sys.stderr)
        return 2
    tors, ports = fabrics[0] if fabrics else (
        scalebench.DEFAULT_TORS, scalebench.DEFAULT_PORTS
    )
    try:
        result = scalebench.run_scale_bench(
            args.flows if args.flows is not None else scalebench.DEFAULT_FLOWS,
            tors,
            ports,
            load=(
                args.scale_load
                if args.scale_load is not None
                else scalebench.DEFAULT_LOAD
            ),
            fast_forward=not args.no_fast_forward,
            engine=args.engine or "negotiator",
            core=args.core,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(scalebench.format_result(result))
    if not result.completed:
        print("scale bench hit its simulated-time cap before all flows "
              "completed (overloaded point?)", file=sys.stderr)
        return 1

    bench = perf.BenchFile.load(args.scale_file)
    # --check compares against the baseline that existed when the run
    # started (--update-baseline must not blind it), while the recorded
    # speedup tracks the stored baseline — 1.0 when both are recorded in
    # one invocation, mirroring the hot-path suite.
    baseline_before = bench.entries.get(result.key, {}).get("baseline")
    dirty = False
    if args.update_baseline:
        bench.record_baseline(result)
        dirty = True
    if args.record:
        bench.record_current(result)
        # BenchFile derives speedup from epochs/sec (the hot-path metric);
        # the scale gate is flows/sec, so keep the recorded trajectory
        # consistent with what --check enforces.
        stored = bench.entries[result.key].get("baseline")
        if stored and stored.get("flows_per_sec"):
            bench.entries[result.key]["speedup"] = round(
                result.flows_per_sec / stored["flows_per_sec"], 3
            )
        dirty = True
    if dirty:
        bench.write()
        print(f"wrote {args.scale_file}")

    status = 0
    if args.budget_s is not None and result.wall_s > args.budget_s:
        print(
            f"scale bench blew its wall-clock budget: {result.wall_s:.1f}s "
            f"> {args.budget_s:g}s",
            file=sys.stderr,
        )
        status = 1
    if args.check is not None:
        if baseline_before is None:
            print(
                f"warning: no scale baseline for {result.key} "
                f"in {args.scale_file}; not checked",
                file=sys.stderr,
            )
        elif result.flows_per_sec < args.check * baseline_before["flows_per_sec"]:
            print(
                f"perf regression: {result.flows_per_sec:,.0f} flows/s < "
                f"{args.check:g} x baseline "
                f"{baseline_before['flows_per_sec']:,.0f}",
                file=sys.stderr,
            )
            status = 1
    return status


def cmd_bench(args) -> int:
    from . import perf

    fabrics = None
    if args.fabrics:
        fabrics = []
        for spec in args.fabrics:
            try:
                tors, ports = (int(part) for part in spec.lower().split("x"))
            except ValueError:
                print(f"bad fabric spec {spec!r} (expected TORSxPORTS)",
                      file=sys.stderr)
                return 2
            fabrics.append((tors, ports))
    if args.scale:
        if args.profile:
            print(
                "--profile only applies to the hot-path suite (not --scale)",
                file=sys.stderr,
            )
            return 2
        return cmd_bench_scale(args, fabrics)
    for flag, name in ((args.flows, "--flows"), (args.budget_s, "--budget-s"),
                       (args.scale_load, "--scale-load"),
                       (args.engine, "--engine")):
        if flag is not None:
            print(f"{name} only applies with --scale", file=sys.stderr)
            return 2
    if args.scale_file != "BENCH_scale.json":
        print("--scale-file only applies with --scale", file=sys.stderr)
        return 2
    if _reject_unknown(args.scenarios or [], perf.SCENARIOS, "scenario"):
        return 2
    if args.profile and (
        args.record or args.update_baseline or args.check is not None
    ):
        print(
            "--profile runs are not comparable to baselines; drop "
            "--record/--update-baseline/--check",
            file=sys.stderr,
        )
        return 2

    bench = perf.BenchFile.load(args.bench_file)
    if args.profile:
        return _bench_profile(args, bench, fabrics)
    results = perf.run_suite(
        args.scenarios,
        fabrics,
        fast_forward=not args.no_fast_forward,
        core=args.core,
    )
    print(perf.format_results(results, bench))
    # Snapshot before any recording so --check compares against the
    # baseline that existed when the run started, not one this invocation
    # just overwrote.
    baseline_before = {r.key: bench.baseline_eps(r.key) for r in results}

    dirty = False
    for result in results:
        if args.update_baseline:
            bench.record_baseline(result)
            dirty = True
        if args.record:
            bench.record_current(result)
            dirty = True
    if dirty:
        bench.write()
        print(f"wrote {args.bench_file}")

    if args.check is not None:
        failed = []
        compared = 0
        for result in results:
            base = baseline_before[result.key]
            if not base:
                print(
                    f"warning: no baseline for {result.key}; not checked",
                    file=sys.stderr,
                )
                continue
            compared += 1
            if result.epochs_per_sec < args.check * base:
                failed.append(
                    f"{result.key}: {result.epochs_per_sec:.0f} epochs/s "
                    f"< {args.check:g} x baseline {base:.0f}"
                )
        if failed:
            print("perf regression:", file=sys.stderr)
            for line in failed:
                print(f"  {line}", file=sys.stderr)
            return 1
        if compared == 0:
            print(
                "perf check: no comparable baselines found "
                f"in {args.bench_file}",
                file=sys.stderr,
            )
            return 1
    return 0


def _bench_profile(args, bench, fabrics) -> int:
    """bench --profile: trace each run, print per-phase wall-time shares."""
    from . import perf
    from .telemetry import EngineTracer, MemorySink

    names = args.scenarios or sorted(perf.SCENARIOS)
    fabric_list = fabrics or list(perf.FABRICS)
    results = []
    profiles = []
    for name in names:
        for tors, ports in fabric_list:
            # One sink per run; an effectively-infinite cadence keeps the
            # tracer out of the gauge path, so only the span timers run.
            sink = MemorySink()
            tracer = EngineTracer(
                sink, "negotiator", cadence_ns=1 << 62
            )
            result = perf.run_scenario(
                name,
                tors,
                ports,
                fast_forward=not args.no_fast_forward,
                core=args.core,
                tracer=tracer,
            )
            results.append(result)
            profiles.append((result, sink.of_kind("run-end")[-1]))
    print(perf.format_results(results, bench))
    for result, run_end in profiles:
        spans = run_end["spans"]
        counters = run_end["counters"]
        traced = sum(spans.values())
        denominator = traced or 1.0
        print(
            f"\n{result.key}: phase breakdown "
            f"({traced:.3f}s traced of {result.wall_s:.3f}s wall)"
        )
        for phase, wall in sorted(spans.items(), key=lambda kv: -kv[1]):
            print(
                f"  {phase:<12} {wall:>9.4f}s  "
                f"{wall / denominator * 100:>5.1f}%"
            )
        if counters:
            tally = ", ".join(
                f"{name}={total}" for name, total in sorted(counters.items())
            )
            print(f"  counters: {tally}")
    return 0


def cmd_trace(args) -> int:
    from pathlib import Path

    from .telemetry import analyze, format_trace, read_events, validate_event

    path = Path(args.path)
    if not path.exists():
        print(f"no such telemetry file: {path}", file=sys.stderr)
        return 2
    if args.top < 1:
        print("--top must be at least 1", file=sys.stderr)
        return 2
    events, torn = read_events(path)
    if args.validate:
        violations = [
            f"event {index}: {problem}"
            for index, event in enumerate(events)
            for problem in validate_event(event)
        ]
        for line in violations[:20]:
            print(line, file=sys.stderr)
        if len(violations) > 20:
            print(f"... {len(violations) - 20} more", file=sys.stderr)
        if torn:
            print(f"{torn} torn line(s)", file=sys.stderr)
        if violations or torn:
            return 1
        print(f"{len(events)} event(s), schema valid, 0 torn lines")
        return 0
    analysis = analyze(events, top=args.top)
    analysis["torn_lines"] = torn
    if args.json:
        print(json.dumps(analysis, indent=2))
    else:
        print(format_trace(analysis))
        if torn:
            print(f"warning: {torn} torn line(s) ignored", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(
            args.experiments,
            args.scale,
            args.jobs,
            args.json,
            run_all=args.all,
            store_path=args.store,
        )
    if args.command == "golden":
        return cmd_golden(args)
    if args.command == "report":
        return cmd_report(args.experiments, args.scale, args.output, args.json)
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "campaign":
        return cmd_campaign(args)
    if args.command == "store":
        return cmd_store(args)
    if args.command == "simulate":
        return cmd_simulate(args)
    if args.command == "bench":
        return cmd_bench(args)
    if args.command == "trace":
        return cmd_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
