"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — show the available experiments and scales.
* ``run <experiment> [...]`` — regenerate one or more tables/figures and
  print the rendered results.
* ``report`` — run a set of experiments and emit a markdown report
  (the generator behind EXPERIMENTS.md).

Examples::

    python -m repro list
    python -m repro run fig9 --scale tiny
    python -m repro run table2 fig14 efficiency
    python -m repro report --scale small --output report.md
"""

from __future__ import annotations

import argparse
import sys

from .experiments import EXPERIMENT_MODULES, SCALES, current_scale, load_experiment


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NegotiaToR (SIGCOMM 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and scales")

    run = sub.add_parser("run", help="regenerate tables/figures")
    run.add_argument(
        "experiments",
        nargs="+",
        metavar="EXPERIMENT",
        help=f"one of: {', '.join(sorted(EXPERIMENT_MODULES))}",
    )
    run.add_argument("--scale", choices=sorted(SCALES), default=None)

    report = sub.add_parser("report", help="emit a markdown report")
    report.add_argument("--scale", choices=sorted(SCALES), default=None)
    report.add_argument(
        "--experiments",
        nargs="*",
        metavar="EXPERIMENT",
        default=None,
        help="subset to include (default: all)",
    )
    report.add_argument("--output", default=None, help="file (default stdout)")

    simulate = sub.add_parser(
        "simulate", help="one-off simulation with headline metrics"
    )
    simulate.add_argument(
        "--system",
        choices=["negotiator", "oblivious"],
        default="negotiator",
    )
    simulate.add_argument(
        "--topology", choices=["parallel", "thinclos"], default="parallel"
    )
    simulate.add_argument("--scale", choices=sorted(SCALES), default=None)
    simulate.add_argument("--load", type=float, default=0.5)
    simulate.add_argument(
        "--trace",
        default="hadoop",
        help="flow-size trace: hadoop, websearch, or google",
    )
    simulate.add_argument(
        "--duration-ms", type=float, default=None, help="simulated time"
    )
    simulate.add_argument(
        "--workload-file",
        default=None,
        help="replay a CSV workload instead of generating one",
    )
    simulate.add_argument(
        "--no-pq", action="store_true", help="disable PIAS priority queues"
    )
    simulate.add_argument("--seed", type=int, default=None)
    return parser


def resolve_scale(name: str | None):
    """Scale object from a CLI flag, falling back to REPRO_SCALE."""
    if name is None:
        return current_scale()
    return SCALES[name]


def cmd_list() -> int:
    print("experiments:")
    for name in sorted(EXPERIMENT_MODULES):
        print(f"  {name:<10} -> repro.experiments.{EXPERIMENT_MODULES[name]}")
    print("scales:")
    for scale in SCALES.values():
        print(
            f"  {scale.name:<6} {scale.num_tors} ToRs x "
            f"{scale.ports_per_tor} ports, {scale.duration_ns / 1e6:g} ms runs"
        )
    return 0


def cmd_run(names: list[str], scale_name: str | None) -> int:
    scale = resolve_scale(scale_name)
    unknown = [n for n in names if n not in EXPERIMENT_MODULES]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(try: python -m repro list)",
            file=sys.stderr,
        )
        return 2
    for name in names:
        module = load_experiment(name)
        print(module.run(scale).render())
        print()
    return 0


def cmd_report(
    names: list[str] | None, scale_name: str | None, output: str | None
) -> int:
    from .analysis.report import build_report, run_experiments

    scale = resolve_scale(scale_name)
    results = run_experiments(names, scale, verbose=output is not None)
    text = build_report(results, scale)
    if output is None:
        print(text)
    else:
        with open(output, "w") as handle:
            handle.write(text)
        print(f"wrote {output}")
    return 0


def cmd_simulate(args) -> int:
    import random

    from .experiments.common import make_topology, sim_config
    from .sim.network import NegotiaToRSimulator
    from .sim.oblivious import ObliviousSimulator
    from .workloads import by_name, poisson_workload, trace_io

    scale = resolve_scale(args.scale)
    duration_ns = (
        args.duration_ms * 1e6 if args.duration_ms is not None
        else scale.duration_ns
    )
    config = sim_config(scale, priority_queue_enabled=not args.no_pq)
    if args.seed is not None:
        import dataclasses

        config = dataclasses.replace(config, seed=args.seed)

    if args.workload_file is not None:
        flows = trace_io.load(args.workload_file)
        trace_io.validate_for_fabric(flows, config.num_tors)
    else:
        distribution = by_name(args.trace)
        if scale.max_flow_bytes is not None:
            distribution = distribution.truncated(scale.max_flow_bytes)
        flows = poisson_workload(
            distribution,
            args.load,
            config.num_tors,
            config.host_aggregate_gbps,
            duration_ns,
            random.Random(config.seed),
        )

    topology = make_topology(scale, args.topology)
    if args.system == "oblivious":
        sim = ObliviousSimulator(config, topology, flows)
    else:
        sim = NegotiaToRSimulator(config, topology, flows)
    sim.run(duration_ns)
    summary = sim.summary(duration_ns)

    print(f"system    : {args.system} on {args.topology} "
          f"({config.num_tors} ToRs x {config.ports_per_tor} ports)")
    print(f"workload  : {summary.num_flows} flows over "
          f"{duration_ns / 1e6:g} ms "
          f"({args.workload_file or args.trace + f' @ {args.load:.0%}'})")
    print(f"completed : {summary.num_completed}/{summary.num_flows}")
    print(f"goodput   : {summary.goodput_normalized:.3f} normalized "
          f"({summary.goodput_gbps:.0f} Gbps network-wide)")
    if summary.mice_fct_p99_ns is not None:
        print(f"mice FCT  : p99 {summary.mice_fct_p99_ns / 1e3:.1f} us, "
              f"mean {summary.mice_fct_mean_ns / 1e3:.1f} us")
        if summary.mice_fct_p99_epochs is not None:
            print(f"          : p99 {summary.mice_fct_p99_epochs:.1f} epochs, "
                  f"mean {summary.mice_fct_mean_epochs:.1f} epochs")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return cmd_list()
    if args.command == "run":
        return cmd_run(args.experiments, args.scale)
    if args.command == "report":
        return cmd_report(args.experiments, args.scale, args.output)
    if args.command == "simulate":
        return cmd_simulate(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
