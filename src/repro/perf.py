"""Engine performance instrumentation and the hot-path benchmark scenarios.

The ROADMAP's north star is a simulator that runs "as fast as the hardware
allows"; this module is how we know whether it does.  It provides

* :class:`Stopwatch` — a tiny wall-clock timer for ad-hoc measurements,
* scenario builders (all-to-all, incast, sparse Poisson trace) that stress
  the three qualitatively different regimes of ``NegotiaToRSimulator``:
  every pair backlogged, one hot destination, and long idle tails,
* :func:`run_scenario` / :func:`run_suite` — build a fabric, run the
  scenario, and report wall-clock time and epochs per second, and
* :func:`load_baseline` / :func:`write_report` — the ``BENCH_engine.json``
  trajectory that lets a future PR detect a hot-path regression.

Scenario definitions are part of the performance contract: changing flow
sizes, epoch counts, or seeds invalidates every recorded baseline, so treat
them as frozen once a baseline is checked in.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field, fields, replace

from .sim.config import EpochTiming, SimConfig
from .sim.factory import make_negotiator
from .sim.flows import Flow
from .topology.parallel import ParallelNetwork

KB = 1000
MB = 1000 * KB

#: The fabric sizes the hot-path suite covers: (num_tors, ports_per_tor).
FABRICS: tuple[tuple[int, int], ...] = ((16, 4), (64, 8), (128, 8))

_SCENARIO_SEED = 0x5EED


class Stopwatch:
    """Wall-clock timer; use as a context manager around the hot section."""

    def __init__(self) -> None:
        self.elapsed_s = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_s = time.perf_counter() - self._start


@dataclass(frozen=True)
class PerfResult:
    """One scenario run's timing and sanity counters."""

    scenario: str
    num_tors: int
    ports_per_tor: int
    epochs: int
    stepped_epochs: int
    fast_forwarded_epochs: int
    wall_s: float
    epochs_per_sec: float
    num_flows: int
    completed_flows: int
    delivered_bytes: int

    @property
    def key(self) -> str:
        """Stable identifier used in BENCH_engine.json."""
        return f"{self.scenario}/t{self.num_tors}p{self.ports_per_tor}"

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass(frozen=True)
class Scenario:
    """A named workload shape plus its per-fabric epoch budget."""

    name: str
    description: str
    epochs_by_tors: dict[int, int]
    build_flows: "callable"

    def epochs_for(self, num_tors: int) -> int:
        try:
            return self.epochs_by_tors[num_tors]
        except KeyError:
            # Unlisted fabric sizes interpolate to the nearest listed one.
            nearest = min(self.epochs_by_tors, key=lambda n: abs(n - num_tors))
            return self.epochs_by_tors[nearest]


def fabric_config(
    num_tors: int, ports_per_tor: int, *, fast_forward: bool = True
) -> SimConfig:
    """A paper-timing SimConfig at the 2x speedup for one bench fabric."""
    kwargs = dict(
        num_tors=num_tors,
        ports_per_tor=ports_per_tor,
        uplink_gbps=100.0,
        host_aggregate_gbps=ports_per_tor * 100.0 / 2.0,
        seed=_SCENARIO_SEED,
    )
    if any(f.name == "idle_fast_forward" for f in fields(SimConfig)):
        kwargs["idle_fast_forward"] = fast_forward
    return SimConfig(**kwargs)


# ---------------------------------------------------------------------------
# scenario flow builders (frozen: baselines depend on them)
# ---------------------------------------------------------------------------


def _alltoall_flows(num_tors: int, epochs: int, epoch_ns: float) -> list[Flow]:
    """Every ordered pair starts one elephant at t=0: dense, zero idle."""
    flows = []
    fid = 0
    for src in range(num_tors):
        for dst in range(num_tors):
            if src == dst:
                continue
            flows.append(Flow(fid, src, dst, 2 * MB, 0.0, tag="a2a"))
            fid += 1
    return flows


def _incast_flows(num_tors: int, epochs: int, epoch_ns: float) -> list[Flow]:
    """Every other ToR sends one huge flow to ToR 0: one hot destination."""
    return [
        Flow(src - 1, src, 0, 50 * MB, 0.0, tag="incast")
        for src in range(1, num_tors)
    ]


def _sparse_flows(num_tors: int, epochs: int, epoch_ns: float) -> list[Flow]:
    """A low-rate Poisson trace: mice with long idle tails between them.

    Mean inter-arrival is 80 epochs, so the fabric is idle the vast majority
    of the time — the regime of the fig6 FCT-CDF and fig13 workload traces
    whose wall-clock cost is dominated by dead epochs.
    """
    rng = random.Random(_SCENARIO_SEED)
    duration_ns = epochs * epoch_ns
    mean_gap_ns = 80 * epoch_ns
    flows = []
    now = 0.0
    fid = 0
    while True:
        now += rng.expovariate(1.0 / mean_gap_ns)
        if now >= duration_ns:
            break
        src = rng.randrange(num_tors)
        dst = rng.randrange(num_tors - 1)
        if dst >= src:
            dst += 1
        size = 500 * KB if fid % 20 == 19 else 10 * KB
        flows.append(Flow(fid, src, dst, size, now, tag="sparse"))
        fid += 1
    return flows


SCENARIOS: dict[str, Scenario] = {
    "alltoall": Scenario(
        name="alltoall",
        description="dense all-to-all, every pair backlogged for the whole run",
        epochs_by_tors={16: 600, 64: 250, 128: 80},
        build_flows=_alltoall_flows,
    ),
    "incast": Scenario(
        name="incast",
        description="all ToRs incast one hot destination",
        epochs_by_tors={16: 4000, 64: 1500, 128: 800},
        build_flows=_incast_flows,
    ),
    "sparse": Scenario(
        name="sparse",
        description="low-rate Poisson mice trace with long idle tails",
        epochs_by_tors={16: 120_000, 64: 60_000, 128: 40_000},
        build_flows=_sparse_flows,
    ),
}


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------


def run_scenario(
    scenario_name: str,
    num_tors: int,
    ports_per_tor: int,
    *,
    epochs: int | None = None,
    fast_forward: bool = True,
    core: str | None = None,
    tracer=None,
) -> PerfResult:
    """Build and time one scenario on one fabric; returns a PerfResult.

    ``epochs`` overrides the scenario's default budget (used by the smoke
    tests); overridden runs are not comparable to recorded baselines.
    ``tracer`` (an :class:`repro.telemetry.EngineTracer`) attributes the
    wall time to engine phases for ``repro bench --profile``.
    """
    try:
        scenario = SCENARIOS[scenario_name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {scenario_name!r}; choose from {sorted(SCENARIOS)}"
        ) from None
    config = fabric_config(num_tors, ports_per_tor, fast_forward=fast_forward)
    if core is not None:
        config = replace(config, core=core)
    topology = ParallelNetwork(num_tors, ports_per_tor)
    epoch_ns = EpochTiming.derive(
        config.epoch, config.uplink_gbps, topology.predefined_slots
    ).epoch_ns
    budget = epochs if epochs is not None else scenario.epochs_for(num_tors)
    flows = scenario.build_flows(num_tors, budget, epoch_ns)
    sim = make_negotiator(config, topology, flows, tracer=tracer)
    duration_ns = budget * epoch_ns
    with Stopwatch() as watch:
        sim.run(duration_ns)
    if tracer is not None:
        tracer.finish(int(sim.now_ns))
    simulated = sim.epoch
    skipped = getattr(sim, "fast_forwarded_epochs", 0)
    summary = sim.summary(duration_ns)
    return PerfResult(
        scenario=scenario.name,
        num_tors=num_tors,
        ports_per_tor=ports_per_tor,
        epochs=simulated,
        stepped_epochs=simulated - skipped,
        fast_forwarded_epochs=skipped,
        wall_s=watch.elapsed_s,
        epochs_per_sec=simulated / watch.elapsed_s if watch.elapsed_s > 0 else 0.0,
        num_flows=summary.num_flows,
        completed_flows=summary.num_completed,
        delivered_bytes=sim.tracker.delivered_bytes,
    )


def run_suite(
    scenarios: list[str] | None = None,
    fabrics: list[tuple[int, int]] | None = None,
    *,
    fast_forward: bool = True,
    core: str | None = None,
) -> list[PerfResult]:
    """Run the scenario x fabric matrix (default: the full suite)."""
    results = []
    for name in scenarios or sorted(SCENARIOS):
        for num_tors, ports in fabrics or FABRICS:
            results.append(
                run_scenario(
                    name, num_tors, ports, fast_forward=fast_forward, core=core
                )
            )
    return results


# ---------------------------------------------------------------------------
# BENCH_engine.json bookkeeping
# ---------------------------------------------------------------------------

BENCH_SCHEMA = 1


@dataclass
class BenchFile:
    """The tracked perf trajectory: per-scenario baseline + current numbers."""

    path: str
    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str) -> "BenchFile":
        try:
            with open(path) as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return cls(path=path)
        if data.get("schema") != BENCH_SCHEMA:
            raise ValueError(f"{path}: unsupported schema {data.get('schema')!r}")
        return cls(path=path, entries=data.get("scenarios", {}))

    def baseline_eps(self, key: str) -> float | None:
        entry = self.entries.get(key)
        if entry and "baseline" in entry:
            return entry["baseline"]["epochs_per_sec"]
        return None

    def record_baseline(self, result: PerfResult) -> None:
        self.entries.setdefault(result.key, {})["baseline"] = result.to_dict()

    def record_current(self, result: PerfResult) -> None:
        entry = self.entries.setdefault(result.key, {})
        entry["current"] = result.to_dict()
        base = self.baseline_eps(result.key)
        if base:
            entry["speedup"] = round(result.epochs_per_sec / base, 3)

    def write(self) -> None:
        payload = {"schema": BENCH_SCHEMA, "scenarios": self.entries}
        with open(self.path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")


def format_results(
    results: list[PerfResult], bench: BenchFile | None = None
) -> str:
    """Fixed-width report of a suite run, with vs-baseline speedups."""
    header = (
        f"{'scenario':<10} {'fabric':<9} {'epochs':>8} {'stepped':>8} "
        f"{'wall s':>8} {'epochs/s':>10} {'speedup':>8}"
    )
    lines = [header, "-" * len(header)]
    for result in results:
        base = bench.baseline_eps(result.key) if bench is not None else None
        speedup = (
            f"{result.epochs_per_sec / base:6.2f}x" if base else "      -"
        )
        lines.append(
            f"{result.scenario:<10} {result.num_tors:>3}x{result.ports_per_tor:<5} "
            f"{result.epochs:>8} {result.stepped_epochs:>8} "
            f"{result.wall_s:>8.3f} {result.epochs_per_sec:>10.0f} {speedup:>8}"
        )
    return "\n".join(lines)
