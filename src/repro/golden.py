"""Golden-baseline digests: pin every experiment's output at micro scale.

Each experiment's :class:`~repro.experiments.common.ExperimentResult` is
serialized to canonical JSON (sorted keys, compact separators) and hashed
with SHA-256.  The digest — plus the full result payload, for diffing when
a digest mismatches — lives in ``tests/golden/<experiment>.json``.  The
suite in tests/test_golden_outputs.py recomputes every digest at the
``micro`` scale on each run, so any change to an engine, workload
generator, scheduler variant, or collector that shifts a single bit of any
table shows up as a test failure.

Intentional changes are re-recorded with::

    PYTHONPATH=src python -m repro golden --record

which is also how this file's baselines were produced.  ``python -m repro
golden`` (no flag) verifies out-of-band, mirroring the test suite.
"""

from __future__ import annotations

import hashlib
import inspect
import json
from dataclasses import dataclass
from pathlib import Path

from .experiments import EXPERIMENT_MODULES, ExperimentScale, load_experiment
from .experiments.common import ExperimentResult

GOLDEN_SCALE = "micro"
"""Digests are recorded at the micro scale: small enough that the whole
suite re-runs in seconds, large enough that every code path executes."""

GOLDEN_VERSION = 1


def canonical_json(payload) -> str:
    """The byte-stable JSON form digests are taken over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_digest(result: ExperimentResult) -> str:
    """SHA-256 over an experiment result's canonical JSON form."""
    return hashlib.sha256(canonical_json(result.to_dict()).encode()).hexdigest()


def compute_result(
    name: str, scale: ExperimentScale, runner=None
) -> ExperimentResult:
    """Run one experiment the way the golden suite does (shared runner)."""
    module = load_experiment(name)
    if runner is not None and (
        "runner" in inspect.signature(module.run).parameters
    ):
        return module.run(scale, runner=runner)
    return module.run(scale)


def golden_path(golden_dir: str | Path, name: str) -> Path:
    """The baseline file for one experiment."""
    return Path(golden_dir) / f"{name}.json"


@dataclass
class GoldenCheck:
    """Outcome of verifying one experiment against its baseline."""

    name: str
    digest: str
    expected: str | None  # None: no baseline recorded yet

    @property
    def ok(self) -> bool:
        return self.digest == self.expected


def load_golden(golden_dir: str | Path, name: str) -> dict | None:
    """The recorded baseline for one experiment, or None if absent."""
    path = golden_path(golden_dir, name)
    if not path.exists():
        return None
    with path.open() as handle:
        return json.load(handle)


def record_golden(
    golden_dir: str | Path, name: str, result: ExperimentResult
) -> str:
    """Write one experiment's baseline; returns the digest."""
    digest = result_digest(result)
    path = golden_path(golden_dir, name)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "golden_version": GOLDEN_VERSION,
        "experiment": name,
        "scale": GOLDEN_SCALE,
        "digest": digest,
        "result": result.to_dict(),
    }
    with path.open("w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return digest


def check_golden(
    golden_dir: str | Path, name: str, result: ExperimentResult
) -> GoldenCheck:
    """Compare one freshly-computed result against its recorded baseline."""
    baseline = load_golden(golden_dir, name)
    return GoldenCheck(
        name=name,
        digest=result_digest(result),
        expected=baseline["digest"] if baseline else None,
    )


def experiment_names() -> list[str]:
    """Every experiment the golden suite covers, in stable order."""
    return sorted(EXPERIMENT_MODULES)
