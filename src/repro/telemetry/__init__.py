"""Telemetry: schema-versioned events, engine tracing, fleet progress.

The observability layer (DESIGN.md §14).  Zero overhead when off: the
engines guard every hook behind ``tracer is not None`` and the sweep
runner only activates the :data:`~repro.telemetry.runtime.TELEMETRY_ENV`
channel when asked, so fixed-seed goldens and the hot path are untouched
by default — and, because events only *observe*, results stay
bit-identical when telemetry is on.

* :mod:`~repro.telemetry.events` — the JSONL event schema, validator,
  file/memory sinks, tolerant reader.
* :mod:`~repro.telemetry.engine` — :class:`EngineTracer`, the per-run
  span/counter/gauge accumulator the engines drive.
* :mod:`~repro.telemetry.runtime` — process-level activation over the
  ``REPRO_TELEMETRY`` environment variable (reaches forked workers).
* :mod:`~repro.telemetry.heartbeat` — worker heartbeat payloads and the
  runner-side :class:`HeartbeatAggregator`.
* :mod:`~repro.telemetry.progress` — the live stderr progress/ETA line.
* :mod:`~repro.telemetry.manifest` — campaign manifest JSON.
* :mod:`~repro.telemetry.trace` — the ``repro trace`` analyzer.
"""

from .engine import DEFAULT_CADENCE_NS, EngineTracer
from .events import (
    EVENT_SCHEMA,
    TELEMETRY_VERSION,
    MemorySink,
    TelemetryWriter,
    make_event,
    read_events,
    validate_event,
)
from .heartbeat import (
    HeartbeatAggregator,
    clear_active_simulator,
    heartbeat_payload,
    progress_snapshot,
    set_active_simulator,
)
from .manifest import (
    MANIFEST_VERSION,
    build_manifest,
    default_manifest_path,
    write_manifest,
)
from .progress import ProgressReporter
from .runtime import (
    TELEMETRY_ENV,
    activate,
    active_config,
    deactivate,
    engine_tracer,
)
from .trace import analyze, format_trace

__all__ = [
    "DEFAULT_CADENCE_NS",
    "EVENT_SCHEMA",
    "EngineTracer",
    "HeartbeatAggregator",
    "MANIFEST_VERSION",
    "MemorySink",
    "ProgressReporter",
    "TELEMETRY_ENV",
    "TELEMETRY_VERSION",
    "TelemetryWriter",
    "activate",
    "active_config",
    "analyze",
    "build_manifest",
    "clear_active_simulator",
    "deactivate",
    "default_manifest_path",
    "engine_tracer",
    "format_trace",
    "heartbeat_payload",
    "make_event",
    "progress_snapshot",
    "read_events",
    "set_active_simulator",
    "validate_event",
    "write_manifest",
]
