"""Process-level telemetry activation via the ``REPRO_TELEMETRY`` env var.

The sweep runner executes specs both in-process and in forked workers;
the one channel that reaches both identically is the environment (the
chaos plan uses the same trick).  ``REPRO_TELEMETRY`` carries a small
JSON object — ``{"path": ..., "cadence_ns": ...}`` — and
:func:`engine_tracer` turns it into an :class:`EngineTracer` writing to
that path, or ``None`` when the variable is unset, which is what keeps
the disabled path free of any telemetry work.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .engine import DEFAULT_CADENCE_NS, EngineTracer
from .events import TelemetryWriter

TELEMETRY_ENV = "REPRO_TELEMETRY"


def activate(path: str | Path, *, cadence_ns: int = DEFAULT_CADENCE_NS) -> str | None:
    """Set ``REPRO_TELEMETRY``; returns the previous value for restore."""
    previous = os.environ.get(TELEMETRY_ENV)
    os.environ[TELEMETRY_ENV] = json.dumps(
        {"path": str(Path(path)), "cadence_ns": int(cadence_ns)}
    )
    return previous


def deactivate(previous: str | None = None) -> None:
    """Clear ``REPRO_TELEMETRY`` or restore a saved value."""
    if previous is None:
        os.environ.pop(TELEMETRY_ENV, None)
    else:
        os.environ[TELEMETRY_ENV] = previous


def active_config() -> dict | None:
    """The parsed env config, or None when telemetry is off or malformed."""
    raw = os.environ.get(TELEMETRY_ENV)
    if not raw:
        return None
    try:
        config = json.loads(raw)
    except json.JSONDecodeError:
        return None
    if not isinstance(config, dict) or "path" not in config:
        return None
    return config


def engine_tracer(spec_hash: str | None, engine: str) -> EngineTracer | None:
    """A tracer for one engine run, or None when telemetry is off."""
    config = active_config()
    if config is None:
        return None
    cadence = config.get("cadence_ns", DEFAULT_CADENCE_NS)
    if not isinstance(cadence, int) or cadence <= 0:
        cadence = DEFAULT_CADENCE_NS
    return EngineTracer(
        TelemetryWriter(config["path"]),
        engine,
        spec_hash=spec_hash,
        cadence_ns=cadence,
    )
