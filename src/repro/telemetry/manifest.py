"""Campaign manifests: the durable record of *how* a sweep ran.

The result store records what each spec produced; the manifest records
the campaign around it — when it ran, on what host and package versions,
which specs were cache hits, and the full per-spec attempt history
(status sequence, per-attempt wall times) so retry/quarantine ground
truth survives after the stderr progress line is gone.  Written
atomically (temp file + rename) next to the store as
``<store>.manifest.json``.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import sys
from datetime import datetime, timezone
from pathlib import Path

MANIFEST_VERSION = 1


def default_manifest_path(store_path: str | Path) -> Path:
    """The manifest sidecar for a store, whatever its backend.

    ``campaign.jsonl -> campaign.manifest.json``; non-``.jsonl`` stores
    (SQLite files, sharded directories) get backend-aware derivations
    instead of the old suffix string-replacement.
    """
    # Imported lazily: repro.sweep imports repro.telemetry at load time,
    # so a module-level import here would complete the cycle.
    from ..sweep.backends import sidecar_path

    return sidecar_path(store_path, "manifest.json")


def _package_versions() -> dict:
    versions = {}
    try:
        import numpy

        versions["numpy"] = numpy.__version__
    except Exception:
        pass
    try:
        import repro

        versions["repro"] = getattr(repro, "__version__", None)
    except Exception:
        pass
    return versions


def environment_block() -> dict:
    """Host / interpreter / package identity for the manifest."""
    return {
        "host": socket.gethostname(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
        "packages": _package_versions(),
    }


def build_manifest(
    *,
    campaign: str,
    started_at: float,
    ended_at: float,
    specs: dict,
    outcomes: dict,
    cached_hashes: set,
    quarantined_hashes: set,
    jobs: int,
    store_path: str | None = None,
    worker: str | None = None,
) -> dict:
    """Assemble the manifest dict from a finished runner's state.

    ``specs`` maps content hash -> :class:`~repro.sweep.spec.RunSpec`;
    ``outcomes`` maps hash -> :class:`~repro.sweep.resilience.SpecOutcome`
    for every spec that actually executed (cache hits have no outcome).
    """
    per_spec = {}
    retried = 0
    for spec_hash, spec in specs.items():
        outcome = outcomes.get(spec_hash)
        cached = spec_hash in cached_hashes
        entry: dict = {"label": spec.label(), "cached": cached}
        if outcome is not None:
            entry.update(
                status=outcome.status,
                attempts=outcome.attempts,
                attempt_statuses=list(outcome.attempt_statuses),
                elapsed_s=[round(t, 6) for t in outcome.elapsed_s],
            )
            if outcome.attempts > 1:
                retried += 1
            if outcome.error:
                entry["error"] = outcome.error
        else:
            entry.update(
                status="cached" if cached else "pending",
                attempts=0,
                attempt_statuses=[],
                elapsed_s=[],
            )
        per_spec[spec_hash] = entry
    executed = sum(
        1 for o in outcomes.values() if o.status == "ok"
    )
    failed = sum(1 for o in outcomes.values() if o.status != "ok")
    return {
        "manifest_version": MANIFEST_VERSION,
        "campaign": campaign,
        "worker": worker,
        "started_at": _isoformat(started_at),
        "ended_at": _isoformat(ended_at),
        "elapsed_s": round(ended_at - started_at, 6),
        "jobs": jobs,
        "store": store_path,
        "environment": environment_block(),
        "counts": {
            "specs": len(specs),
            "executed": executed,
            "cached": len(cached_hashes),
            "failed": failed,
            "retried": retried,
            "quarantined": len(quarantined_hashes),
        },
        "quarantined": sorted(quarantined_hashes),
        "specs": per_spec,
    }


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Atomic JSON write: temp file in the same directory, then rename."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


def _isoformat(unix_ts: float) -> str:
    return datetime.fromtimestamp(unix_ts, tz=timezone.utc).isoformat()
