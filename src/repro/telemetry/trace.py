"""The ``repro trace`` analyzer: summarize a telemetry JSONL.

Pure functions over the event list :func:`~repro.telemetry.events.read_events`
returns — the CLI command, ``repro bench --profile``, and the tests all
share them.  :func:`analyze` computes the campaign roll-up, per-engine
phase wall-time shares (from ``span`` windows, whose sums equal the
``run-end`` totals by construction), the slowest executed specs, retry
and final-status histograms, queue-depth gauge percentiles, and
heartbeat stats.  :func:`format_trace` renders the same analysis as
text.
"""

from __future__ import annotations

import math

from . import events as ev


def _percentile(sorted_values: list, fraction: float) -> float | None:
    """Nearest-rank percentile over an ascending list; None when empty.

    An empty gauge series is a legitimate trace state (a run that never
    hit a gauge cadence boundary, or a truncated JSONL), not an analyzer
    error — callers render the absent value instead of crashing.
    """
    if not sorted_values:
        return None
    rank = math.ceil(fraction * len(sorted_values)) - 1
    return float(sorted_values[max(0, min(len(sorted_values) - 1, rank))])


def analyze(events: list[dict], *, top: int = 5) -> dict:
    """Full trace summary of a telemetry event list."""
    kinds: dict[str, int] = {}
    spans: dict[str, dict[str, float]] = {}
    counters: dict[str, dict[str, int]] = {}
    queue_gauges: dict[str, list[float]] = {}
    spec_ends: list[dict] = []
    heartbeats: list[dict] = []
    campaign: dict | None = None
    for event in events:
        kind = event.get("kind")
        if not isinstance(kind, str):
            continue
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == ev.SPAN:
            engine = spans.setdefault(event["engine"], {})
            phase = event["phase"]
            engine[phase] = engine.get(phase, 0.0) + event["wall_s"]
        elif kind == ev.COUNTER:
            engine = counters.setdefault(event["engine"], {})
            name = event["name"]
            engine[name] = engine.get(name, 0) + event["delta"]
        elif kind == ev.GAUGE and event.get("name") == "queued_bytes":
            queue_gauges.setdefault(event["engine"], []).append(
                float(event["value"])
            )
        elif kind == ev.SPEC_END:
            spec_ends.append(event)
        elif kind == ev.HEARTBEAT_EVENT:
            heartbeats.append(event)
        elif kind == ev.CAMPAIGN_END:
            campaign = {
                key: event[key]
                for key in (
                    "campaign", "executed", "cached", "failed",
                    "retried", "quarantined", "elapsed_s",
                )
                if key in event
            }

    phase_shares: dict[str, dict] = {}
    for engine, phases in spans.items():
        total = sum(phases.values())
        phase_shares[engine] = {
            phase: {
                "wall_s": round(wall, 6),
                "share": round(wall / total, 4) if total > 0 else 0.0,
            }
            for phase, wall in sorted(
                phases.items(), key=lambda item: -item[1]
            )
        }

    executed_ends = [e for e in spec_ends if not e.get("cached")]
    slowest = sorted(
        executed_ends, key=lambda e: -e.get("elapsed_s", 0.0)
    )[:top]
    retry_histogram: dict[str, int] = {}
    status_counts: dict[str, int] = {}
    for event in spec_ends:
        status = event.get("status", "unknown")
        status_counts[status] = status_counts.get(status, 0) + 1
    # Cache hits never attempt anything; keep them out of the histogram.
    for event in executed_ends:
        attempts = str(event.get("attempts", 0))
        retry_histogram[attempts] = retry_histogram.get(attempts, 0) + 1

    queue_depth = {}
    for engine, values in queue_gauges.items():
        values.sort()
        queue_depth[engine] = {
            "samples": len(values),
            "p50": _percentile(values, 0.50),
            "p90": _percentile(values, 0.90),
            "p99": _percentile(values, 0.99),
            "max": values[-1] if values else None,
        }

    heartbeat_stats = None
    if heartbeats:
        rss = [
            e["rss_bytes"] for e in heartbeats
            if isinstance(e.get("rss_bytes"), int)
        ]
        heartbeat_stats = {
            "count": len(heartbeats),
            "specs": len({e.get("spec") for e in heartbeats}),
            "max_rss_bytes": max(rss) if rss else None,
        }

    return {
        "events": len(events),
        "kinds": dict(sorted(kinds.items())),
        "campaign": campaign,
        "phase_time_shares": phase_shares,
        "counters": {
            engine: dict(sorted(names.items()))
            for engine, names in sorted(counters.items())
        },
        "slowest_specs": [
            {
                "spec": e.get("spec"),
                "label": e.get("label"),
                "elapsed_s": round(e.get("elapsed_s", 0.0), 6),
                "attempts": e.get("attempts"),
                "status": e.get("status"),
            }
            for e in slowest
        ],
        "retry_histogram": dict(
            sorted(retry_histogram.items(), key=lambda item: int(item[0]))
        ),
        "status_counts": dict(sorted(status_counts.items())),
        "queue_depth": queue_depth,
        "heartbeats": heartbeat_stats,
    }


def format_trace(analysis: dict) -> str:
    """Human-readable rendering of an :func:`analyze` result."""
    lines = [f"{analysis['events']} events"]
    kinds = ", ".join(
        f"{count} {kind}" for kind, count in analysis["kinds"].items()
    )
    if kinds:
        lines.append(f"  kinds: {kinds}")
    campaign = analysis.get("campaign")
    if campaign:
        lines.append(
            "campaign: "
            f"{campaign.get('executed', 0)} executed, "
            f"{campaign.get('cached', 0)} cached, "
            f"{campaign.get('failed', 0)} failed, "
            f"{campaign.get('retried', 0)} retried, "
            f"{campaign.get('quarantined', 0)} quarantined "
            f"in {campaign.get('elapsed_s', 0.0):.2f}s"
        )
    for engine, phases in analysis["phase_time_shares"].items():
        lines.append(f"phase time ({engine}):")
        for phase, stats in phases.items():
            lines.append(
                f"  {phase:<12} {stats['wall_s'] * 1e3:9.3f} ms "
                f"({stats['share'] * 100:5.1f}%)"
            )
    if analysis["slowest_specs"]:
        lines.append("slowest specs:")
        for entry in analysis["slowest_specs"]:
            lines.append(
                f"  {entry['spec'][:12] if entry['spec'] else '?':<12} "
                f"{entry['elapsed_s']:8.3f}s  "
                f"attempts={entry['attempts']}  {entry['status']}  "
                f"{entry['label']}"
            )
    if analysis["retry_histogram"]:
        buckets = ", ".join(
            f"{attempts} attempt(s): {count}"
            for attempts, count in analysis["retry_histogram"].items()
        )
        lines.append(f"retries: {buckets}")
    if analysis["status_counts"]:
        statuses = ", ".join(
            f"{count} {status}"
            for status, count in analysis["status_counts"].items()
        )
        lines.append(f"statuses: {statuses}")
    for engine, stats in analysis["queue_depth"].items():

        def depth(key: str) -> str:
            value = stats[key]
            return "-" if value is None else f"{value:.0f}"

        lines.append(
            f"queue depth ({engine}): p50={depth('p50')} "
            f"p90={depth('p90')} p99={depth('p99')} "
            f"max={depth('max')} over {stats['samples']} samples"
        )
    heartbeats = analysis.get("heartbeats")
    if heartbeats:
        rss = heartbeats.get("max_rss_bytes")
        rss_text = f", max rss {rss / 1e6:.0f} MB" if rss else ""
        lines.append(
            f"heartbeats: {heartbeats['count']} from "
            f"{heartbeats['specs']} spec(s){rss_text}"
        )
    return "\n".join(lines)
