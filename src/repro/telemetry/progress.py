"""The live sweep progress line: done/total, ETA, fleet health.

:class:`ProgressReporter` turns runner callbacks (spec finished, spec
cached, heartbeat arrived) into a single stderr status line::

    sweep 12/48 done (3 cached) | 4 running | 1 retried, 1 quarantined \
| 1.8 spec/s | eta 20s

Throughput is an EWMA over inter-completion gaps of *executed* specs
(cache hits are instant and would make the ETA lie), and the ETA is
simply remaining work over that rate.  On a TTY the line redraws in
place with ``\\r``; otherwise it prints at most once per
``min_interval_s`` as ordinary lines, so piped stderr logs stay
readable.  The clock is injectable for tests.
"""

from __future__ import annotations

import sys
import time


def _format_duration(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    if seconds < 3600:
        return f"{int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"


class ProgressReporter:
    """Aggregates sweep progress into one throttled stderr line."""

    def __init__(
        self,
        total: int,
        *,
        stream=None,
        clock=None,
        ewma_alpha: float = 0.3,
        min_interval_s: float = 1.0,
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self._clock = clock if clock is not None else time.monotonic
        self.ewma_alpha = ewma_alpha
        self.min_interval_s = min_interval_s
        self.done = 0
        self.cached = 0
        self.retried = 0
        self.quarantined = 0
        self.failed = 0
        self.running = 0
        self._rate: float | None = None  # specs per second, EWMA
        self._last_completion: float | None = None
        self._last_render = -float("inf")
        self._wrote_inline = False

    # -- runner callbacks --------------------------------------------------

    def spec_cached(self) -> None:
        self.done += 1
        self.cached += 1
        self._render()

    def spec_finished(self, *, attempts: int = 1, status: str = "ok") -> None:
        now = self._clock()
        if self._last_completion is not None:
            gap = now - self._last_completion
            if gap > 0:
                sample = 1.0 / gap
                if self._rate is None:
                    self._rate = sample
                else:
                    self._rate += self.ewma_alpha * (sample - self._rate)
        self._last_completion = now
        self.done += 1
        if attempts > 1:
            self.retried += 1
        if status == "quarantined":
            self.quarantined += 1
        elif status != "ok":
            self.failed += 1
        self._render()

    def set_running(self, count: int) -> None:
        self.running = count

    def heartbeat(self) -> None:
        self._render()

    # -- rendering ---------------------------------------------------------

    def eta_s(self) -> float | None:
        if self._rate is None or self._rate <= 0:
            return None
        return (self.total - self.done) / self._rate

    def line(self) -> str:
        parts = [f"sweep {self.done}/{self.total} done"]
        if self.cached:
            parts[0] += f" ({self.cached} cached)"
        if self.running:
            parts.append(f"{self.running} running")
        health = []
        if self.retried:
            health.append(f"{self.retried} retried")
        if self.quarantined:
            health.append(f"{self.quarantined} quarantined")
        if self.failed:
            health.append(f"{self.failed} failed")
        if health:
            parts.append(", ".join(health))
        if self._rate is not None and self._rate > 0:
            parts.append(f"{self._rate:.1f} spec/s")
            eta = self.eta_s()
            if eta is not None and self.done < self.total:
                parts.append(f"eta {_format_duration(eta)}")
        elif self.done < self.total:
            # No executed completion yet (all-cached resume, or nothing
            # finished): there is no throughput sample, so the honest ETA
            # is "unknown" — never a division by zero or a stale guess.
            parts.append("eta -")
        return " | ".join(parts)

    def _render(self, *, force: bool = False) -> None:
        now = self._clock()
        is_tty = getattr(self.stream, "isatty", lambda: False)()
        if not force and not is_tty:
            if now - self._last_render < self.min_interval_s:
                return
        self._last_render = now
        if is_tty:
            self.stream.write("\r\x1b[2K" + self.line())
            self._wrote_inline = True
        else:
            self.stream.write(self.line() + "\n")
        self.stream.flush()

    def close(self) -> None:
        """Final render; terminates the in-place line on a TTY."""
        self._render(force=True)
        if self._wrote_inline:
            self.stream.write("\n")
            self.stream.flush()
