"""Worker heartbeats: what a busy worker reports and how it's aggregated.

The worker side runs inside :func:`repro.sweep.resilience._worker_main`:
a small timer thread calls :func:`heartbeat_payload` once per interval
and ships the dict over the existing result pipe (tagged so the pool
never confuses it with a result).  Progress comes from a module-global
*active simulator* probe — the run helpers in
:mod:`repro.experiments.common` register the simulator they are about to
step and clear it afterwards, and :func:`progress_snapshot` reads
whatever accessors that engine happens to expose, defensively, because a
heartbeat must never crash the run it is reporting on.

The runner side is :class:`HeartbeatAggregator`: latest heartbeat per
spec with a monotonic staleness cutoff, clock-injectable for tests.
"""

from __future__ import annotations

import os
import resource
import threading

_active_lock = threading.Lock()
_active_simulator = None


def set_active_simulator(sim) -> None:
    """Register the simulator the current process is about to step."""
    global _active_simulator
    with _active_lock:
        _active_simulator = sim


def clear_active_simulator() -> None:
    global _active_simulator
    with _active_lock:
        _active_simulator = None


def rss_bytes() -> int | None:
    """Current resident set size, or None when unreadable."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        # ru_maxrss is peak-not-current and in KiB on Linux; a coarse
        # fallback for platforms without /proc.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except (OSError, ValueError):
        return None


def progress_snapshot() -> dict:
    """Best-effort progress read of the active simulator.

    Returns ``sim_ns`` / ``epochs`` / ``flows_completed`` keys, any of
    which may be None: the three engines expose different accessors and
    the probe races with the stepping loop, so every read is wrapped.
    """
    with _active_lock:
        sim = _active_simulator
    snapshot: dict = {"sim_ns": None, "epochs": None, "flows_completed": None}
    if sim is None:
        return snapshot
    for key, attribute in (
        ("sim_ns", "now_ns"),
        ("epochs", "epoch"),
    ):
        try:
            value = getattr(sim, attribute)
            if isinstance(value, int):
                snapshot[key] = value
        except Exception:
            pass
    try:
        tracker = sim.tracker
        completed = tracker.num_completed
        if isinstance(completed, int):
            snapshot["flows_completed"] = completed
    except Exception:
        pass
    return snapshot


def heartbeat_payload(spec_hash: str, attempt: int, wall_s: float) -> dict:
    """One heartbeat dict: identity, progress probe, and RSS."""
    payload = {
        "spec": spec_hash,
        "attempt": attempt,
        "wall_s": wall_s,
        "rss_bytes": rss_bytes(),
    }
    payload.update(progress_snapshot())
    return payload


class HeartbeatAggregator:
    """Latest heartbeat per spec, with monotonic staleness tracking."""

    def __init__(self, clock=None) -> None:
        import time

        self._clock = clock if clock is not None else time.monotonic
        self._latest: dict[str, tuple[float, dict]] = {}

    def record(self, payload: dict) -> None:
        spec = payload.get("spec")
        if isinstance(spec, str):
            self._latest[spec] = (self._clock(), dict(payload))

    def forget(self, spec_hash: str) -> None:
        """Drop a spec once its result (or failure) has arrived."""
        self._latest.pop(spec_hash, None)

    def latest(self, spec_hash: str) -> dict | None:
        entry = self._latest.get(spec_hash)
        return entry[1] if entry is not None else None

    def running(self, stale_after_s: float = 10.0) -> list[dict]:
        """Heartbeats fresher than ``stale_after_s``, newest first."""
        now = self._clock()
        fresh = [
            (seen, payload)
            for seen, payload in self._latest.values()
            if now - seen <= stale_after_s
        ]
        fresh.sort(key=lambda item: item[0], reverse=True)
        return [payload for _, payload in fresh]
