"""Engine-side tracing: phase spans, counters, and cadenced gauges.

One :class:`EngineTracer` is attached per simulator run (the ``tracer=``
constructor parameter on the three engines).  The engines call three
cheap methods from their stepping loops:

* :meth:`EngineTracer.add_span` — accumulate wall-time into a named
  phase (``matching``, ``drain``, ``relay``, ...).
* :meth:`EngineTracer.count` — bump a named counter (requests, grants,
  accepts, matches, ...).
* :meth:`EngineTracer.gauge_due` / :meth:`EngineTracer.sample` — emit a
  flush of the accumulated window plus point-in-time gauges (queue
  depth, active pairs) once per configured *sim-time* cadence, so event
  volume scales with simulated time, not with epochs stepped.

Span and counter events carry the *delta since the previous flush*; the
final :meth:`finish` emits a ``run-end`` event with the cumulative
totals, so an analyzer can either sum the windows or read the totals and
get the same numbers.  When no tracer is attached the engines skip all
of this behind a single ``is not None`` check — the zero-overhead-
when-off contract (DESIGN.md §14).
"""

from __future__ import annotations

from . import events as ev

#: Gauge sampling cadence when none is configured: 50 µs of simulated
#: time, a handful of windows per tiny-scale CI spec.
DEFAULT_CADENCE_NS = 50_000


class EngineTracer:
    """Accumulates per-window phase/counter/gauge data for one run."""

    __slots__ = (
        "sink",
        "engine",
        "spec_hash",
        "cadence_ns",
        "_next_sample_ns",
        "_window_spans",
        "_window_counts",
        "_total_spans",
        "_total_counts",
        "_last_gauges",
    )

    def __init__(
        self,
        sink,
        engine: str,
        *,
        spec_hash: str | None = None,
        cadence_ns: int = DEFAULT_CADENCE_NS,
    ) -> None:
        if cadence_ns <= 0:
            raise ValueError("cadence_ns must be positive")
        self.sink = sink
        self.engine = engine
        self.spec_hash = spec_hash
        self.cadence_ns = cadence_ns
        self._next_sample_ns = cadence_ns
        self._window_spans: dict[str, float] = {}
        self._window_counts: dict[str, int] = {}
        self._total_spans: dict[str, float] = {}
        self._total_counts: dict[str, int] = {}
        self._last_gauges: dict[str, float] = {}

    # -- hot-path hooks ----------------------------------------------------

    def add_span(self, phase: str, wall_s: float) -> None:
        """Accumulate ``wall_s`` seconds into ``phase``."""
        self._window_spans[phase] = self._window_spans.get(phase, 0.0) + wall_s

    def count(self, name: str, delta: int = 1) -> None:
        """Bump counter ``name`` by ``delta``."""
        if delta:
            self._window_counts[name] = (
                self._window_counts.get(name, 0) + delta
            )

    def gauge_due(self, sim_ns: int) -> bool:
        """Whether the next cadence boundary has been reached."""
        return sim_ns >= self._next_sample_ns

    # -- flushing ----------------------------------------------------------

    def sample(self, sim_ns: int, **gauges) -> None:
        """Flush the window: span/counter deltas plus current gauges."""
        for phase, wall_s in self._window_spans.items():
            self._total_spans[phase] = (
                self._total_spans.get(phase, 0.0) + wall_s
            )
            self.sink.emit(self._event(
                ev.SPAN, phase=phase, wall_s=wall_s, sim_ns=sim_ns,
            ))
        self._window_spans.clear()
        for name, delta in self._window_counts.items():
            self._total_counts[name] = self._total_counts.get(name, 0) + delta
            self.sink.emit(self._event(
                ev.COUNTER, name=name, delta=delta, sim_ns=sim_ns,
            ))
        self._window_counts.clear()
        for name, value in gauges.items():
            self._last_gauges[name] = value
            self.sink.emit(self._event(
                ev.GAUGE, name=name, value=value, sim_ns=sim_ns,
            ))
        if sim_ns >= self._next_sample_ns:
            periods = (sim_ns - self._next_sample_ns) // self.cadence_ns + 1
            self._next_sample_ns += periods * self.cadence_ns

    def finish(self, sim_ns: int, **gauges) -> None:
        """Final flush plus the ``run-end`` event with cumulative totals."""
        total_wall = sum(self._total_spans.values()) + sum(
            self._window_spans.values()
        )
        self.sample(sim_ns, **gauges)
        self.sink.emit(self._event(
            ev.RUN_END,
            sim_ns=sim_ns,
            wall_s=total_wall,
            spans=dict(self._total_spans),
            counters=dict(self._total_counts),
            gauges=dict(self._last_gauges),
        ))

    def _event(self, kind: str, **fields) -> dict:
        return ev.make_event(
            kind, spec=self.spec_hash, engine=self.engine, **fields
        )
