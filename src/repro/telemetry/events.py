"""Telemetry event schema, sinks, and the tolerant JSONL reader.

Every telemetry record is one JSON object on one line with a three-field
envelope — ``v`` (schema version), ``kind``, ``ts`` (unix wall time) —
plus the kind-specific payload described by :data:`EVENT_SCHEMA`
(DESIGN.md §14).  The schema is closed: unknown kinds and unknown fields
are validation errors, so a reader that validates today keeps working on
every file this version wrote.

Two sinks share the ``emit(dict)`` interface:

* :class:`TelemetryWriter` — appends to a JSONL file with single
  ``O_APPEND`` writes (the quarantine-log idiom), so the sweep runner and
  any number of forked workers can interleave events into one file
  without locks; a crash can at worst tear the final line.
* :class:`MemorySink` — an in-process list, for tests and
  ``repro bench --profile``.

:func:`read_events` mirrors the result store's tolerance: torn or
non-JSON lines are counted, not fatal.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

TELEMETRY_VERSION = 1

# Event kinds ---------------------------------------------------------------

CAMPAIGN_START = "campaign-start"
CAMPAIGN_END = "campaign-end"
SPEC_END = "spec-end"
HEARTBEAT_EVENT = "heartbeat"
SPAN = "span"
COUNTER = "counter"
GAUGE = "gauge"
RUN_END = "run-end"

_NUMBER = (int, float)
_OPT_INT = (int, type(None))
_OPT_STR = (str, type(None))

#: kind -> (required fields, optional fields); each maps name -> accepted
#: types.  ``bool`` is excluded from numeric fields explicitly in
#: :func:`validate_event` (it is an ``int`` subclass in Python).
EVENT_SCHEMA: dict[str, tuple[dict, dict]] = {
    CAMPAIGN_START: (
        {"campaign": str, "total_specs": int, "jobs": int},
        {"worker": _OPT_STR},
    ),
    CAMPAIGN_END: (
        {
            "campaign": str,
            "executed": int,
            "cached": int,
            "failed": int,
            "retried": int,
            "quarantined": int,
            "elapsed_s": _NUMBER,
        },
        {"worker": _OPT_STR},
    ),
    SPEC_END: (
        {
            "spec": str,
            "label": str,
            "status": str,
            "attempts": int,
            "elapsed_s": _NUMBER,
            "cached": bool,
        },
        {},
    ),
    HEARTBEAT_EVENT: (
        {"spec": str, "attempt": int, "wall_s": _NUMBER},
        {
            "sim_ns": _OPT_INT,
            "epochs": _OPT_INT,
            "flows_completed": _OPT_INT,
            "rss_bytes": _OPT_INT,
            "worker": _OPT_STR,
        },
    ),
    SPAN: (
        {"engine": str, "phase": str, "wall_s": _NUMBER, "sim_ns": int},
        {"spec": _OPT_STR},
    ),
    COUNTER: (
        {"engine": str, "name": str, "delta": int, "sim_ns": int},
        {"spec": _OPT_STR},
    ),
    GAUGE: (
        {"engine": str, "name": str, "value": _NUMBER, "sim_ns": int},
        {"spec": _OPT_STR},
    ),
    RUN_END: (
        {
            "engine": str,
            "sim_ns": int,
            "wall_s": _NUMBER,
            "spans": dict,
            "counters": dict,
            "gauges": dict,
        },
        {"spec": _OPT_STR},
    ),
}

_ENVELOPE = ("v", "kind", "ts")


def make_event(kind: str, **fields) -> dict:
    """A schema-complete event: envelope plus the kind's payload."""
    return {"v": TELEMETRY_VERSION, "kind": kind, "ts": time.time(), **fields}


def validate_event(event: object) -> list[str]:
    """Problems with ``event`` against the schema; empty list means valid."""
    if not isinstance(event, dict):
        return ["event is not an object"]
    problems = []
    version = event.get("v")
    if version != TELEMETRY_VERSION:
        problems.append(f"v is {version!r}, expected {TELEMETRY_VERSION}")
    ts = event.get("ts")
    if isinstance(ts, bool) or not isinstance(ts, _NUMBER):
        problems.append("ts is not a number")
    kind = event.get("kind")
    if kind not in EVENT_SCHEMA:
        problems.append(f"unknown kind {kind!r}")
        return problems
    required, optional = EVENT_SCHEMA[kind]
    for name, types in required.items():
        if name not in event:
            problems.append(f"{kind}: missing field {name!r}")
        elif not _type_ok(event[name], types):
            problems.append(f"{kind}: field {name!r} has wrong type")
    for name, types in optional.items():
        if name in event and not _type_ok(event[name], types):
            problems.append(f"{kind}: field {name!r} has wrong type")
    known = set(_ENVELOPE) | set(required) | set(optional)
    for name in sorted(set(event) - known):
        problems.append(f"{kind}: unknown field {name!r}")
    return problems


def _type_ok(value: object, types) -> bool:
    if types is bool:
        return isinstance(value, bool)
    if isinstance(value, bool):
        return False  # bool is an int subclass; never a valid number
    return isinstance(value, types)


class TelemetryWriter:
    """Append-only JSONL event sink, safe across forked processes."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def emit(self, event: dict) -> None:
        data = (json.dumps(event, sort_keys=True) + "\n").encode()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)


class MemorySink:
    """List-backed sink for tests and in-process profiling."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def emit(self, event: dict) -> None:
        self.events.append(event)

    def of_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event.get("kind") == kind]


def read_events(path: str | Path) -> tuple[list[dict], int]:
    """All parseable events in a JSONL file plus the torn-line count."""
    events: list[dict] = []
    torn = 0
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                torn += 1
                continue
            if isinstance(event, dict):
                events.append(event)
            else:
                torn += 1
    return events, torn
