"""The streaming-scale benchmark behind ``repro bench --scale``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.perf import BenchFile
from repro.scalebench import format_result, run_scale_bench

SMOKE_FLOWS = 3000


class TestRunScaleBench:
    def test_smoke_run_is_consistent(self):
        result = run_scale_bench(SMOKE_FLOWS)
        assert result.completed
        assert result.completed_flows == SMOKE_FLOWS
        assert result.delivered_bytes == SMOKE_FLOWS * result.flow_bytes
        assert 0 < result.peak_live_flows < SMOKE_FLOWS
        assert result.final_live_flows == 0
        assert result.flows_per_sec > 0
        assert result.epochs_per_sec > 0
        assert result.key == f"heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"
        # Streaming mice stats exist: every flow is a 1000-byte mouse.
        assert result.mice_fct_p99_ns is not None

    def test_format_mentions_the_witnesses(self):
        text = format_result(run_scale_bench(SMOKE_FLOWS))
        assert "flows/s" in text
        assert "in flight" in text
        assert "reservoir" in text

    def test_rejects_bad_flow_count(self):
        with pytest.raises(ValueError, match="num_flows"):
            run_scale_bench(0)

    def test_rotor_engine_runs_bounded(self):
        result = run_scale_bench(SMOKE_FLOWS, engine="rotor")
        assert result.completed
        assert result.completed_flows == SMOKE_FLOWS
        assert result.delivered_bytes == SMOKE_FLOWS * result.flow_bytes
        assert 0 < result.peak_live_flows < SMOKE_FLOWS
        assert result.final_live_flows == 0
        # Rotor baselines live under their own key, so the negotiator
        # trajectory in BENCH_scale.json is never compared against them.
        assert result.key == (
            f"rotor-heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"
        )

    def test_rejects_unknown_engine(self):
        with pytest.raises(ValueError, match="engine"):
            run_scale_bench(SMOKE_FLOWS, engine="semaphore")


class TestScaleBenchCli:
    def test_rotor_engine_via_cli(self, tmp_path, capsys):
        scale_file = str(tmp_path / "BENCH_scale.json")
        code = main([
            "bench", "--scale", "--engine", "rotor",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", scale_file,
            "--budget-s", "120",
            "--record",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rotor-heavy-poisson" in out

    def test_engine_flag_requires_scale(self, capsys):
        assert main(["bench", "--engine", "rotor"]) == 2
        assert "--engine only applies with --scale" in capsys.readouterr().err

    def test_scale_run_records_and_checks(self, tmp_path, capsys):
        scale_file = str(tmp_path / "BENCH_scale.json")
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", scale_file,
            "--budget-s", "120",
            "--update-baseline", "--record",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming scale bench" in out
        entries = BenchFile.load(scale_file).entries
        entry = entries[f"heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"]
        assert entry["baseline"]["completed_flows"] == SMOKE_FLOWS
        assert entry["current"]["peak_live_flows"] < SMOKE_FLOWS

        # --check against its own baseline passes.
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", scale_file,
            "--check", "0.05",
        ])
        assert code == 0

    def test_blown_budget_fails(self, tmp_path, capsys):
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", str(tmp_path / "b.json"),
            "--budget-s", "0.000001",
        ])
        assert code == 1
        assert "wall-clock budget" in capsys.readouterr().err

    def test_check_regression_fails(self, tmp_path, capsys):
        scale_file = tmp_path / "b.json"
        key = f"heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"
        scale_file.write_text(json.dumps({
            "schema": 1,
            "scenarios": {
                "unrelated": {},
                key: {"baseline": {"flows_per_sec": 1e12,
                                   "epochs_per_sec": 1e12}},
            },
        }))
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", str(scale_file),
            "--check", "0.5",
        ])
        assert code == 1
        assert "perf regression" in capsys.readouterr().err

    def test_custom_fabric_single_only(self, capsys):
        code = main([
            "bench", "--scale", "--fabric", "8x2", "--fabric", "16x4",
        ])
        assert code == 2
        assert "single --fabric" in capsys.readouterr().err

    def test_scale_flags_require_scale(self, capsys):
        code = main(["bench", "--flows", "10"])
        assert code == 2
        assert "--flows only applies with --scale" in capsys.readouterr().err
        code = main(["bench", "--scale-file", "other.json"])
        assert code == 2
        assert "--scale-file only applies" in capsys.readouterr().err

    def test_combined_record_and_update_baseline_is_consistent(self, tmp_path):
        scale_file = str(tmp_path / "b.json")
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", scale_file,
            "--update-baseline", "--record",
        ])
        assert code == 0
        entry = BenchFile.load(scale_file).entries[
            f"heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"
        ]
        # Baseline and current come from the same run, so the recorded
        # speedup must be exactly 1.0 — not a ratio vs a stale baseline.
        assert entry["baseline"] == entry["current"]
        assert entry["speedup"] == 1.0

    def test_hotpath_flags_rejected_with_scale(self, capsys):
        code = main(["bench", "--scale", "--scenario", "sparse"])
        assert code == 2
        assert "--scenario" in capsys.readouterr().err
        code = main(["bench", "--scale", "--bench-file", "other.json"])
        assert code == 2
        assert "--scale-file" in capsys.readouterr().err

    def test_bad_flow_count_exits_cleanly(self, capsys):
        code = main(["bench", "--scale", "--flows", "0"])
        assert code == 2
        assert "num_flows must be positive" in capsys.readouterr().err

    def test_recorded_speedup_tracks_flows_per_sec(self, tmp_path):
        scale_file = tmp_path / "b.json"
        key = f"heavy-poisson/t8p2/f{SMOKE_FLOWS}/l0.5/b1000"
        # A baseline twice as fast in flows/sec but equal in epochs/sec:
        # the recorded speedup must follow the flows/sec gate (~0.5), not
        # BenchFile's epochs/sec default.
        probe = run_scale_bench(SMOKE_FLOWS)
        scale_file.write_text(json.dumps({
            "schema": 1,
            "scenarios": {key: {"baseline": {
                "flows_per_sec": 2.0 * probe.flows_per_sec,
                "epochs_per_sec": probe.epochs_per_sec,
            }}},
        }))
        code = main([
            "bench", "--scale",
            "--flows", str(SMOKE_FLOWS),
            "--scale-file", str(scale_file),
            "--record",
        ])
        assert code == 0
        entry = BenchFile.load(str(scale_file)).entries[key]
        assert entry["speedup"] < 0.9
