"""Tests for the per-epoch stats recorder."""

import pytest

from repro import (
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    all_to_all_workload,
)
from repro.sim.observability import EpochStats, EpochStatsRecorder


def make_sim(flows):
    config = SimConfig(
        num_tors=8, ports_per_tor=2, uplink_gbps=100.0, host_aggregate_gbps=100.0
    )
    return NegotiaToRSimulator(config, ParallelNetwork(8, 2), flows)


class TestRecorder:
    def test_series_and_len(self):
        recorder = EpochStatsRecorder()
        for epoch in range(3):
            recorder.record(
                EpochStats(
                    epoch=epoch, active_pairs=epoch, requests_sent=1,
                    matches=2, matched_pairs=2, queued_bytes=100,
                )
            )
        assert len(recorder) == 3
        assert list(recorder.series("active_pairs")) == [0, 1, 2]

    def test_steady_state_mean_skips_warmup(self):
        recorder = EpochStatsRecorder()
        for epoch, value in enumerate([100, 100, 10, 10]):
            recorder.record(
                EpochStats(
                    epoch=epoch, active_pairs=value, requests_sent=0,
                    matches=0, matched_pairs=0, queued_bytes=0,
                )
            )
        assert recorder.steady_state_mean("active_pairs", warmup_epochs=2) == 10

    def test_steady_state_requires_epochs(self):
        with pytest.raises(ValueError):
            EpochStatsRecorder().steady_state_mean("matches")

    def test_summary_requires_epochs(self):
        with pytest.raises(ValueError):
            EpochStatsRecorder().summary()

    def test_port_utilization(self):
        entry = EpochStats(
            epoch=0, active_pairs=4, requests_sent=4, matches=2,
            matched_pairs=2, queued_bytes=0,
        )
        assert entry.port_utilization == pytest.approx(0.5)
        idle = EpochStats(
            epoch=0, active_pairs=0, requests_sent=0, matches=0,
            matched_pairs=0, queued_bytes=0,
        )
        assert idle.port_utilization is None


class TestEngineIntegration:
    def test_engine_populates_recorder(self):
        recorder = EpochStatsRecorder()
        sim = make_sim(all_to_all_workload(8, flow_bytes=50_000))
        sim.attach_stats_recorder(recorder)
        for _ in range(10):
            sim.step_epoch()
        assert len(recorder) == 10
        # From epoch 2 the pipeline produces matches for the backlog.
        assert recorder.series("matches")[3] > 0
        assert recorder.series("requests_sent")[0] > 0
        summary = recorder.summary()
        assert summary["epochs"] == 10
        assert summary["total_scheduled_bytes"] > 0
        assert summary["total_piggybacked_bytes"] > 0

    def test_byte_split_matches_tracker(self):
        recorder = EpochStatsRecorder()
        flow = Flow(fid=0, src=0, dst=1, size_bytes=100_000, arrival_ns=-1.0)
        sim = make_sim([flow])
        sim.attach_stats_recorder(recorder)
        sim.run_until_complete(max_ns=10_000_000)
        recorded = recorder.summary()
        total = (
            recorded["total_piggybacked_bytes"]
            + recorded["total_scheduled_bytes"]
        )
        assert total == sim.tracker.delivered_bytes

    def test_queue_drain_visible_in_series(self):
        recorder = EpochStatsRecorder()
        sim = make_sim(all_to_all_workload(8, flow_bytes=20_000))
        sim.attach_stats_recorder(recorder)
        sim.run_until_complete(max_ns=10_000_000)
        queued = recorder.series("queued_bytes")
        assert queued[0] > 0
        assert queued[-1] == 0
