"""The demand-aware adaptive baseline: estimation, matching, residual duty.

The engine's defining invariants (DESIGN.md section 16):

* **Demand tracking** — flow arrivals feed a per-(src, dst) observation
  window that folds into an EWMA estimate at each recompute; the greedy
  matching pins circuits on the heaviest feasible entries, so a persistent
  hot pair holds its circuit across recomputes and receives more direct
  service than under the rotor's blind rotation.
* **Feasibility** — every circuit the matching emits is physically
  realizable: on thin-clos an ordered pair is only ever assigned to its
  ``data_port`` plane.
* **Rotating residual duty** — ``residual_ports`` planes per cycle ride
  the predefined rotation and the duty rotates across planes, so over
  ``ports_per_tor`` cycles every plane (hence every ordered pair) gets
  round-robin coverage and no pair starves, whatever the matching does.
* **Reconfiguration penalty** — ports whose assignment changed go dark
  for ``reconfiguration_delay_ns``; unchanged circuits pay nothing.
* **Determinism** — identical construction yields bit-identical runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import MICRO, make_topology, sim_config
from repro.sim.adaptive import AdaptiveSimulator
from repro.sim.config import (
    AdaptiveConfig,
    EpochConfig,
    RotorConfig,
    transmit_ns,
)
from repro.sim.failures import (
    Direction,
    FailurePlan,
    LinkFailureModel,
    LinkRef,
)
from repro.sim.flows import Flow
from repro.sim.rotor import RotorSimulator

NUM_TORS = MICRO.num_tors
PORTS = MICRO.ports_per_tor


def _sim(flows, *, topology="thinclos", adaptive=None, pq=True, **kwargs):
    return AdaptiveSimulator(
        sim_config(MICRO, priority_queue_enabled=pq),
        make_topology(MICRO, topology),
        flows,
        adaptive=adaptive,
        **kwargs,
    )


def _all_pairs_flows(size_bytes: int) -> list[Flow]:
    flows = []
    fid = 0
    for src in range(NUM_TORS):
        for dst in range(NUM_TORS):
            if src != dst:
                flows.append(Flow(fid, src, dst, size_bytes, 0.0))
                fid += 1
    return flows


# ---------------------------------------------------------------------------
# adaptive config
# ---------------------------------------------------------------------------


class TestAdaptiveConfig:
    def test_defaults_validate(self):
        adaptive = AdaptiveConfig()
        assert adaptive.packets_per_slice > 0
        assert 0 < adaptive.ewma_alpha <= 1
        assert adaptive.recompute_slices > 0
        assert adaptive.residual_ports >= 0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="packets_per_slice"):
            AdaptiveConfig(packets_per_slice=0)
        with pytest.raises(ValueError, match="reconfiguration_delay_ns"):
            AdaptiveConfig(reconfiguration_delay_ns=-1.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            AdaptiveConfig(ewma_alpha=0.0)
        with pytest.raises(ValueError, match="ewma_alpha"):
            AdaptiveConfig(ewma_alpha=1.5)
        with pytest.raises(ValueError, match="recompute_slices"):
            AdaptiveConfig(recompute_slices=0)
        with pytest.raises(ValueError, match="residual_ports"):
            AdaptiveConfig(residual_ports=-1)

    def test_slice_timing(self):
        epoch = EpochConfig()
        adaptive = AdaptiveConfig(packets_per_slice=10)
        tx = transmit_ns(
            epoch.data_header_bytes + epoch.data_payload_bytes, 100.0
        )
        assert adaptive.slice_ns(epoch, 100.0) == 10 * tx

    def test_residual_ports_capped_by_fabric(self):
        with pytest.raises(ValueError, match="residual_ports"):
            _sim([], adaptive=AdaptiveConfig(residual_ports=PORTS + 1))


# ---------------------------------------------------------------------------
# rotating residual duty
# ---------------------------------------------------------------------------


class TestResidualDuty:
    def test_exactly_residual_ports_planes_on_duty_each_cycle(self):
        sim = _sim([], adaptive=AdaptiveConfig(residual_ports=1))
        for cycle in range(3 * PORTS):
            on_duty = [
                port
                for port in range(PORTS)
                if sim.residual_in_cycle(port, cycle)
            ]
            assert len(on_duty) == 1, (cycle, on_duty)

    def test_duty_rotates_over_every_plane(self):
        sim = _sim([], adaptive=AdaptiveConfig(residual_ports=1))
        for port in range(PORTS):
            cycles = [
                cycle
                for cycle in range(PORTS)
                if sim.residual_in_cycle(port, cycle)
            ]
            assert len(cycles) == 1, (port, cycles)

    def test_residual_ports_equal_to_fabric_means_always_on_duty(self):
        sim = _sim([], adaptive=AdaptiveConfig(residual_ports=PORTS))
        assert all(
            sim.residual_in_cycle(port, cycle)
            for port in range(PORTS)
            for cycle in range(3 * PORTS)
        )

    def test_no_pair_starves_on_thinclos(self):
        """The anti-starvation contract: with the default residual duty,
        every ordered pair — including intra-group pairs pinned to a plane
        the matching may never grant them — eventually completes."""
        flows = _all_pairs_flows(50_000)
        sim = _sim(flows)
        assert sim.run_until_complete(max_ns=100 * MICRO.duration_ns)
        assert sim.tracker.all_complete

    def test_no_pair_starves_on_parallel(self):
        flows = _all_pairs_flows(50_000)
        sim = _sim(flows, topology="parallel")
        assert sim.run_until_complete(max_ns=100 * MICRO.duration_ns)
        assert sim.tracker.all_complete


# ---------------------------------------------------------------------------
# demand tracking and feasibility
# ---------------------------------------------------------------------------


class TestDemandTracking:
    def test_ewma_estimate_tracks_arrivals(self):
        adaptive = AdaptiveConfig(recompute_slices=1, ewma_alpha=0.25)
        flows = [Flow(0, 0, 1, 100_000, 0.0)]
        sim = _sim(flows, adaptive=adaptive)
        assert sim.estimated_demand(0, 1) == 0.0
        sim.step_slice()  # injects, then folds the window at the recompute
        assert sim.estimated_demand(0, 1) == pytest.approx(0.25 * 100_000)
        sim.step_slice()  # empty window decays the estimate
        assert sim.estimated_demand(0, 1) == pytest.approx(
            0.75 * 0.25 * 100_000
        )

    def test_matching_pins_hot_pair_to_its_data_port(self):
        """Feasibility: on thin-clos the circuit for a pair lands on the
        pair's single reachable plane, never anywhere else."""
        adaptive = AdaptiveConfig(recompute_slices=1)
        src, dst = 0, 1
        flows = [Flow(0, src, dst, 10_000_000, 0.0)]
        sim = _sim(flows, adaptive=adaptive)
        sim.step_slice()
        plane = sim.topology.data_port(src, dst)
        assert plane is not None
        assert sim.schedule_peer(src, plane) == dst
        for port in range(PORTS):
            if port != plane:
                assert sim.schedule_peer(src, port) != dst

    def test_hot_pair_keeps_circuit_across_recomputes(self):
        """A persistently heaviest pair pays the reconfiguration delay
        once: later recomputes leave its port untouched."""
        adaptive = AdaptiveConfig(recompute_slices=1)
        flows = [Flow(0, 0, 1, 10_000_000, 0.0)]
        sim = _sim(flows, adaptive=adaptive)
        for _ in range(8):
            sim.step_slice()
        assert sim.recomputes == 8
        # One port lit once for the (0, 1) circuit; nothing else changed.
        assert sim.reconfigured_ports == 1

    def test_hot_pair_gets_more_capacity_than_under_rotor(self):
        """The demand-tracking property this engine exists for: on a
        skewed matrix the hot pair sees more direct service than the
        rotor's one-slot-per-cycle rotation grants it."""
        size = 50_000_000
        horizon = MICRO.duration_ns

        def delivered(engine):
            flows = [Flow(0, 0, 1, size, 0.0)]
            if engine == "adaptive":
                sim = _sim(flows, pq=False)
            else:
                sim = RotorSimulator(
                    sim_config(MICRO, priority_queue_enabled=False),
                    make_topology(MICRO, "thinclos"),
                    flows,
                    rotor=RotorConfig(vlb_relay=False),
                )
            sim.run(horizon)
            return sim.tracker.delivered_bytes

        assert delivered("adaptive") > 2 * delivered("rotor")


# ---------------------------------------------------------------------------
# reconfiguration penalty
# ---------------------------------------------------------------------------


class TestReconfigurationPenalty:
    def test_fresh_circuit_loses_leading_packet_opportunities(self):
        """A port that just changed assignment goes dark for the delay;
        with the delay spanning half the slice, the first slice delivers
        about half of an undelayed slice's packets."""
        epoch = EpochConfig()
        tx = transmit_ns(
            epoch.data_header_bytes + epoch.data_payload_bytes,
            sim_config(MICRO).uplink_gbps,
        )
        budget = 16
        results = {}
        for delay in (0.0, (budget // 2) * tx):
            adaptive = AdaptiveConfig(
                recompute_slices=1,
                packets_per_slice=budget,
                reconfiguration_delay_ns=delay,
                residual_ports=0,
            )
            flows = [Flow(0, 0, 1, 10_000_000, 0.0)]
            sim = _sim(flows, adaptive=adaptive, pq=False)
            sim.step_slice()
            results[delay] = sim.tracker.delivered_bytes
        free, penalized = results.values()
        assert free == budget * sim.payload_bytes
        assert penalized == (budget - budget // 2) * sim.payload_bytes


# ---------------------------------------------------------------------------
# failures
# ---------------------------------------------------------------------------


class TestFailures:
    def test_repair_restores_service(self):
        flows = [Flow(0, 0, 1, 500_000, 0.0)]
        port = make_topology(MICRO, "thinclos").data_port(0, 1)
        model = LinkFailureModel(NUM_TORS, PORTS)
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(0, port, Direction.EGRESS))
        repair_ns = 20_000.0
        plan.add_repair(repair_ns, LinkRef(0, port, Direction.EGRESS))
        sim = _sim(flows, failure_model=model, failure_plan=plan)
        sim.run(repair_ns)
        assert sim.tracker.delivered_bytes == 0
        assert sim.run_until_complete(max_ns=100 * MICRO.duration_ns)
        assert sim.tracker.delivered_bytes == 500_000

    def test_completes_under_transient_failures(self):
        flows = _all_pairs_flows(50_000)
        model = LinkFailureModel(NUM_TORS, PORTS)
        plan = FailurePlan()
        plan.add_failure(0.0, LinkRef(0, 0, Direction.EGRESS))
        plan.add_failure(5_000.0, LinkRef(3, 1, Direction.INGRESS))
        plan.add_repair(60_000.0, LinkRef(0, 0, Direction.EGRESS))
        plan.add_repair(60_000.0, LinkRef(3, 1, Direction.INGRESS))
        sim = _sim(flows, failure_model=model, failure_plan=plan)
        assert sim.run_until_complete(max_ns=200 * MICRO.duration_ns)
        assert sim.tracker.all_complete


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------


def test_identical_runs_are_bit_identical():
    def run():
        flows = _all_pairs_flows(100_000)
        sim = _sim(flows)
        sim.run(MICRO.duration_ns)
        return sim.summary(MICRO.duration_ns)

    first, second = run(), run()
    assert first == second
