"""Tests for the fault-tolerant execution layer (repro.sweep.resilience).

The load-bearing properties:

* retry schedules are a pure function of the grid — deterministic
  backoff + jitter from the spec hash;
* worker crashes and hangs cost only the in-flight spec: the pool
  respawns the worker, retries per policy, and the rest of the grid
  completes bit-identically;
* specs that exhaust retries land in the quarantine sidecar with their
  traceback, and ``on_error`` picks fail/skip/quarantine semantics.
"""

from __future__ import annotations

import json

import pytest

from repro.sweep import (
    NO_RETRY,
    ChaosPlan,
    Fault,
    QuarantineLog,
    ResultStore,
    RetryPolicy,
    RunSpec,
    SpecOutcome,
    SweepExecutionError,
    SweepRunner,
    default_quarantine_path,
    execute_spec,
)
from repro.sweep.chaos import CHAOS_ENV
from repro.sweep.resilience import Attempt

SHORT_NS = 150_000.0


def tiny_spec(**overrides) -> RunSpec:
    base = dict(scale="tiny", load=0.25, seed=2024, duration_ns=SHORT_NS)
    base.update(overrides)
    return RunSpec(**base)


def grid(n: int = 4) -> list[RunSpec]:
    seeds = (2024, 7, 99, 5, 13, 21, 34, 55)
    return [tiny_spec(seed=seeds[i]) for i in range(n)]


def set_chaos(monkeypatch, *faults: Fault) -> None:
    monkeypatch.setenv(
        CHAOS_ENV, ChaosPlan.from_faults(faults).to_json()
    )


FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=0.01, jitter_frac=0.1)


# ---------------------------------------------------------------------------
# retry policy
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_delay_is_deterministic_per_spec_and_attempt(self):
        policy = RetryPolicy()
        h = tiny_spec().content_hash
        assert policy.delay_s(1, h) == policy.delay_s(1, h)
        # Different attempts and different specs jitter differently.
        assert policy.delay_s(1, h) != policy.delay_s(2, h)
        other = tiny_spec(seed=7).content_hash
        assert policy.delay_s(1, h) != policy.delay_s(1, other)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=10,
            backoff_base_s=1.0,
            backoff_factor=2.0,
            max_backoff_s=4.0,
            jitter_frac=0.0,
        )
        h = tiny_spec().content_hash
        assert policy.delay_s(1, h) == 1.0
        assert policy.delay_s(2, h) == 2.0
        assert policy.delay_s(3, h) == 4.0
        assert policy.delay_s(4, h) == 4.0  # capped

    def test_jitter_bounded_by_fraction(self):
        policy = RetryPolicy(
            backoff_base_s=1.0, jitter_frac=0.25, max_backoff_s=100.0
        )
        for seed in range(20):
            delay = policy.delay_s(1, tiny_spec(seed=seed).content_hash)
            assert 1.0 <= delay <= 1.25

    def test_invalid_policies_rejected(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError, match="attempt numbers"):
            RetryPolicy().delay_s(0, "abc")

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------


class TestSpecOutcome:
    def test_from_attempts_takes_last_status_and_error(self):
        outcome = SpecOutcome.from_attempts(
            "abc",
            [
                Attempt("crashed", 1.0, "worker crashed (exit code 9)"),
                Attempt("failed", 2.0, "ValueError: nope", "traceback..."),
            ],
        )
        assert outcome.status == "failed"
        assert outcome.attempts == 2
        assert outcome.elapsed_s == (1.0, 2.0)
        assert outcome.attempt_statuses == ("crashed", "failed")
        assert outcome.error == "ValueError: nope"
        assert not outcome.ok
        # JSON-able for the quarantine sidecar.
        assert json.loads(json.dumps(outcome.to_dict())) == outcome.to_dict()


# ---------------------------------------------------------------------------
# serial retry semantics (in-process)
# ---------------------------------------------------------------------------


class TestSerialResilience:
    def test_transient_raise_retries_to_success(self, monkeypatch):
        spec = tiny_spec()
        set_chaos(
            monkeypatch,
            Fault(match=spec.content_hash, kind="raise", attempts=(1,)),
        )
        runner = SweepRunner(retry=FAST_RETRY)
        results = runner.run([spec])
        outcome = runner.outcomes[spec.content_hash]
        assert outcome.ok
        assert outcome.attempts == 2
        assert outcome.attempt_statuses == ("failed", "ok")
        monkeypatch.delenv(CHAOS_ENV)
        reference = execute_spec(spec)
        assert results[spec.content_hash].to_dict() == reference.to_dict()

    def test_default_serial_failure_reraises_original_exception(self):
        # The legacy contract: no retry, on_error="fail" -> the original
        # exception type propagates unchanged.
        bad = tiny_spec(collect=("nonexistent",))
        with pytest.raises(ValueError, match="collect"):
            SweepRunner().run([bad])

    def test_skip_mode_completes_rest_of_grid(self, monkeypatch):
        specs = grid(3)
        set_chaos(
            monkeypatch, Fault(match=specs[1].content_hash, kind="raise")
        )
        runner = SweepRunner(on_error="skip", retry=FAST_RETRY)
        results = runner.run(specs)
        assert set(results) == {
            specs[0].content_hash, specs[2].content_hash,
        }
        outcome = runner.outcomes[specs[1].content_hash]
        assert outcome.status == "failed"
        assert outcome.attempts == FAST_RETRY.max_attempts
        assert "ChaosError" in outcome.error
        assert runner.failed_hashes() == {specs[1].content_hash}

    def test_quarantine_mode_writes_sidecar(self, monkeypatch, tmp_path):
        specs = grid(2)
        set_chaos(
            monkeypatch, Fault(match=specs[0].content_hash, kind="raise")
        )
        store = ResultStore(tmp_path / "sweep.jsonl")
        runner = SweepRunner(
            store=store, on_error="quarantine", retry=FAST_RETRY
        )
        results = runner.run(specs)
        assert set(results) == {specs[1].content_hash}
        assert runner.quarantine.path == tmp_path / "sweep.quarantine.jsonl"
        rows = runner.quarantine.rows()
        assert len(rows) == 1
        row = rows[0]
        assert row["spec_hash"] == specs[0].content_hash
        assert row["status"] == "failed"
        assert "ChaosError" in row["traceback"]
        # The full spec rides along, so the quarantined point can re-run.
        assert RunSpec.from_dict(row["spec"]) == specs[0]
        # The healthy spec landed in the store; the poisoned one did not.
        assert store.completed_hashes() == {specs[1].content_hash}

    def test_quarantine_without_store_needs_explicit_path(self, tmp_path):
        with pytest.raises(ValueError, match="quarantine"):
            SweepRunner(on_error="quarantine")
        runner = SweepRunner(
            on_error="quarantine", quarantine=str(tmp_path / "q.jsonl")
        )
        assert runner.quarantine.path == tmp_path / "q.jsonl"

    def test_unknown_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            SweepRunner(on_error="explode")

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout_s"):
            SweepRunner(timeout_s=0)


# ---------------------------------------------------------------------------
# the worker pool: crashes, hangs, containment
# ---------------------------------------------------------------------------


class TestWorkerPoolResilience:
    def test_worker_crash_retries_and_matches_clean_run(self, monkeypatch):
        """An os._exit mid-spec (segfault stand-in) costs one attempt of
        one spec; the result after retry is bit-identical to a clean run."""
        specs = grid(4)
        victim = specs[2]
        clean = SweepRunner(jobs=1).run(specs)
        set_chaos(
            monkeypatch,
            Fault(match=victim.content_hash, kind="exit", attempts=(1,)),
        )
        runner = SweepRunner(jobs=2, timeout_s=120.0, retry=FAST_RETRY)
        results = runner.run(specs)
        outcome = runner.outcomes[victim.content_hash]
        assert outcome.attempt_statuses == ("crashed", "ok")
        for spec in specs:
            assert (
                results[spec.content_hash].to_dict()
                == clean[spec.content_hash].to_dict()
            )

    def test_permanent_crash_quarantines_not_aborts(
        self, monkeypatch, tmp_path
    ):
        specs = grid(4)
        victim = specs[0]
        set_chaos(monkeypatch, Fault(match=victim.content_hash, kind="exit"))
        store = ResultStore(tmp_path / "s.jsonl")
        runner = SweepRunner(
            jobs=2,
            store=store,
            timeout_s=120.0,
            retry=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
            on_error="quarantine",
        )
        results = runner.run(specs)
        assert len(results) == 3
        outcome = runner.outcomes[victim.content_hash]
        assert outcome.status == "crashed"
        assert outcome.attempts == 2
        assert "exit code" in outcome.error
        assert runner.quarantine.hashes() == {victim.content_hash}

    def test_hung_worker_killed_at_timeout(self, monkeypatch):
        specs = grid(3)
        victim = specs[1]
        set_chaos(monkeypatch, Fault(match=victim.content_hash, kind="hang"))
        runner = SweepRunner(jobs=2, timeout_s=1.5, on_error="skip")
        results = runner.run(specs)
        assert set(results) == {
            specs[0].content_hash, specs[2].content_hash,
        }
        outcome = runner.outcomes[victim.content_hash]
        assert outcome.status == "timed-out"
        assert "timed out" in outcome.error
        # The kill cost a worker: the pool respawned at least one.
        assert outcome.elapsed_s[0] >= 1.4

    def test_pool_failure_raises_sweep_execution_error(self, monkeypatch):
        specs = grid(2)
        set_chaos(
            monkeypatch, Fault(match=specs[0].content_hash, kind="raise")
        )
        runner = SweepRunner(jobs=2, timeout_s=120.0)
        with pytest.raises(SweepExecutionError) as err:
            runner.run(specs)
        assert err.value.spec == specs[0]
        assert err.value.outcome.status == "failed"
        assert "ChaosError" in err.value.outcome.traceback

    def test_timeout_forces_pool_even_at_jobs_1(self, monkeypatch):
        """timeout_s must be enforceable, so jobs=1 routes through a
        one-worker pool instead of the in-process serial loop."""
        spec = tiny_spec()
        set_chaos(monkeypatch, Fault(match=spec.content_hash, kind="hang"))
        runner = SweepRunner(jobs=1, timeout_s=1.0, on_error="skip")
        results = runner.run([spec])
        assert results == {}
        assert runner.outcomes[spec.content_hash].status == "timed-out"

    def test_pool_results_bit_identical_and_stored(self, tmp_path):
        """The resilient pool preserves the determinism contract."""
        specs = grid(5)
        serial = SweepRunner(jobs=1).run(specs)
        store = ResultStore(tmp_path / "s.jsonl")
        runner = SweepRunner(jobs=3, store=store, retry=FAST_RETRY)
        pooled = runner.run(specs)
        assert runner.executed == len(specs)
        for spec_hash, summary in serial.items():
            assert pooled[spec_hash].to_dict() == summary.to_dict()
            assert store.load()[spec_hash].to_dict() == summary.to_dict()
        assert all(o.ok and o.attempts == 1 for o in runner.outcomes.values())


# ---------------------------------------------------------------------------
# the quarantine log
# ---------------------------------------------------------------------------


class TestQuarantineLog:
    def test_roundtrip_and_torn_line_tolerance(self, tmp_path):
        log = QuarantineLog(tmp_path / "q.jsonl")
        spec = tiny_spec()
        outcome = SpecOutcome.from_attempts(
            spec.content_hash,
            [Attempt("failed", 0.5, "RuntimeError: boom", "tb")],
        )
        log.put(spec, outcome)
        with log.path.open("a") as handle:
            handle.write('{"torn": ')
        rows = log.rows()
        assert len(rows) == 1
        assert rows[0]["error"] == "RuntimeError: boom"
        assert log.hashes() == {spec.content_hash}

    def test_missing_file_is_empty(self, tmp_path):
        assert QuarantineLog(tmp_path / "absent.jsonl").rows() == []

    def test_default_path_derivation(self):
        assert (
            str(default_quarantine_path("results/sweep.jsonl"))
            == "results/sweep.quarantine.jsonl"
        )
