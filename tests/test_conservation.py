"""Byte-conservation invariant across all four engines.

At every epoch (NegotiaToR), slot (oblivious), or slice (rotor, adaptive)
boundary, every byte a flow has injected must be accounted for exactly
once::

    bytes injected == bytes delivered + bytes still queued in the network

where "queued" includes the oblivious baseline's staged and relay buffers
and the rotor's direct and relay buffers (``total_queued_bytes`` spans
them all); the adaptive engine is one-hop, so its source queues are the
whole fabric and the invariant additionally pins its schedule
reconfiguration (tested with a recompute at every slice boundary).  The engines maintain the queued total incrementally on the hot
path (DESIGN.md section 6), so this test also guards that bookkeeping
against drift — a single dropped or double-counted segment anywhere in the
delivery paths breaks the equality.

Randomized traces over several seeds, loads, and scenario shapes; stepped
manually (no fast-forward) so the invariant is checked at every boundary.
"""

from __future__ import annotations

import random

import pytest

from repro.experiments.common import MICRO, make_topology, sim_config
from repro.sweep import RunSpec, build_workload, scale_spec_fields
from repro.sim.adaptive import AdaptiveSimulator
from repro.sim.config import AdaptiveConfig, RotorConfig
from repro.sim.network import NegotiaToRSimulator
from repro.sim.oblivious import ObliviousSimulator
from repro.sim.rotor import RotorSimulator

DURATION_NS = 60_000.0


def _randomized_flows(scenario: str, seed: int, load: float):
    spec = RunSpec(
        **scale_spec_fields(MICRO),
        scenario=scenario,
        scenario_params=(
            {"mean_on_ns": 10_000.0, "mean_off_ns": 20_000.0}
            if scenario == "bursty"
            else {}
        ),
        load=load,
        seed=seed,
        duration_ns=DURATION_NS,
    )
    return build_workload(spec, MICRO)


def _injected_bytes(flows, now_ns: float) -> int:
    return sum(f.size_bytes for f in flows if f.arrival_ns <= now_ns)


CASES = [
    ("poisson", 1, 1.0),
    ("poisson", 2, 0.5),
    ("hotspot", 3, 1.0),
    ("bursty", 4, 0.8),
    ("permutation", 5, 1.0),
]


@pytest.mark.parametrize("scenario,seed,load", CASES)
def test_negotiator_conserves_bytes_at_every_epoch(scenario, seed, load):
    flows = _randomized_flows(scenario, seed, load)
    assert flows, "empty workload would make the test vacuous"
    sim = NegotiaToRSimulator(
        sim_config(MICRO), make_topology(MICRO, "parallel"), flows
    )
    boundaries = 0
    while sim.now_ns < DURATION_NS:
        sim.step_epoch()
        injected = _injected_bytes(sim.tracker.flows, sim.now_ns)
        accounted = sim.tracker.delivered_bytes + sim.total_queued_bytes
        assert accounted == injected, (
            f"epoch {sim.epoch}: injected {injected} != delivered "
            f"{sim.tracker.delivered_bytes} + queued {sim.total_queued_bytes}"
        )
        boundaries += 1
    assert boundaries > 10
    assert sim.tracker.delivered_bytes > 0


@pytest.mark.parametrize("scenario,seed,load", CASES)
def test_oblivious_conserves_bytes_at_every_slot(scenario, seed, load):
    flows = _randomized_flows(scenario, seed, load)
    sim = ObliviousSimulator(
        sim_config(MICRO), make_topology(MICRO, "thinclos"), flows
    )
    boundaries = 0
    while sim.now_ns < DURATION_NS:
        # The oblivious engine injects at slot *start*; bytes arriving
        # mid-slot enter the network at the next boundary.
        boundary_ns = sim.now_ns
        sim.step_slot()
        injected = _injected_bytes(sim.tracker.flows, boundary_ns)
        accounted = sim.tracker.delivered_bytes + sim.total_queued_bytes
        assert accounted == injected, (
            f"slot at {sim.now_ns:.0f} ns: injected {injected} != delivered "
            f"{sim.tracker.delivered_bytes} + queued {sim.total_queued_bytes}"
        )
        boundaries += 1
    assert boundaries > 10
    assert sim.tracker.delivered_bytes > 0


@pytest.mark.parametrize("vlb_relay", [True, False])
@pytest.mark.parametrize("scenario,seed,load", CASES)
def test_rotor_conserves_bytes_at_every_slice(scenario, seed, load, vlb_relay):
    flows = _randomized_flows(scenario, seed, load)
    sim = RotorSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "thinclos"),
        flows,
        rotor=RotorConfig(vlb_relay=vlb_relay),
    )
    boundaries = 0
    while sim.now_ns < DURATION_NS:
        # The rotor injects at slice *start*; bytes arriving mid-slice
        # enter the network at the next boundary.
        boundary_ns = sim.now_ns
        sim.step_slice()
        injected = _injected_bytes(sim.tracker.flows, boundary_ns)
        accounted = sim.tracker.delivered_bytes + sim.total_queued_bytes
        assert accounted == injected, (
            f"slice at {sim.now_ns:.0f} ns: injected {injected} != delivered "
            f"{sim.tracker.delivered_bytes} + queued {sim.total_queued_bytes}"
        )
        boundaries += 1
    assert boundaries > 10
    assert sim.tracker.delivered_bytes > 0


@pytest.mark.parametrize("recompute_slices", [1, 4])
@pytest.mark.parametrize("scenario,seed,load", CASES)
def test_adaptive_conserves_bytes_at_every_slice(
    scenario, seed, load, recompute_slices
):
    """Conservation across reconfiguration boundaries: recompute_slices=1
    re-matches at *every* slice, so every boundary the invariant is checked
    at is also a schedule-recomputation (and potential port-darkening)
    boundary."""
    flows = _randomized_flows(scenario, seed, load)
    sim = AdaptiveSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "thinclos"),
        flows,
        adaptive=AdaptiveConfig(recompute_slices=recompute_slices),
    )
    boundaries = 0
    while sim.now_ns < DURATION_NS:
        # The adaptive engine injects at slice *start*; bytes arriving
        # mid-slice enter the network at the next boundary.
        boundary_ns = sim.now_ns
        sim.step_slice()
        injected = _injected_bytes(sim.tracker.flows, boundary_ns)
        accounted = sim.tracker.delivered_bytes + sim.total_queued_bytes
        assert accounted == injected, (
            f"slice at {sim.now_ns:.0f} ns: injected {injected} != delivered "
            f"{sim.tracker.delivered_bytes} + queued {sim.total_queued_bytes}"
        )
        boundaries += 1
    assert boundaries > 10
    assert sim.tracker.delivered_bytes > 0
    assert sim.recomputes > 0


def test_adaptive_conservation_survives_link_failures():
    """Failures drop transmissions, never bytes — including on circuits
    that reconfigure while their link is down."""
    from repro.sim.failures import (
        Direction,
        FailurePlan,
        LinkFailureModel,
        LinkRef,
    )

    flows = _randomized_flows("hotspot", 8, 1.0)
    plan = FailurePlan()
    plan.add_failure(5_000.0, LinkRef(0, 0, Direction.EGRESS))
    plan.add_failure(10_000.0, LinkRef(1, 1, Direction.INGRESS))
    plan.add_repair(40_000.0, LinkRef(0, 0, Direction.EGRESS))
    model = LinkFailureModel(MICRO.num_tors, MICRO.ports_per_tor)
    sim = AdaptiveSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "thinclos"),
        flows,
        adaptive=AdaptiveConfig(recompute_slices=1),
        failure_model=model,
        failure_plan=plan,
    )
    while sim.now_ns < DURATION_NS:
        boundary_ns = sim.now_ns
        sim.step_slice()
        injected = _injected_bytes(sim.tracker.flows, boundary_ns)
        assert (
            sim.tracker.delivered_bytes + sim.total_queued_bytes == injected
        )
    assert sim.tracker.delivered_bytes > 0


def test_rotor_conservation_survives_link_failures():
    """Failed slices drop transmissions, never bytes: equality must hold."""
    from repro.sim.failures import (
        Direction,
        FailurePlan,
        LinkFailureModel,
        LinkRef,
    )

    flows = _randomized_flows("poisson", 7, 1.0)
    plan = FailurePlan()
    plan.add_failure(5_000.0, LinkRef(0, 0, Direction.EGRESS))
    plan.add_failure(10_000.0, LinkRef(1, 1, Direction.INGRESS))
    plan.add_repair(40_000.0, LinkRef(0, 0, Direction.EGRESS))
    model = LinkFailureModel(MICRO.num_tors, MICRO.ports_per_tor)
    sim = RotorSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "thinclos"),
        flows,
        failure_model=model,
        failure_plan=plan,
    )
    while sim.now_ns < DURATION_NS:
        boundary_ns = sim.now_ns
        sim.step_slice()
        injected = _injected_bytes(sim.tracker.flows, boundary_ns)
        assert (
            sim.tracker.delivered_bytes + sim.total_queued_bytes == injected
        )
    assert sim.tracker.delivered_bytes > 0


def test_negotiator_conservation_survives_link_failures():
    """Failures drop matches, never bytes: the equality must still hold."""
    from repro.sim.failures import (
        Direction,
        FailurePlan,
        LinkFailureModel,
        LinkRef,
    )

    flows = _randomized_flows("poisson", 6, 1.0)
    plan = FailurePlan()
    plan.add_failure(5_000.0, LinkRef(0, 0, Direction.EGRESS))
    plan.add_failure(10_000.0, LinkRef(1, 1, Direction.INGRESS))
    plan.add_repair(40_000.0, LinkRef(0, 0, Direction.EGRESS))
    model = LinkFailureModel(
        MICRO.num_tors, MICRO.ports_per_tor, detect_epochs=2
    )
    sim = NegotiaToRSimulator(
        sim_config(MICRO),
        make_topology(MICRO, "parallel"),
        flows,
        failure_model=model,
        failure_plan=plan,
    )
    while sim.now_ns < DURATION_NS:
        sim.step_epoch()
        injected = _injected_bytes(sim.tracker.flows, sim.now_ns)
        assert (
            sim.tracker.delivered_bytes + sim.total_queued_bytes == injected
        )
    assert sim.tracker.delivered_bytes > 0
