"""Tests for the CLI and the analysis helpers."""

import pytest

from repro.analysis.report import (
    build_report,
    result_to_markdown,
    run_experiments,
)
from repro.analysis.shapes import (
    crossover_load,
    improvement_factor,
    is_flat,
    is_monotonic_increasing,
    saturates,
)
from repro.cli import build_parser, main
from repro.experiments import EXPERIMENT_MODULES, load_experiment
from repro.experiments.common import ExperimentResult, ExperimentScale
from repro.sweep import RunSpec

MICRO = ExperimentScale(
    name="micro",
    num_tors=8,
    ports_per_tor=2,
    awgr_ports=4,
    duration_ns=60_000.0,
    loads=(0.5,),
    incast_degrees=(1, 3),
    alltoall_flow_kb=(1, 5),
    max_flow_bytes=100_000,
)


class TestShapes:
    def test_improvement_factor(self):
        assert improvement_factor(100.0, 10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError):
            improvement_factor(1.0, 0.0)

    def test_is_flat(self):
        assert is_flat([10.0, 11.0, 10.5])
        assert not is_flat([10.0, 20.0])
        with pytest.raises(ValueError):
            is_flat([])
        with pytest.raises(ValueError):
            is_flat([0.0, 1.0])

    def test_is_monotonic_increasing(self):
        assert is_monotonic_increasing([1.0, 2.0, 3.0])
        assert not is_monotonic_increasing([1.0, 0.5])
        assert is_monotonic_increasing([1.0, 0.95], slack=0.1)

    def test_saturates(self):
        loads = [0.1, 0.5, 1.0]
        assert saturates(loads, [0.1, 0.45, 0.6])
        assert not saturates(loads, [0.1, 0.49, 0.95])
        with pytest.raises(ValueError):
            saturates([0.1], [0.1])

    def test_crossover_load(self):
        loads = [0.1, 0.5, 1.0]
        assert crossover_load(loads, [0.0, 0.6, 0.9], [0.1, 0.5, 0.6]) == 0.5
        assert crossover_load(loads, [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]) is None


class TestReport:
    def sample_result(self):
        result = ExperimentResult(
            experiment="Table X",
            title="demo",
            headers=["a", "b"],
        )
        result.add_row("x", 1.2345)
        result.notes.append("a note")
        return result

    def test_markdown_rendering(self):
        text = result_to_markdown(self.sample_result())
        assert "### Table X — demo" in text
        assert "| a | b |" in text
        assert "| x | 1.234 |" in text
        assert "*a note*" in text

    def test_build_report_includes_scale(self):
        text = build_report({"x": self.sample_result()}, MICRO)
        assert "`micro`" in text
        assert "8 ToRs x 2 ports" in text

    def test_run_experiments_subset(self):
        results = run_experiments(["efficiency"], MICRO)
        assert set(results) == {"efficiency"}
        assert results["efficiency"].rows


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "paper" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_name_rejections_share_one_message_shape(self, capsys):
        """All unknown-name paths emit the identical exit-2 diagnostic.

        Before the _reject_unknown helper, run/golden said "(try: python -m
        repro list)" while sweep/bench said "(choose from ...)"; the shape
        is now pinned — via spec.unknown_name_message — so no path can
        drift apart again.  The system/engine cases additionally pin the
        registry contents: every message must enumerate ``adaptive``.
        """
        import re

        cases = [
            (["run", "fig99"], "experiment", "fig99"),
            (["golden", "fig99"], "experiment", "fig99"),
            (["sweep", "--scenario", "fig99", "--dry-run"], "scenario", "fig99"),
            (["bench", "--scenario", "fig99"], "scenario", "fig99"),
            (["sweep", "--system", "torus", "--dry-run"], "system", "torus"),
            (["simulate", "--system", "torus"], "system", "torus"),
            (
                ["bench", "--scale", "--engine", "torus", "--flows", "10"],
                "engine",
                "torus",
            ),
        ]
        shape = re.compile(
            r"^unknown (experiment|scenario|system|engine)\(s\): \w+ "
            r"\(choose from [\w, .-]+\)$"
        )
        for argv, kind, name in cases:
            assert main(argv) == 2, argv
            err = capsys.readouterr().err.strip()
            assert shape.fullmatch(err), (argv, err)
            assert err.startswith(f"unknown {kind}(s): {name} (choose from ")
            if kind in ("system", "engine"):
                assert "adaptive" in err, (argv, err)

    def test_spec_and_cli_unknown_system_messages_match(self):
        """The spec layer and the CLI reject unknown systems identically."""
        from repro.sweep.spec import SYSTEMS, unknown_name_message

        with pytest.raises(ValueError) as excinfo:
            RunSpec(scale="tiny", system="torus")
        assert str(excinfo.value) == unknown_name_message(
            "system", ["torus"], SYSTEMS
        )
        assert "adaptive" in str(excinfo.value)

    def test_run_fast_experiment(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert main(["run", "efficiency"]) == 0
        out = capsys.readouterr().out
        assert "matching efficiency" in out

    def test_report_to_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        target = tmp_path / "report.md"
        assert main(
            ["report", "--experiments", "efficiency", "--output", str(target)]
        ) == 0
        assert "matching efficiency" in target.read_text()


class TestSimulateCommand:
    def test_simulate_negotiator(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(
            ["simulate", "--load", "0.5", "--duration-ms", "0.1", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "negotiator on parallel" in out
        assert "goodput" in out

    def test_simulate_oblivious_thinclos(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(
            ["simulate", "--system", "oblivious", "--topology", "thinclos",
             "--load", "0.5", "--duration-ms", "0.1"]
        )
        assert code == 0
        assert "oblivious on thinclos" in capsys.readouterr().out

    def test_simulate_rotor_thinclos(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(
            ["simulate", "--system", "rotor", "--topology", "thinclos",
             "--load", "0.5", "--duration-ms", "0.1"]
        )
        assert code == 0
        assert "rotor on thinclos" in capsys.readouterr().out

    def test_simulate_from_workload_file(self, capsys, tmp_path, monkeypatch):
        from repro.sim.flows import Flow
        from repro.workloads import trace_io

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        path = tmp_path / "wl.csv"
        trace_io.save(
            [Flow(fid=0, src=0, dst=1, size_bytes=500, arrival_ns=0.0)], path
        )
        code = main(
            ["simulate", "--workload-file", str(path), "--duration-ms", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1/1" in out

    def test_simulate_rejects_oversized_workload_file(
        self, tmp_path, monkeypatch
    ):
        from repro.sim.flows import Flow
        from repro.workloads import trace_io

        monkeypatch.setenv("REPRO_SCALE", "tiny")
        path = tmp_path / "wl.csv"
        trace_io.save(
            [Flow(fid=0, src=0, dst=99, size_bytes=500, arrival_ns=0.0)], path
        )
        with pytest.raises(ValueError, match="out of range"):
            main(["simulate", "--workload-file", str(path)])

    def test_simulate_no_pq(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        code = main(
            ["simulate", "--no-pq", "--load", "0.3", "--duration-ms", "0.1"]
        )
        assert code == 0


class TestExperimentRegistry:
    def test_registry_is_complete(self):
        """Every table and figure of the evaluation has an experiment."""
        expected = {
            "table2", "table3", "table4", "table5", "table6",
            "fig6", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig17_18", "fig19",
            "fig9_rotor_baseline", "fig9_adaptive_baseline", "efficiency",
        }
        assert set(EXPERIMENT_MODULES) == expected

    def test_load_experiment_unknown(self):
        with pytest.raises(ValueError):
            load_experiment("fig42")

    def test_every_module_has_run(self):
        for name in EXPERIMENT_MODULES:
            module = load_experiment(name)
            assert callable(module.run)
