"""Tests for the round-robin GRANT/ACCEPT rings (section 3.2.1)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rings import RoundRobinRing, build_rings


class TestConstruction:
    def test_members_preserved_in_order(self):
        ring = RoundRobinRing([3, 1, 4, 1 + 4])
        assert ring.members == (3, 1, 4, 5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RoundRobinRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            RoundRobinRing([1, 2, 1])

    def test_start_pointer(self):
        ring = RoundRobinRing([10, 20, 30], start=2)
        assert ring.pointer == 2

    def test_rejects_out_of_range_start(self):
        with pytest.raises(ValueError):
            RoundRobinRing([10, 20], start=2)

    def test_random_init_is_seed_deterministic(self):
        a = RoundRobinRing(list(range(16)), rng=random.Random(7))
        b = RoundRobinRing(list(range(16)), rng=random.Random(7))
        assert a.pointer == b.pointer

    def test_build_rings_one_per_member_set(self):
        rings = build_rings([[1, 2], [3, 4, 5]], random.Random(0))
        assert [r.members for r in rings] == [(1, 2), (3, 4, 5)]


class TestPick:
    def test_picks_pointer_member_first(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=1)
        assert ring.pick({0, 1, 2, 3}) == 1

    def test_pointer_advances_past_pick(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=1)
        ring.pick({0, 1, 2, 3})
        assert ring.pointer == 2

    def test_skips_non_candidates_clockwise(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=1)
        assert ring.pick({0, 3}) == 3

    def test_wraps_around(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=3)
        assert ring.pick({1}) == 1
        assert ring.pointer == 2

    def test_none_when_no_candidates(self):
        ring = RoundRobinRing([0, 1, 2], start=0)
        assert ring.pick(set()) is None
        assert ring.pointer == 0

    def test_none_when_candidates_not_members(self):
        ring = RoundRobinRing([0, 1, 2], start=0)
        assert ring.pick({99}) is None

    def test_least_recently_granted_has_priority(self):
        """Picking the same candidate set cycles fairly through it."""
        ring = RoundRobinRing([0, 1, 2, 3], start=0)
        picks = [ring.pick({0, 2}) for _ in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_peek_does_not_advance(self):
        ring = RoundRobinRing([0, 1, 2], start=0)
        assert ring.peek({1, 2}) == 1
        assert ring.pointer == 0

    def test_advance_past_unknown_member_raises(self):
        ring = RoundRobinRing([0, 1, 2])
        with pytest.raises(ValueError):
            ring.advance_past(42)


class TestDeal:
    def test_splits_ports_evenly(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=0)
        assert ring.deal({0, 1}, 4) == [0, 1, 0, 1]

    def test_pointer_ends_after_last_pick(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=0)
        ring.deal({0, 1}, 3)  # picks 0, 1, 0
        assert ring.pointer == 1

    def test_empty_candidates_deal_nothing(self):
        ring = RoundRobinRing([0, 1, 2], start=1)
        assert ring.deal(set(), 3) == []
        assert ring.pointer == 1

    def test_zero_count_deals_nothing(self):
        ring = RoundRobinRing([0, 1, 2], start=1)
        assert ring.deal({0, 1, 2}, 0) == []

    def test_rejects_negative_count(self):
        ring = RoundRobinRing([0, 1, 2])
        with pytest.raises(ValueError):
            ring.deal({0}, -1)

    def test_ordered_candidates_respects_pointer(self):
        ring = RoundRobinRing([0, 1, 2, 3], start=2)
        assert ring.ordered_candidates({0, 1, 3}) == [3, 0, 1]

    @given(
        size=st.integers(2, 12),
        start=st.integers(0, 11),
        candidate_bits=st.integers(1, 2**12 - 1),
        count=st.integers(1, 24),
    )
    @settings(max_examples=200)
    def test_deal_equals_repeated_picks(self, size, start, candidate_bits, count):
        """deal() is an O(n + m) shortcut for m pick() calls — prove it."""
        start %= size
        members = list(range(size))
        candidates = {i for i in members if candidate_bits & (1 << i)}
        fast = RoundRobinRing(members, start=start)
        slow = RoundRobinRing(members, start=start)
        dealt = fast.deal(candidates, count)
        picked = [slow.pick(candidates) for _ in range(count)]
        picked = [p for p in picked if p is not None]
        assert dealt == picked
        if dealt:
            assert fast.pointer == slow.pointer


class TestNoStarvation:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=50)
    def test_persistent_candidate_is_served_within_one_rotation(self, seed):
        """A member that keeps requesting is picked within len(ring) picks."""
        rng = random.Random(seed)
        members = list(range(8))
        ring = RoundRobinRing(members, rng=rng)
        victim = rng.choice(members)
        for attempt in range(len(members)):
            candidates = set(rng.sample(members, rng.randint(1, 8))) | {victim}
            if ring.pick(candidates) == victim:
                return
        pytest.fail("victim starved for a full rotation")
