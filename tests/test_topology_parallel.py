"""Tests for the parallel network topology (Fig 1a)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.parallel import ParallelNetwork

SHAPES = [(8, 2), (16, 4), (9, 2), (12, 5), (128, 8)]


def shape_ids(shape):
    return f"{shape[0]}x{shape[1]}"


class TestStructure:
    def test_paper_scale_has_16_predefined_slots(self):
        assert ParallelNetwork(128, 8).predefined_slots == 16

    def test_awgr_per_port(self):
        topo = ParallelNetwork(16, 4)
        assert topo.num_awgrs == 4
        assert topo.awgr_ports == 16

    def test_any_port_reaches_everyone(self):
        topo = ParallelNetwork(8, 2)
        assert topo.reachable_dsts(3, 0) == tuple(t for t in range(8) if t != 3)
        assert topo.reachable_srcs(3, 1) == tuple(t for t in range(8) if t != 3)

    def test_data_port_is_unconstrained(self):
        assert ParallelNetwork(8, 2).data_port(0, 5) is None

    def test_rejects_self_pair(self):
        with pytest.raises(ValueError):
            ParallelNetwork(8, 2).data_port(3, 3)

    def test_rejects_tiny_fabric(self):
        with pytest.raises(ValueError):
            ParallelNetwork(1, 2)


@pytest.mark.parametrize("shape", SHAPES, ids=shape_ids)
class TestPredefinedSchedule:
    def test_every_ordered_pair_meets_exactly_once(self, shape):
        n, s = shape
        topo = ParallelNetwork(n, s)
        for epoch in (0, 1, 5):
            seen = set()
            for tor in range(n):
                for port in range(s):
                    for slot in range(topo.predefined_slots):
                        peer = topo.predefined_peer(tor, port, slot, epoch)
                        if peer is not None:
                            assert peer != tor
                            assert (tor, peer) not in seen
                            seen.add((tor, peer))
            assert len(seen) == n * (n - 1)

    def test_per_slot_connections_are_conflict_free(self, shape):
        """Within a (slot, port), receivers are hit exactly once each."""
        n, s = shape
        topo = ParallelNetwork(n, s)
        for slot in range(topo.predefined_slots):
            for port in range(s):
                peers = [
                    topo.predefined_peer(tor, port, slot, epoch=2)
                    for tor in range(n)
                ]
                real = [p for p in peers if p is not None]
                assert len(real) == len(set(real))

    def test_assignment_inverts_peer(self, shape):
        n, s = shape
        topo = ParallelNetwork(n, s)
        for src in range(n):
            for dst in range(n):
                if src == dst:
                    continue
                slot, port = topo.predefined_assignment(src, dst, epoch=3)
                assert topo.predefined_peer(src, port, slot, epoch=3) == dst


class TestRotation:
    """Section 3.6.1: the round-robin rule changes across epochs so a pair
    rides different physical links, surviving single-link failures."""

    def test_assignment_changes_with_epoch(self):
        topo = ParallelNetwork(16, 4)
        assignments = {topo.predefined_assignment(2, 9, e) for e in range(15)}
        assert len(assignments) > 1

    def test_pair_visits_every_port(self):
        topo = ParallelNetwork(16, 4)
        ports = {topo.predefined_assignment(2, 9, e)[1] for e in range(15)}
        assert ports == set(range(4))

    def test_rotation_can_be_disabled(self):
        topo = ParallelNetwork(16, 4, rotate_per_epoch=False)
        assignments = {topo.predefined_assignment(2, 9, e) for e in range(15)}
        assert len(assignments) == 1

    def test_rotation_flag_exposed(self):
        assert ParallelNetwork(8, 2).rotates_per_epoch
        assert not ParallelNetwork(8, 2, rotate_per_epoch=False).rotates_per_epoch


class TestIdleCombos:
    def test_idle_count_matches_surplus(self):
        """slots * ports - (N - 1) combos are idle (self-offsets)."""
        n, s = 9, 2
        topo = ParallelNetwork(n, s)
        idle = sum(
            1
            for tor in [0]
            for slot in range(topo.predefined_slots)
            for port in range(s)
            if topo.predefined_peer(tor, port, slot) is None
        )
        assert idle == topo.predefined_slots * s - (n - 1)

    def test_slot_out_of_range(self):
        topo = ParallelNetwork(8, 2)
        with pytest.raises(ValueError):
            topo.predefined_peer(0, 0, topo.predefined_slots)

    def test_port_out_of_range(self):
        topo = ParallelNetwork(8, 2)
        with pytest.raises(ValueError):
            topo.predefined_peer(0, 2, 0)


class TestOpticalPaths:
    def test_path_uses_port_awgr_and_pair_wavelength(self):
        topo = ParallelNetwork(16, 4)
        path = topo.optical_path(3, 11, port=2)
        assert path.awgr_id == 2
        assert path.input_port == 3
        assert path.output_port == 11
        assert path.wavelength == (11 - 3) % 16

    @given(
        src=st.integers(0, 15), dst=st.integers(0, 15), port=st.integers(0, 3)
    )
    @settings(max_examples=100)
    def test_simultaneous_transmissions_never_collide(self, src, dst, port):
        """Distinct sources on one AWGR reach distinct outputs."""
        topo = ParallelNetwork(16, 4)
        if src == dst:
            return
        path = topo.optical_path(src, dst, port)
        other_src = (src + 1) % 16
        if other_src == dst:
            return
        other = topo.optical_path(other_src, dst, port)
        # Same output implies same AWGR input — impossible for distinct ToRs.
        assert other.input_port != path.input_port
