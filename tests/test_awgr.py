"""Tests for the AWGR wavelength-routing substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.awgr import AWGR, OpticalPath


class TestRouting:
    def test_wavelength_zero_goes_straight(self):
        awgr = AWGR(8)
        for port in range(8):
            assert awgr.output_for(port, 0) == port

    def test_cyclic_shift(self):
        awgr = AWGR(8)
        assert awgr.output_for(6, 3) == 1

    def test_wavelength_for_inverts_output_for(self):
        awgr = AWGR(16)
        for inp in range(16):
            for out in range(16):
                wl = awgr.wavelength_for(inp, out)
                assert awgr.output_for(inp, wl) == out

    @given(ports=st.integers(1, 64), inp=st.integers(0, 63), wl=st.integers(0, 63))
    @settings(max_examples=100)
    def test_routing_is_a_bijection_per_wavelength(self, ports, inp, wl):
        """Fixing the wavelength, input -> output is a permutation."""
        inp %= ports
        wl %= ports
        awgr = AWGR(ports)
        outputs = {awgr.output_for(i, wl) for i in range(ports)}
        assert outputs == set(range(ports))
        assert awgr.output_for(inp, wl) == (inp + wl) % ports

    def test_port_range_checked(self):
        awgr = AWGR(4)
        with pytest.raises(ValueError):
            awgr.output_for(4, 0)
        with pytest.raises(ValueError):
            awgr.wavelength_for(0, 4)

    def test_wavelength_range_checked(self):
        with pytest.raises(ValueError):
            AWGR(4).output_for(0, 4)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            AWGR(0)


class TestOpticalPath:
    def test_is_immutable_record(self):
        path = OpticalPath(awgr_id=1, input_port=2, wavelength=3, output_port=5)
        assert path.awgr_id == 1
        with pytest.raises(AttributeError):
            path.awgr_id = 9
