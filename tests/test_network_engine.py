"""Tests for the NegotiaToR simulator engine (sections 3.3 and 3.4).

The small-fabric timings used here are exact: with 8 ToRs x 2 ports the
parallel network needs ceil(7/2) = 4 predefined slots, so an epoch is
4*60 + 30*90 = 2940 ns.  Propagation is 2000 ns.
"""

import dataclasses
import random

import pytest

from repro import (
    BandwidthRecorder,
    EpochConfig,
    Flow,
    MatchRatioRecorder,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    epoch_config_without_piggyback,
    expected_match_ratio,
    poisson_workload,
)
from repro.workloads.traces import hadoop

EPOCH_NS = 4 * 60 + 30 * 90  # 2940


def tiny_config(**overrides):
    defaults = dict(
        num_tors=8, ports_per_tor=2, uplink_gbps=100.0, host_aggregate_gbps=100.0
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def make_sim(flows, topology=None, config=None, **kwargs):
    config = config or tiny_config()
    topology = topology or ParallelNetwork(config.num_tors, config.ports_per_tor)
    return NegotiaToRSimulator(config, topology, flows, **kwargs)


def flow(fid=0, src=0, dst=1, size=500, arrival=0.0, tag=""):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival, tag=tag)


class TestConstruction:
    def test_topology_mismatch_rejected(self):
        with pytest.raises(ValueError):
            NegotiaToRSimulator(tiny_config(), ParallelNetwork(16, 2), [])
        with pytest.raises(ValueError):
            NegotiaToRSimulator(tiny_config(), ParallelNetwork(8, 4), [])

    def test_epoch_timing_derived_from_topology(self):
        sim = make_sim([])
        assert sim.timing.predefined_slots == 4
        assert sim.timing.epoch_ns == pytest.approx(EPOCH_NS)

    def test_queue_accessor(self):
        sim = make_sim([flow()])
        with pytest.raises(ValueError):
            sim.queue(3, 3)
        assert sim.queue(0, 1).is_empty  # not injected until first epoch


class TestPiggybackPath:
    """Mice data rides the predefined phase without any scheduling."""

    def test_small_flow_completes_via_piggyback_in_first_epoch(self):
        # Pair (0, 1) meets at offset 1 -> slot 0, port 0 in epoch 0.
        sim = make_sim([flow(size=500, arrival=0.0)])
        sim.step_epoch()
        f = sim.tracker.flows[0]
        assert f.completed
        # Delivered at predefined slot 0 end (60 ns) + propagation.
        assert f.completed_ns == pytest.approx(60.0 + 2000.0)

    def test_piggyback_slot_depends_on_pair(self):
        # Pair (0, 5): offset 5 -> index 4 -> slot 2, port 0 in epoch 0.
        sim = make_sim([flow(dst=5, size=500)])
        sim.step_epoch()
        f = sim.tracker.flows[0]
        assert f.completed_ns == pytest.approx(3 * 60.0 + 2000.0)

    def test_flow_larger_than_piggyback_needs_multiple_epochs(self):
        # 1 KB = 595 B in epoch 0 + 405 B in epoch 1 (no request: 1 KB is
        # under the 1785 B threshold).
        sim = make_sim([flow(size=1000)])
        sim.step_epoch()
        assert not sim.tracker.flows[0].completed
        sim.step_epoch()
        f = sim.tracker.flows[0]
        assert f.completed
        # Epoch 1 rotates the round-robin rule: pair (0,1) offset 1 ->
        # index (1-1-1) % 7 = 6 -> slot 3, port 0.
        assert f.completed_ns == pytest.approx(EPOCH_NS + 4 * 60.0 + 2000.0)

    def test_mid_epoch_arrival_waits_for_eligibility(self):
        # Arrival after the pair's predefined slot of epoch 0 (at 60 ns)
        # cannot ride epoch 0's piggyback.
        sim = make_sim([flow(size=500, arrival=100.0)])
        sim.step_epoch()
        assert not sim.tracker.flows[0].completed
        sim.step_epoch()
        assert sim.tracker.flows[0].completed

    def test_piggyback_disabled_forces_scheduling(self):
        epoch = epoch_config_without_piggyback(EpochConfig(), 100.0, 4)
        config = tiny_config(epoch=epoch)
        sim = make_sim([flow(size=500)], config=config)
        for _ in range(2):
            sim.step_epoch()
        assert not sim.tracker.flows[0].completed  # still in pipeline
        sim.step_epoch()  # accept epoch: scheduled phase delivers
        assert sim.tracker.flows[0].completed


class TestScheduledPath:
    def test_elephant_follows_two_epoch_scheduling_delay(self):
        """Request at epoch 0 -> grant 1 -> accept + transmit at epoch 2."""
        size = 50_000
        sim = make_sim([flow(size=size, arrival=-1.0)])
        sent_per_epoch = []
        for _ in range(4):
            before = sim.tracker.delivered_bytes
            sim.step_epoch()
            sent_per_epoch.append(sim.tracker.delivered_bytes - before)
        # Epochs 0 and 1 deliver only piggybacked packets; the flow's 1000 B
        # PIAS band 0 yields 595 B then its 405 B remainder.
        assert sent_per_epoch[0] == 595
        assert sent_per_epoch[1] == 405
        # Epoch 2 adds scheduled traffic on both ports (2 x 30 slots).
        assert sent_per_epoch[2] > 2 * 595

    def test_scheduled_delivery_time_is_slot_exact(self):
        """A single scheduled packet lands at phase start + slot + prop."""
        # 2380 B: three piggybacks (epochs 0-2) leave 595 B for epoch 2's
        # scheduled phase (requests fire: 2380 > 1785 threshold).
        sim = make_sim([flow(size=3 * 595 + 595, arrival=-1.0)])
        for _ in range(3):
            sim.step_epoch()
        f = sim.tracker.flows[0]
        assert f.completed
        # Epoch 2: piggyback at slot for offset 1 with rotation 2 -> index
        # (1-1-2) % 7 = 5 -> slot 2 (port 1); then scheduled slot 0 carries
        # the final 595 B: predefined (240) + slot (90) + prop.
        expected = 2 * EPOCH_NS + 4 * 60.0 + 90.0 + 2000.0
        assert f.completed_ns == pytest.approx(expected)

    def test_all_flows_eventually_complete(self):
        flows = [
            flow(fid=i, src=i % 8, dst=(i * 3 + 1) % 8, size=20_000 + i)
            for i in range(20)
            if i % 8 != (i * 3 + 1) % 8
        ]
        sim = make_sim(flows)
        assert sim.run_until_complete(max_ns=5_000_000)
        assert sim.tracker.all_complete

    def test_multi_port_parallel_transmission(self):
        """A lone elephant pair gets both ports and drains twice as fast."""
        size = 500_000
        sim = make_sim([flow(size=size, arrival=-1.0)])
        for _ in range(3):
            sim.step_epoch()
        # Piggybacks: 595 + 405 (band 0 exhausted) + 595 (band 1).  Epoch 2's
        # scheduled phase has 2 ports x 30 slots: band 1's remaining 8405 B
        # occupy 8 packets (the last underfilled), then 52 full band-2 packets.
        piggybacked = 595 + 405 + 595
        scheduled = 8405 + 52 * 1115
        assert sim.tracker.delivered_bytes == piggybacked + scheduled


class TestConservation:
    @pytest.mark.parametrize("topology_cls", ["parallel", "thinclos"])
    def test_bytes_are_conserved(self, topology_cls):
        config = tiny_config()
        topo = (
            ParallelNetwork(8, 2)
            if topology_cls == "parallel"
            else ThinClos(8, 2, 4)
        )
        flows = poisson_workload(
            hadoop(), 0.8, 8, config.host_aggregate_gbps, 200_000,
            random.Random(5),
        )
        sim = NegotiaToRSimulator(config, topo, flows)
        sim.run(200_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected
        assert sim.total_queued_bytes == left

    def test_no_delivery_before_arrival_plus_propagation(self):
        config = tiny_config()
        flows = poisson_workload(
            hadoop(), 0.5, 8, config.host_aggregate_gbps, 100_000,
            random.Random(6),
        )
        sim = make_sim(flows, config=config)
        sim.run_until_complete(max_ns=10_000_000)
        for f in flows:
            assert f.completed_ns >= f.arrival_ns + config.propagation_ns


class TestMatchRatio:
    def test_heavy_load_ratio_matches_theory(self):
        """Appendix A.1: the simulated match ratio tracks 1-(1-1/n)^n."""
        config = tiny_config(num_tors=16, ports_per_tor=4, host_aggregate_gbps=200.0)
        flows = poisson_workload(
            hadoop(), 1.0, 16, 200.0, 1_500_000, random.Random(9),
        )
        recorder = MatchRatioRecorder()
        sim = NegotiaToRSimulator(
            config, ParallelNetwork(16, 4), flows, match_recorder=recorder
        )
        sim.run(1_500_000)
        assert recorder.mean_ratio() == pytest.approx(
            expected_match_ratio(16), abs=0.05
        )


class TestPriorityQueues:
    def test_pq_protects_mice_behind_elephants(self):
        """With PQ disabled, a mice flow behind an elephant waits longer."""

        def run(pq_enabled):
            config = tiny_config(priority_queue_enabled=pq_enabled)
            flows = [
                flow(fid=0, size=400_000, arrival=0.0),
                flow(fid=1, size=500, arrival=1.0),
            ]
            sim = make_sim(flows, config=config)
            sim.run_until_complete(max_ns=10_000_000)
            return flows[1].fct_ns

        assert run(True) < run(False)


class TestBandwidthRecording:
    def test_rx_and_pair_keys(self):
        recorder = BandwidthRecorder(bin_ns=EPOCH_NS)
        sim = make_sim(
            [flow(size=5000, arrival=-1.0)],
            bandwidth_recorder=recorder,
            record_pair_bandwidth=True,
        )
        sim.run_until_complete(max_ns=1_000_000)
        assert recorder.total_bytes(("rx", 1)) == 5000
        assert recorder.total_bytes(("pair", 0, 1)) == 5000


class TestRunLoops:
    def test_run_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            make_sim([]).run(0)

    def test_run_until_complete_times_out(self):
        sim = make_sim([flow(size=10_000_000)])
        assert not sim.run_until_complete(max_ns=3 * EPOCH_NS)

    def test_summary_counts(self):
        sim = make_sim([flow(size=500)])
        sim.run(EPOCH_NS * 2)
        summary = sim.summary()
        assert summary.num_flows == 1
        assert summary.num_completed == 1
        assert summary.epoch_ns == pytest.approx(EPOCH_NS)
        assert summary.mice_fct_p99_ns is not None

    def test_summary_with_no_mice(self):
        sim = make_sim([])
        sim.run(EPOCH_NS)
        summary = sim.summary()
        assert summary.mice_fct_p99_ns is None
        assert summary.goodput_normalized == 0.0
