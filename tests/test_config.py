"""Tests for the epoch timing model (sections 3.6.4 and 4.1)."""

import dataclasses

import pytest

from repro.sim.config import (
    EpochConfig,
    EpochTiming,
    SimConfig,
    epoch_config_for_reconfiguration_delay,
    epoch_config_without_piggyback,
    transmit_ns,
)


class TestTransmit:
    def test_100gbps_625_bytes_takes_50ns(self):
        assert transmit_ns(625, 100.0) == pytest.approx(50.0)

    def test_100gbps_1125_bytes_takes_90ns(self):
        assert transmit_ns(1125, 100.0) == pytest.approx(90.0)

    def test_halving_the_rate_doubles_the_time(self):
        assert transmit_ns(1000, 50.0) == pytest.approx(2 * transmit_ns(1000, 100.0))

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            transmit_ns(100, 0.0)


class TestEpochConfig:
    def test_defaults_match_paper_section_4_1(self):
        epoch = EpochConfig()
        assert epoch.guard_ns == 10.0
        assert epoch.scheduling_message_bytes == 30
        assert epoch.piggyback_payload_bytes == 595
        assert epoch.data_header_bytes == 10
        assert epoch.data_payload_bytes == 1115
        assert epoch.scheduled_slots == 30

    def test_request_threshold_is_three_piggyback_packets(self):
        assert EpochConfig().request_threshold_bytes == 3 * 595

    def test_request_threshold_zero_without_piggyback(self):
        epoch = dataclasses.replace(EpochConfig(), piggyback_enabled=False)
        assert epoch.request_threshold_bytes == 0

    def test_rejects_negative_guard(self):
        with pytest.raises(ValueError):
            EpochConfig(guard_ns=-1.0)

    def test_rejects_zero_scheduled_slots(self):
        with pytest.raises(ValueError):
            EpochConfig(scheduled_slots=0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            EpochConfig(request_threshold_packets=-1)


class TestEpochTiming:
    """The paper's 128x8 fabric needs 16 predefined slots on both topologies."""

    def paper_timing(self) -> EpochTiming:
        return EpochTiming.derive(EpochConfig(), 100.0, predefined_slots=16)

    def test_predefined_slot_is_60ns(self):
        assert self.paper_timing().predefined_slot_ns == pytest.approx(60.0)

    def test_scheduled_slot_is_90ns(self):
        assert self.paper_timing().scheduled_slot_ns == pytest.approx(90.0)

    def test_epoch_is_3_66_us(self):
        assert self.paper_timing().epoch_ns == pytest.approx(3660.0)

    def test_guard_fraction_is_4_37_percent(self):
        assert self.paper_timing().guard_fraction == pytest.approx(0.0437, abs=5e-4)

    def test_predefined_phase_is_0_96_us(self):
        assert self.paper_timing().predefined_ns == pytest.approx(960.0)

    def test_scheduled_phase_is_2_7_us(self):
        assert self.paper_timing().scheduled_ns == pytest.approx(2700.0)

    def test_slot_starts_are_evenly_spaced(self):
        timing = self.paper_timing()
        assert timing.predefined_slot_start(0) == 0.0
        assert timing.predefined_slot_start(3) == pytest.approx(180.0)
        assert timing.scheduled_slot_start(0) == pytest.approx(960.0)
        assert timing.scheduled_slot_start(2) == pytest.approx(960.0 + 180.0)

    def test_slot_ends_follow_starts(self):
        timing = self.paper_timing()
        assert timing.predefined_slot_end(0) == pytest.approx(60.0)
        assert timing.scheduled_slot_end(0) == pytest.approx(1050.0)

    def test_half_rate_stretches_slots(self):
        timing = EpochTiming.derive(EpochConfig(), 50.0, predefined_slots=16)
        assert timing.predefined_slot_ns == pytest.approx(110.0)
        assert timing.scheduled_slot_ns == pytest.approx(180.0)

    def test_rejects_non_positive_predefined_slots(self):
        with pytest.raises(ValueError):
            EpochTiming.derive(EpochConfig(), 100.0, predefined_slots=0)

    def test_piggyback_disabled_shrinks_predefined_slot(self):
        epoch = dataclasses.replace(EpochConfig(), piggyback_enabled=False)
        timing = EpochTiming.derive(epoch, 100.0, predefined_slots=16)
        # guard + tx(30 B) = 10 + 2.4 ns
        assert timing.predefined_slot_ns == pytest.approx(12.4)
        assert timing.piggyback_payload_bytes == 0


class TestWithoutPiggyback:
    """Table 2 protocol: remove piggybacking, keep the epoch length."""

    def test_epoch_length_is_preserved(self):
        base = EpochConfig()
        stripped = epoch_config_without_piggyback(base, 100.0, 16)
        reference = EpochTiming.derive(base, 100.0, 16)
        modified = EpochTiming.derive(stripped, 100.0, 16)
        assert not stripped.piggyback_enabled
        # Slot count is integral, so equality holds within one slot.
        assert abs(modified.epoch_ns - reference.epoch_ns) <= 90.0

    def test_scheduled_phase_grows(self):
        stripped = epoch_config_without_piggyback(EpochConfig(), 100.0, 16)
        assert stripped.scheduled_slots > EpochConfig().scheduled_slots

    def test_request_threshold_drops_to_zero(self):
        stripped = epoch_config_without_piggyback(EpochConfig(), 100.0, 16)
        assert stripped.request_threshold_bytes == 0


class TestReconfigurationDelayScaling:
    """Fig 8 protocol: larger guardbands keep their epoch share."""

    @pytest.mark.parametrize("guard_ns", [20.0, 50.0, 100.0])
    def test_guard_fraction_is_preserved(self, guard_ns):
        base = EpochConfig()
        scaled = epoch_config_for_reconfiguration_delay(base, guard_ns, 100.0, 16)
        reference = EpochTiming.derive(base, 100.0, 16)
        timing = EpochTiming.derive(scaled, 100.0, 16)
        assert scaled.guard_ns == guard_ns
        assert timing.guard_fraction == pytest.approx(
            reference.guard_fraction, rel=0.05
        )

    def test_identity_at_default_guard(self):
        scaled = epoch_config_for_reconfiguration_delay(
            EpochConfig(), 10.0, 100.0, 16
        )
        assert scaled.scheduled_slots == EpochConfig().scheduled_slots

    def test_longer_guard_means_longer_epoch(self):
        scaled = epoch_config_for_reconfiguration_delay(
            EpochConfig(), 100.0, 100.0, 16
        )
        timing = EpochTiming.derive(scaled, 100.0, 16)
        assert timing.epoch_ns > 10 * 3660.0 * 0.9

    def test_rejects_non_positive_guard(self):
        with pytest.raises(ValueError):
            epoch_config_for_reconfiguration_delay(EpochConfig(), 0.0, 100.0, 16)


class TestSimConfig:
    def test_paper_defaults(self):
        config = SimConfig()
        assert config.num_tors == 128
        assert config.ports_per_tor == 8
        assert config.speedup == pytest.approx(2.0)
        assert config.num_priority_bands == 3

    def test_without_speedup_equalizes_rates(self):
        config = SimConfig().without_speedup()
        assert config.speedup == pytest.approx(1.0)
        assert config.uplink_gbps == pytest.approx(50.0)

    def test_priority_queue_disabled_gives_single_band(self):
        config = SimConfig(priority_queue_enabled=False)
        assert config.num_priority_bands == 1

    def test_rejects_single_tor(self):
        with pytest.raises(ValueError):
            SimConfig(num_tors=1)

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            SimConfig(ports_per_tor=0)

    def test_rejects_unsorted_pias_thresholds(self):
        with pytest.raises(ValueError):
            SimConfig(pias_thresholds=(10000, 1000))

    def test_rejects_negative_propagation(self):
        with pytest.raises(ValueError):
            SimConfig(propagation_ns=-1.0)
