"""Tests for the design-space variants (section 3.5 / appendix A.2)."""

import random

import pytest

from repro import (
    Flow,
    NegotiaToRSimulator,
    ParallelNetwork,
    SimConfig,
    ThinClos,
    poisson_workload,
)
from repro.core.matching import NegotiaToRMatcher, validate_matching
from repro.core.variants import (
    DataSizeScheduler,
    HolDelayScheduler,
    IterativeScheduler,
    ProjecToRMatcher,
    ProjecToRScheduler,
    StatefulScheduler,
    ValuePriorityMatcher,
    make_scheduler,
    scheduling_delay_epochs,
)
from repro.workloads.traces import hadoop

EPOCH_NS = 4 * 60 + 30 * 90


def tiny_config(**overrides):
    defaults = dict(
        num_tors=8, ports_per_tor=2, uplink_gbps=100.0, host_aggregate_gbps=100.0
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


def make_sim(flows, scheduler_name, config=None, **scheduler_kwargs):
    config = config or tiny_config()
    topo = ParallelNetwork(config.num_tors, config.ports_per_tor)
    scheduler = make_scheduler(
        scheduler_name, topo, random.Random(config.seed), **scheduler_kwargs
    )
    return NegotiaToRSimulator(config, topo, flows, scheduler=scheduler)


def elephant(fid=0, src=0, dst=1, size=200_000, arrival=-1.0):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival)


class TestFactory:
    @pytest.mark.parametrize(
        "name",
        ["base", "iterative", "data-size", "hol-delay", "stateful", "projector"],
    )
    def test_all_variants_run_end_to_end(self, name):
        config = tiny_config()
        flows = poisson_workload(
            hadoop(), 0.5, 8, config.host_aggregate_gbps, 100_000,
            random.Random(1),
        )
        sim = make_sim(flows, name, config=config)
        sim.run(100_000)
        injected = sum(f.size_bytes for f in flows)
        left = sum(f.remaining_bytes for f in flows)
        assert sim.tracker.delivered_bytes + left == injected

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("magic", ParallelNetwork(8, 2), random.Random(0))


class TestIterativeScheduler:
    def test_scheduling_delay_formula(self):
        assert scheduling_delay_epochs(1) == 2
        assert scheduling_delay_epochs(3) == 8
        assert scheduling_delay_epochs(5) == 14
        with pytest.raises(ValueError):
            scheduling_delay_epochs(0)

    def test_single_iteration_matches_base_timing(self):
        matcher = NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0))
        scheduler = IterativeScheduler(matcher, iterations=1)
        outs = []
        for epoch in range(4):
            requests = {1: {0: None}} if epoch == 0 else {}
            matches, _, _ = scheduler.advance(requests, lambda g: g)
            outs.append(matches)
        assert outs[0] == [] and outs[1] == []
        assert {(m.src, m.dst) for m in outs[2]} == {(0, 1)}

    def test_three_iterations_finalize_after_eight_epochs(self):
        matcher = NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0))
        scheduler = IterativeScheduler(matcher, iterations=3)
        outs = []
        for epoch in range(10):
            requests = {1: {0: None}} if epoch == 0 else {}
            matches, _, _ = scheduler.advance(requests, lambda g: g)
            outs.append(matches)
        for epoch in range(8):
            assert outs[epoch] == []
        assert {(m.src, m.dst) for m in outs[8]} == {(0, 1)}

    def test_iterations_add_matches_on_locked_out_ports(self):
        """A second iteration matches a port the first round left unmatched."""
        # Two sources request the same destination on a 1-port fabric — no,
        # use 2 ports: dst grants src A both ports round 1; src B gets
        # nothing; round 2 must serve B on whatever dst ports A rejected.
        topo = ParallelNetwork(8, 2)
        matcher = NegotiaToRMatcher(topo, random.Random(1))
        scheduler = IterativeScheduler(matcher, iterations=2)
        # Sources 0 and 2 both hold traffic for destinations 1 and 3.
        requests = {1: {0: None, 2: None}, 3: {0: None, 2: None}}
        final = None
        for epoch in range(6):
            delivered = requests if epoch == 0 else {}
            matches, _, _ = scheduler.advance(delivered, lambda g: g)
            if matches:
                final = matches
                break
        assert final is not None
        validate_matching(final, topo)
        # Both sources' ports are fully used after two rounds.
        tx_used = {(m.src, m.port) for m in final}
        assert len(tx_used) == 4

    def test_iterative_delays_elephant_start(self):
        """ITER_III starts transmitting scheduled data 6 epochs later."""

        def first_scheduled_epoch(iterations):
            sim = make_sim(
                [elephant(size=500_000)], "iterative", iterations=iterations
            )
            for epoch in range(14):
                before = sim.tracker.delivered_bytes
                sim.step_epoch()
                gained = sim.tracker.delivered_bytes - before
                if gained > 1115:  # more than a piggyback packet
                    return epoch
            return None

        assert first_scheduled_epoch(1) == 2
        assert first_scheduled_epoch(3) == 8

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            IterativeScheduler(
                NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0)), 0
            )


class TestValuePriorityMatcher:
    def test_largest_backlog_wins_the_port(self):
        topo = ParallelNetwork(8, 1)
        matcher = ValuePriorityMatcher(topo, random.Random(0))
        grants, _ = matcher.grant_step({1: {0: 100.0, 2: 900.0}})
        assert list(grants) == [2]

    def test_ties_fall_back_to_ring_fairness(self):
        topo = ParallelNetwork(8, 1)
        matcher = ValuePriorityMatcher(topo, random.Random(0))
        winners = []
        for _ in range(4):
            grants, _ = matcher.grant_step({1: {0: 5.0, 2: 5.0}})
            winners.append(next(iter(grants)))
        assert set(winners) == {0, 2}

    def test_ports_deal_down_the_ranking(self):
        """With comparable requests, one requester cannot take every port."""
        topo = ParallelNetwork(8, 2)
        matcher = ValuePriorityMatcher(topo, random.Random(0))
        grants, _ = matcher.grant_step({1: {0: 10.0, 2: 9.0}})
        assert set(grants) == {0, 2}

    def test_thinclos_respects_groups(self):
        topo = ThinClos(16, 4, 4)
        matcher = ValuePriorityMatcher(topo, random.Random(0))
        result = matcher.run_epoch(
            {6: {1: 100.0, 2: 50.0}, 7: {1: 10.0}}
        )
        validate_matching(result.matches, topo)


class TestInformativeSchedulers:
    def test_data_size_payload_is_queue_depth(self):
        sim = make_sim([elephant(size=50_000)], "data-size")
        sim.step_epoch()
        queue = sim.queue(0, 1)
        payload = sim.scheduler.request_payload(0, 1, queue, 0.0)
        assert payload == pytest.approx(queue.pending_bytes)

    def test_hol_delay_weights_lowest_band_down(self):
        config = tiny_config()
        sim = make_sim([elephant(size=50_000, arrival=0.0)], "hol-delay",
                       config=config)
        sim.step_epoch()
        queue = sim.queue(0, 1)
        now = 10_000.0
        payload = sim.scheduler.request_payload(0, 1, queue, now)
        # Bands 0/1 heads have waited ~now; the elephant band contributes
        # only alpha of its wait.
        assert payload == pytest.approx(
            0.999 * (queue.head_wait_ns(0, now) + queue.head_wait_ns(1, now)) / 2
            + 0.001 * queue.head_wait_ns(2, now)
        )

    def test_hol_alpha_validated(self):
        matcher = ValuePriorityMatcher(ParallelNetwork(8, 2), random.Random(0))
        with pytest.raises(ValueError):
            HolDelayScheduler(matcher, alpha=2.0)

    def test_data_size_prioritizes_heavy_pair(self):
        """The destination port goes to the heavier of two backlogs."""
        config = tiny_config(num_tors=8, ports_per_tor=1)
        topo = ParallelNetwork(8, 1)
        scheduler = DataSizeScheduler(ValuePriorityMatcher(topo, random.Random(0)))
        flows = [
            elephant(fid=0, src=0, dst=2, size=500_000),
            elephant(fid=1, src=1, dst=2, size=50_000),
        ]
        sim = NegotiaToRSimulator(config, topo, flows, scheduler=scheduler)
        for _ in range(3):
            sim.step_epoch()
        matches = sim.step_epoch()
        senders = {m.src for m in matches if m.dst == 2}
        assert senders == {0}


class TestStatefulScheduler:
    def make(self, config=None):
        config = config or tiny_config()
        topo = ParallelNetwork(config.num_tors, config.ports_per_tor)
        scheduler = StatefulScheduler(
            NegotiaToRMatcher(topo, random.Random(0)),
            phase_capacity_bytes=30 * 1115,
        )
        return config, topo, scheduler

    def test_request_payload_reports_new_bytes_once(self):
        config, topo, scheduler = self.make()
        sim = NegotiaToRSimulator(
            config, topo, [elephant(size=100_000)], scheduler=scheduler
        )
        sim.step_epoch()
        queue = sim.queue(0, 1)
        # The epoch already consumed the report; a second call sees nothing new.
        assert scheduler.request_payload(0, 1, queue, 0.0) == 0.0

    def test_matrix_accumulates_and_decrements(self):
        config, topo, scheduler = self.make()
        sim = NegotiaToRSimulator(
            config, topo, [elephant(size=100_000)], scheduler=scheduler
        )
        sim.step_epoch()  # request reported (100 KB)
        assert scheduler.demand_estimate(1, 0) == pytest.approx(100_000)
        sim.step_epoch()  # grant: two ports reserve one phase each
        reserved = 2 * 30 * 1115
        assert scheduler.demand_estimate(1, 0) == pytest.approx(
            100_000 - reserved
        )

    def test_depleted_matrix_stops_grants(self):
        """Once the matrix empties, repeated requests win no more grants."""
        config, topo, scheduler = self.make()
        # A flow bigger than the threshold but below one phase capacity:
        # the first grant reserves it all.
        sim = NegotiaToRSimulator(
            config, topo, [elephant(size=5_000)], scheduler=scheduler
        )
        sim.step_epoch()
        sim.step_epoch()
        assert scheduler.demand_estimate(1, 0) == 0.0
        # Queue still holds bytes (piggyback drained some), so requests keep
        # firing, but the matrix blocks further grants.
        matches = sim.step_epoch()
        follow_up = sim.step_epoch()
        assert matches  # the original reservation was accepted
        assert not follow_up

    def test_stateful_performance_close_to_base(self):
        """A.2.4's conclusion: stateful ~ stateless overall."""
        config = tiny_config()
        results = {}
        for name in ("base", "stateful"):
            flows = poisson_workload(
                hadoop(), 0.8, 8, config.host_aggregate_gbps, 400_000,
                random.Random(33),
            )
            sim = make_sim(flows, name, config=config)
            sim.run(400_000)
            results[name] = sim.summary().goodput_normalized
        assert results["stateful"] == pytest.approx(results["base"], rel=0.15)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            StatefulScheduler(
                NegotiaToRMatcher(ParallelNetwork(8, 2), random.Random(0)),
                phase_capacity_bytes=0,
            )


class TestProjecToRScheduler:
    def test_request_payload_carries_port_and_delay(self):
        config = tiny_config()
        topo = ParallelNetwork(8, 2)
        scheduler = ProjecToRScheduler(ProjecToRMatcher(topo, random.Random(0)))
        sim = NegotiaToRSimulator(
            config, topo, [elephant(size=50_000, arrival=0.0)],
            scheduler=scheduler,
        )
        sim.step_epoch()
        queue = sim.queue(0, 1)
        port, delay = scheduler.request_payload(0, 1, queue, 5_000.0)
        assert port in (0, 1)
        assert delay == pytest.approx(5_000.0)

    def test_port_rotates_between_requests(self):
        topo = ParallelNetwork(8, 2)
        scheduler = ProjecToRScheduler(ProjecToRMatcher(topo, random.Random(0)))
        config = tiny_config()
        sim = NegotiaToRSimulator(config, topo, [elephant()], scheduler=scheduler)
        sim.step_epoch()
        queue = sim.queue(0, 1)
        p1, _ = scheduler.request_payload(0, 1, queue, 0.0)
        p2, _ = scheduler.request_payload(0, 1, queue, 0.0)
        assert p1 != p2

    def test_thinclos_uses_topology_port(self):
        topo = ThinClos(16, 4, 4)
        scheduler = ProjecToRScheduler(ProjecToRMatcher(topo, random.Random(0)))
        config = tiny_config(num_tors=16, ports_per_tor=4)
        flows = [Flow(fid=0, src=1, dst=6, size_bytes=50_000, arrival_ns=-1.0)]
        sim = NegotiaToRSimulator(config, topo, flows, scheduler=scheduler)
        sim.step_epoch()
        port, _ = scheduler.request_payload(1, 6, sim.queue(1, 6), 0.0)
        assert port == topo.data_port(1, 6)

    def test_grant_prefers_longest_wait(self):
        topo = ParallelNetwork(8, 2)
        matcher = ProjecToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step(
            {3: {0: (0, 100.0), 1: (0, 900.0), 2: (1, 50.0)}}
        )
        assert num == 2
        assert grants[1] == [(3, 0)]  # longest wait on port 0
        assert grants[2] == [(3, 1)]  # only request on port 1

    def test_per_port_requests_lose_port_flexibility(self):
        """Two requesters pinned to the same port: one wins, the other port
        idles — NegotiaToR's ToR-level requests would have used both."""
        topo = ParallelNetwork(8, 2)
        matcher = ProjecToRMatcher(topo, random.Random(0))
        grants, num = matcher.grant_step(
            {3: {0: (0, 10.0), 1: (0, 20.0)}}
        )
        assert num == 1
        assert list(grants) == [1]
