"""Tests for flow records and FCT/goodput accounting (section 4.1)."""

import pytest

from repro.sim.flows import Flow, FlowTracker


def make_flow(fid=0, src=0, dst=1, size=1000, arrival=0.0, tag=""):
    return Flow(fid=fid, src=src, dst=dst, size_bytes=size, arrival_ns=arrival, tag=tag)


class TestFlow:
    def test_initial_state(self):
        flow = make_flow(size=5000)
        assert flow.remaining_bytes == 5000
        assert not flow.completed

    def test_fct_requires_completion(self):
        with pytest.raises(ValueError):
            make_flow().fct_ns

    def test_mice_classification(self):
        assert make_flow(size=9999).is_mice()
        assert not make_flow(size=10000).is_mice()
        assert make_flow(size=400).is_mice(threshold_bytes=500)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            make_flow(size=0)

    def test_rejects_self_flow(self):
        with pytest.raises(ValueError):
            make_flow(src=2, dst=2)


class TestDelivery:
    def test_partial_delivery_keeps_flow_open(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow(size=1000))
        tracker.deliver(flow, 400, 100.0)
        assert flow.remaining_bytes == 600
        assert not flow.completed

    def test_final_delivery_completes(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow(size=1000, arrival=50.0))
        tracker.deliver(flow, 1000, 300.0)
        assert flow.completed
        assert flow.fct_ns == pytest.approx(250.0)

    def test_over_delivery_rejected(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow(size=100))
        with pytest.raises(ValueError):
            tracker.deliver(flow, 101, 1.0)

    def test_zero_delivery_rejected(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow())
        with pytest.raises(ValueError):
            tracker.deliver(flow, 0, 1.0)

    def test_per_destination_accounting(self):
        tracker = FlowTracker(4)
        a = tracker.register(make_flow(fid=0, dst=1, size=300))
        b = tracker.register(make_flow(fid=1, dst=2, size=200))
        tracker.deliver(a, 300, 1.0)
        tracker.deliver(b, 200, 1.0)
        assert tracker.delivered_bytes_at(1) == 300
        assert tracker.delivered_bytes_at(2) == 200
        assert tracker.delivered_bytes == 500


class TestViews:
    def test_tag_filtering(self):
        tracker = FlowTracker(4)
        tracker.register(make_flow(fid=0, tag="incast"))
        tracker.register(make_flow(fid=1, tag="background"))
        assert [f.fid for f in tracker.flows_with_tag("incast")] == [0]

    def test_mice_flows_only_completed(self):
        tracker = FlowTracker(4)
        done = tracker.register(make_flow(fid=0, size=500))
        tracker.register(make_flow(fid=1, size=500))
        tracker.deliver(done, 500, 10.0)
        assert [f.fid for f in tracker.mice_flows()] == [0]

    def test_mice_flows_tag_and_threshold(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow(fid=0, size=500, tag="incast"))
        tracker.deliver(flow, 500, 10.0)
        assert tracker.mice_flows(tag="incast") == [flow]
        assert tracker.mice_flows(tag="background") == []
        assert tracker.mice_flows(threshold_bytes=100) == []

    def test_all_complete(self):
        tracker = FlowTracker(4)
        flow = tracker.register(make_flow(size=100))
        assert not tracker.all_complete
        tracker.deliver(flow, 100, 1.0)
        assert tracker.all_complete


class TestStatistics:
    def test_goodput_math(self):
        tracker = FlowTracker(2)
        flow = tracker.register(make_flow(size=125_000_000))  # 1 Gbit
        tracker.deliver(flow, 125_000_000, 1.0)
        # 1 Gbit over 1 ms = 1000 Gbps network-wide.
        assert tracker.goodput_gbps(1_000_000) == pytest.approx(1000.0)
        # Normalized to 2 ToRs x 400 Gbps.
        assert tracker.goodput_normalized(1_000_000, 400.0) == pytest.approx(1.25)

    def test_goodput_requires_positive_duration(self):
        with pytest.raises(ValueError):
            FlowTracker(2).goodput_gbps(0.0)

    def test_percentile_and_mean(self):
        tracker = FlowTracker(4)
        flows = []
        for i, fct in enumerate([100.0, 200.0, 300.0, 400.0]):
            flow = tracker.register(make_flow(fid=i, size=10))
            tracker.deliver(flow, 10, fct)
            flows.append(flow)
        assert FlowTracker.fct_mean_ns(flows) == pytest.approx(250.0)
        assert FlowTracker.fct_percentile_ns(flows, 50) == pytest.approx(250.0)
        assert FlowTracker.fct_percentile_ns(flows, 100) == pytest.approx(400.0)

    def test_empty_stats_raise(self):
        with pytest.raises(ValueError):
            FlowTracker.fct_mean_ns([])
        with pytest.raises(ValueError):
            FlowTracker.fct_percentile_ns([], 99)
        with pytest.raises(ValueError):
            FlowTracker.fct_cdf([])

    def test_cdf_shape(self):
        tracker = FlowTracker(4)
        flows = []
        for i, fct in enumerate([300.0, 100.0, 200.0]):
            flow = tracker.register(make_flow(fid=i, size=10))
            tracker.deliver(flow, 10, fct)
            flows.append(flow)
        values, fractions = FlowTracker.fct_cdf(flows)
        assert list(values) == [100.0, 200.0, 300.0]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])
